//! A SQL + SQL/XML engine over [`relstore`].
//!
//! ArchIS translates XQuery on H-views into SQL/XML on H-tables (paper §5.3)
//! using the publishing constructs the SQL/XML standard defines:
//! `XMLElement`, `XMLAttributes` and the aggregate `XMLAgg`. Pushing tag
//! binding and structure construction *inside* the relational engine is the
//! high-performance approach the paper adopts (after reference 34 in its
//! references), so this crate implements exactly that: a SQL parser, a
//! small rule-based planner (predicate pushdown, index selection,
//! sort-merge joins on equality keys), and an executor whose select list
//! can construct XML values and aggregate them per group.
//!
//! Scalar UDFs (the paper's temporal built-ins: `toverlaps`, `tcontains`,
//! ...) are resolved through a [`relstore::expr::FnRegistry`] supplied by
//! the caller.
//!
//! # Example
//!
//! ```
//! use relstore::{Database, StorageKind, Schema, Field, DataType, Value};
//! use relstore::expr::FnRegistry;
//! use sqlxml::execute;
//!
//! let db = Database::in_memory();
//! let t = db.create_table("employee_name",
//!     Schema::new(vec![Field::new("id", DataType::Int),
//!                      Field::new("name", DataType::Str)]),
//!     StorageKind::Heap, &[]).unwrap();
//! t.insert(vec![Value::Int(1), Value::Str("Bob".into())]).unwrap();
//! let out = execute(&db,
//!     r#"select XMLElement(Name "employee", e.name) from employee_name as e"#,
//!     &FnRegistry::new().into()).unwrap();
//! assert_eq!(out.xml_fragments().join(""), "<employee>Bob</employee>");
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub mod engine;
pub mod parser;

pub use engine::{execute, execute_stmt, execute_stmt_with, QueryResult, SqlValue};
pub use parser::{parse_sql, SelectStmt};

use std::fmt;

/// Errors from SQL parsing or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical / syntax error with byte offset.
    Parse(usize, String),
    /// Unknown table / column / alias.
    Unresolved(String),
    /// Execution failure (wraps relstore errors).
    Exec(String),
    /// Misuse of XML constructs (e.g. `XMLAgg` outside the select list).
    Xml(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(at, m) => write!(f, "SQL syntax error at byte {at}: {m}"),
            SqlError::Unresolved(m) => write!(f, "unresolved name: {m}"),
            SqlError::Exec(m) => write!(f, "execution error: {m}"),
            SqlError::Xml(m) => write!(f, "SQL/XML error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<relstore::StoreError> for SqlError {
    fn from(e: relstore::StoreError) -> Self {
        SqlError::Exec(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SqlError>;
