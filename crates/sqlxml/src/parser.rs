//! SQL lexer and parser for the subset ArchIS emits (plus plain SQL
//! selects for benchmarks and tests).
//!
//! String literals accept both `'...'` and `"..."` (the paper's examples
//! write `N.name = "Bob"`). Keywords are case-insensitive.

use crate::{Result, SqlError};
use relstore::expr::{AggFunc, BinOp, UnOp};
use relstore::value::Value;

/// A select-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: SqlExpr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// `(table, alias)` pairs in FROM order.
    pub from: Vec<(String, String)>,
    /// WHERE condition.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SqlExpr>,
    /// ORDER BY `(expr, ascending)` pairs.
    pub order_by: Vec<(SqlExpr, bool)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// SQL expressions, including the SQL/XML constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Literal value.
    Lit(Value),
    /// Column reference, optionally qualified (`e.name`).
    Col {
        /// Table alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation (comparisons, AND/OR, arithmetic).
    Bin(BinOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Unary operation (NOT, negation, IS \[NOT\] NULL).
    Un(UnOp, Box<SqlExpr>),
    /// Scalar function call (UDFs such as `toverlaps`).
    Call(String, Vec<SqlExpr>),
    /// Standard aggregate. The bool marks `COUNT(*)`.
    Agg(AggFunc, Box<SqlExpr>, bool),
    /// `agg(DISTINCT expr)` — aggregate over distinct argument values.
    AggDistinct(AggFunc, Box<SqlExpr>),
    /// `XMLElement(Name "tag", [XMLAttributes(...),] content...)`.
    XmlElement {
        /// Element tag.
        name: String,
        /// `XMLAttributes` entries: `(attribute name, value expr)`.
        attrs: Vec<(String, SqlExpr)>,
        /// Content expressions (XML or scalar).
        content: Vec<SqlExpr>,
    },
    /// `XMLAgg(expr)` — aggregates XML values of a group in input order.
    XmlAgg(Box<SqlExpr>),
}

impl SqlExpr {
    /// Does this expression (transitively) contain an aggregate?
    pub fn has_aggregate(&self) -> bool {
        match self {
            SqlExpr::Agg(..) | SqlExpr::AggDistinct(..) | SqlExpr::XmlAgg(..) => true,
            SqlExpr::Lit(_) | SqlExpr::Col { .. } => false,
            SqlExpr::Bin(_, l, r) => l.has_aggregate() || r.has_aggregate(),
            SqlExpr::Un(_, e) => e.has_aggregate(),
            SqlExpr::Call(_, args) => args.iter().any(SqlExpr::has_aggregate),
            SqlExpr::XmlElement { attrs, content, .. } => {
                attrs.iter().any(|(_, e)| e.has_aggregate())
                    || content.iter().any(SqlExpr::has_aggregate)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),
    Str(String),
    Int(i64),
    Dec(f64),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if b.get(i + 1) == Some(&b'-') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            b'.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            b'*' => {
                out.push((Tok::Star, i));
                i += 1;
            }
            b'+' => {
                out.push((Tok::Plus, i));
                i += 1;
            }
            b'-' => {
                out.push((Tok::Minus, i));
                i += 1;
            }
            b'/' => {
                out.push((Tok::Slash, i));
                i += 1;
            }
            b'=' => {
                out.push((Tok::Eq, i));
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push((Tok::Ne, i));
                i += 2;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Le, i));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push((Tok::Ne, i));
                    i += 2;
                } else {
                    out.push((Tok::Lt, i));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ge, i));
                    i += 2;
                } else {
                    out.push((Tok::Gt, i));
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= b.len() {
                        return Err(SqlError::Parse(i, "unterminated string".into()));
                    }
                    if b[j] == quote {
                        if b.get(j + 1) == Some(&quote) {
                            s.push(quote as char);
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(b[j] as char);
                    j += 1;
                }
                out.push((Tok::Str(s), i));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: f64 = src[start..i]
                        .parse()
                        .map_err(|_| SqlError::Parse(start, "bad decimal".into()))?;
                    out.push((Tok::Dec(v), start));
                } else {
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| SqlError::Parse(start, "bad integer".into()))?;
                    out.push((Tok::Int(v), start));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Name(src[start..i].to_string()), start));
            }
            other => {
                return Err(SqlError::Parse(
                    i,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse one `SELECT` statement.
pub fn parse_sql(src: &str) -> Result<SelectStmt> {
    let toks = lex(src)?;
    let mut p = P {
        toks,
        pos: 0,
        len: src.len(),
    };
    let stmt = p.parse_select()?;
    if p.pos < p.toks.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(stmt)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    len: usize,
}

impl P {
    fn err(&self, m: impl Into<String>) -> SqlError {
        let at = self.toks.get(self.pos).map(|t| t.1).unwrap_or(self.len);
        SqlError::Parse(at, m.into())
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.0)
    }

    fn kw(&self, k: &str) -> bool {
        matches!(self.peek(), Some(Tok::Name(n)) if n.eq_ignore_ascii_case(k))
    }

    fn kw2(&self, k: &str) -> bool {
        matches!(self.peek2(), Some(Tok::Name(n)) if n.eq_ignore_ascii_case(k))
    }

    fn eat_kw(&mut self, k: &str) -> Result<()> {
        if self.kw(k) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {k}")))
        }
    }

    fn eat(&mut self, t: &Tok) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn name(&mut self) -> Result<String> {
        match self.peek().cloned() {
            Some(Tok::Name(n)) => {
                self.pos += 1;
                Ok(n)
            }
            other => Err(self.err(format!("expected a name, found {other:?}"))),
        }
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.eat_kw("select")?;
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let alias = if self.kw("as") {
                self.pos += 1;
                Some(self.name_or_string()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.eat_kw("from")?;
        let mut from = Vec::new();
        loop {
            let table = self.name()?;
            let alias = if self.kw("as") {
                self.pos += 1;
                self.name()?
            } else if matches!(self.peek(), Some(Tok::Name(n))
                if !is_keyword(n))
            {
                self.name()?
            } else {
                table.clone()
            };
            from.push((table, alias));
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let where_clause = if self.kw("where") {
            self.pos += 1;
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.kw("group") && self.kw2("by") {
            self.pos += 2;
            loop {
                group_by.push(self.parse_expr()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.kw("order") && self.kw2("by") {
            self.pos += 2;
            loop {
                let e = self.parse_expr()?;
                let mut asc = true;
                if self.kw("asc") {
                    self.pos += 1;
                } else if self.kw("desc") {
                    self.pos += 1;
                    asc = false;
                }
                order_by.push((e, asc));
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.kw("limit") {
            self.pos += 1;
            match self.peek().cloned() {
                Some(Tok::Int(n)) if n >= 0 => {
                    self.pos += 1;
                    Some(n as usize)
                }
                _ => return Err(self.err("expected row count after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn name_or_string(&mut self) -> Result<String> {
        match self.peek().cloned() {
            Some(Tok::Name(n)) => {
                self.pos += 1;
                Ok(n)
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected name or string, found {other:?}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<SqlExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<SqlExpr> {
        let mut l = self.parse_and()?;
        while self.kw("or") {
            self.pos += 1;
            let r = self.parse_and()?;
            l = SqlExpr::Bin(BinOp::Or, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn parse_and(&mut self) -> Result<SqlExpr> {
        let mut l = self.parse_not()?;
        while self.kw("and") {
            self.pos += 1;
            let r = self.parse_not()?;
            l = SqlExpr::Bin(BinOp::And, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn parse_not(&mut self) -> Result<SqlExpr> {
        if self.kw("not") {
            self.pos += 1;
            let e = self.parse_not()?;
            return Ok(SqlExpr::Un(UnOp::Not, Box::new(e)));
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<SqlExpr> {
        let l = self.parse_add()?;
        // IS [NOT] NULL
        if self.kw("is") {
            self.pos += 1;
            let negated = if self.kw("not") {
                self.pos += 1;
                true
            } else {
                false
            };
            self.eat_kw("null")?;
            let op = if negated {
                UnOp::IsNotNull
            } else {
                UnOp::IsNull
            };
            return Ok(SqlExpr::Un(op, Box::new(l)));
        }
        let op = match self.peek() {
            Some(Tok::Eq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let r = self.parse_add()?;
            return Ok(SqlExpr::Bin(op, Box::new(l), Box::new(r)));
        }
        Ok(l)
    }

    fn parse_add(&mut self) -> Result<SqlExpr> {
        let mut l = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let r = self.parse_mul()?;
            l = SqlExpr::Bin(op, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn parse_mul(&mut self) -> Result<SqlExpr> {
        let mut l = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let r = self.parse_unary()?;
            l = SqlExpr::Bin(op, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn parse_unary(&mut self) -> Result<SqlExpr> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            let e = self.parse_unary()?;
            return Ok(SqlExpr::Un(UnOp::Neg, Box::new(e)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<SqlExpr> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Int(i)))
            }
            Some(Tok::Dec(d)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Double(d)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Str(s)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Name(n)) if n.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Null))
            }
            Some(Tok::Name(n)) if n.eq_ignore_ascii_case("xmlelement") => self.parse_xmlelement(),
            Some(Tok::Name(n)) if n.eq_ignore_ascii_case("xmlagg") => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let arg = self.parse_expr()?;
                self.eat(&Tok::RParen)?;
                Ok(SqlExpr::XmlAgg(Box::new(arg)))
            }
            Some(Tok::Name(n)) if is_agg(&n) && self.peek2() == Some(&Tok::LParen) => {
                self.pos += 2;
                let func = agg_of(&n);
                if self.peek() == Some(&Tok::Star) {
                    self.pos += 1;
                    self.eat(&Tok::RParen)?;
                    return Ok(SqlExpr::Agg(
                        AggFunc::CountStar,
                        Box::new(SqlExpr::Lit(Value::Int(1))),
                        true,
                    ));
                }
                if self.kw("distinct") {
                    self.pos += 1;
                    let arg = self.parse_expr()?;
                    self.eat(&Tok::RParen)?;
                    return Ok(SqlExpr::AggDistinct(func, Box::new(arg)));
                }
                let arg = self.parse_expr()?;
                self.eat(&Tok::RParen)?;
                Ok(SqlExpr::Agg(func, Box::new(arg), false))
            }
            Some(Tok::Name(_)) => {
                let n = self.name()?;
                if self.peek() == Some(&Tok::LParen) {
                    // Scalar function call.
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    return Ok(SqlExpr::Call(n, args));
                }
                if self.peek() == Some(&Tok::Dot) {
                    self.pos += 1;
                    let col = self.name()?;
                    return Ok(SqlExpr::Col {
                        qualifier: Some(n),
                        name: col,
                    });
                }
                Ok(SqlExpr::Col {
                    qualifier: None,
                    name: n,
                })
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    /// `XMLElement(Name "tag" [, XMLAttributes(e AS "a", ...)] [, content]*)`
    fn parse_xmlelement(&mut self) -> Result<SqlExpr> {
        self.pos += 1; // XMLElement
        self.eat(&Tok::LParen)?;
        self.eat_kw("name")?;
        let name = self.name_or_string()?;
        let mut attrs = Vec::new();
        let mut content = Vec::new();
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            if self.kw("xmlattributes") {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                loop {
                    let e = self.parse_expr()?;
                    let aname = if self.kw("as") {
                        self.pos += 1;
                        self.name_or_string()?
                    } else {
                        // Default attribute name from a column reference.
                        match &e {
                            SqlExpr::Col { name, .. } => name.clone(),
                            _ => return Err(self.err("XMLAttributes entry needs AS \"name\"")),
                        }
                    };
                    attrs.push((aname, e));
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.eat(&Tok::RParen)?;
            } else {
                content.push(self.parse_expr()?);
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(SqlExpr::XmlElement {
            name,
            attrs,
            content,
        })
    }
}

fn is_keyword(n: &str) -> bool {
    matches!(
        n.to_ascii_lowercase().as_str(),
        "select"
            | "from"
            | "where"
            | "group"
            | "order"
            | "by"
            | "as"
            | "and"
            | "or"
            | "not"
            | "is"
            | "null"
            | "limit"
            | "asc"
            | "desc"
    )
}

fn is_agg(n: &str) -> bool {
    matches!(
        n.to_ascii_lowercase().as_str(),
        "count" | "sum" | "avg" | "min" | "max"
    )
}

fn agg_of(n: &str) -> AggFunc {
    match n.to_ascii_lowercase().as_str() {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        _ => AggFunc::Max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query1_translation() {
        // The SQL/XML the paper shows for QUERY 1 (§5.3).
        let sql = r#"select XMLElement (Name "title_history",
            XMLAgg (XMLElement (Name "title",
                XMLAttributes (T.tstart as "tstart", T.tend as "tend"), T.title)))
            from employee_title as T, employee_name as N
            where N.id = T.id and N.name = "Bob"
            group by N.id"#;
        let stmt = parse_sql(sql).unwrap();
        assert_eq!(stmt.from.len(), 2);
        assert_eq!(stmt.from[0], ("employee_title".into(), "T".into()));
        assert_eq!(stmt.group_by.len(), 1);
        let SqlExpr::XmlElement { name, content, .. } = &stmt.items[0].expr else {
            panic!()
        };
        assert_eq!(name, "title_history");
        assert!(matches!(&content[0], SqlExpr::XmlAgg(_)));
        assert!(stmt.items[0].expr.has_aggregate());
    }

    #[test]
    fn parses_xmlattributes_with_defaults() {
        let sql = r#"select XMLElement(Name e, XMLAttributes(t.tstart, t.tend as "end")) from t"#;
        let stmt = parse_sql(sql).unwrap();
        let SqlExpr::XmlElement { attrs, .. } = &stmt.items[0].expr else {
            panic!()
        };
        assert_eq!(attrs[0].0, "tstart");
        assert_eq!(attrs[1].0, "end");
    }

    #[test]
    fn parses_plain_select() {
        let stmt = parse_sql(
            "select e.salary, count(*) from employee_salary e \
             where e.salary >= 60000 and e.tstart <= '1994-05-06' \
             group by e.salary order by e.salary desc limit 10",
        )
        .unwrap();
        assert_eq!(stmt.items.len(), 2);
        assert!(matches!(
            stmt.items[1].expr,
            SqlExpr::Agg(AggFunc::CountStar, _, true)
        ));
        assert_eq!(stmt.limit, Some(10));
        assert!(!stmt.order_by[0].1);
    }

    #[test]
    fn parses_udf_calls_in_where() {
        let stmt = parse_sql(
            "select e.id from employee_id e \
             where toverlaps(e.tstart, e.tend, '1994-05-06', '1995-05-06')",
        )
        .unwrap();
        let Some(SqlExpr::Call(name, args)) = stmt.where_clause else {
            panic!()
        };
        assert_eq!(name, "toverlaps");
        assert_eq!(args.len(), 4);
    }

    #[test]
    fn parses_is_null_and_not() {
        let stmt = parse_sql("select a from t where not (a is null) and b is not null").unwrap();
        assert!(stmt.where_clause.is_some());
    }

    #[test]
    fn implicit_alias_defaults_to_table_name() {
        let stmt = parse_sql("select x from tbl where x = 1").unwrap();
        assert_eq!(stmt.from[0], ("tbl".into(), "tbl".into()));
        let stmt2 = parse_sql("select t.x from tbl t").unwrap();
        assert_eq!(stmt2.from[0], ("tbl".into(), "t".into()));
    }

    #[test]
    fn string_escapes_and_comments() {
        let stmt = parse_sql("select 'it''s' from t -- trailing comment").unwrap();
        assert_eq!(stmt.items[0].expr, SqlExpr::Lit(Value::Str("it's".into())));
    }

    #[test]
    fn rejects_bad_sql() {
        assert!(parse_sql("select").is_err());
        assert!(parse_sql("select a").is_err(), "missing FROM");
        assert!(parse_sql("select a from").is_err());
        assert!(parse_sql("select a from t where").is_err());
        assert!(parse_sql("select a from t limit x").is_err());
        assert!(parse_sql("select a from t alias1 alias2").is_err());
        assert!(parse_sql("select 'oops from t").is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let stmt = parse_sql("select a + b * 2 from t").unwrap();
        let SqlExpr::Bin(BinOp::Add, _, r) = &stmt.items[0].expr else {
            panic!()
        };
        assert!(matches!(**r, SqlExpr::Bin(BinOp::Mul, _, _)));
    }
}
