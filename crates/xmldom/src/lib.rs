//! A minimal XML document object model for H-documents.
//!
//! ArchIS views the transaction-time history of each relational table as an
//! XML *H-document* (paper §3): a root element per table whose children are
//! one element per key value, each grouping the timestamped history of every
//! attribute. Every element carries inclusive `tstart`/`tend` attributes.
//!
//! This crate provides the owned node tree ([`Node`], [`Element`]), a
//! hand-written parser ([`parse`]) covering the XML subset H-documents and
//! query results use (elements, attributes, character data with the five
//! predefined entities, comments, CDATA, declarations), a serializer
//! (compact and pretty-printed), and navigation helpers used by the XQuery
//! evaluator.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
mod node;
mod parse;

pub use node::{Element, Node};
pub use parse::{parse, ParseError};

use temporal::{Date, Interval};

/// Attribute name carrying an element's period start.
pub const TSTART: &str = "tstart";
/// Attribute name carrying an element's period end.
pub const TEND: &str = "tend";

impl Element {
    /// The element's validity period from its `tstart`/`tend` attributes,
    /// if both are present and well-formed.
    pub fn interval(&self) -> Option<Interval> {
        let s = Date::parse(self.attr(TSTART)?).ok()?;
        let e = Date::parse(self.attr(TEND)?).ok()?;
        Interval::new(s, e).ok()
    }

    /// Set the `tstart`/`tend` attributes from a period.
    pub fn set_interval(&mut self, iv: Interval) {
        self.set_attr(TSTART, iv.start().to_string());
        self.set_attr(TEND, iv.end().to_string());
    }

    /// Builder-style variant of [`Element::set_interval`].
    pub fn with_interval(mut self, iv: Interval) -> Self {
        self.set_interval(iv);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_roundtrip_on_element() {
        let iv = Interval::parse("1995-01-01", "1995-05-31").unwrap();
        let e = Element::new("salary").with_interval(iv).with_text("60000");
        assert_eq!(e.interval(), Some(iv));
        assert_eq!(
            e.to_xml(),
            r#"<salary tstart="1995-01-01" tend="1995-05-31">60000</salary>"#
        );
    }

    #[test]
    fn missing_or_bad_interval_is_none() {
        assert_eq!(Element::new("x").interval(), None);
        let mut e = Element::new("x");
        e.set_attr(TSTART, "1995-01-01");
        e.set_attr(TEND, "bogus");
        assert_eq!(e.interval(), None);
    }
}
