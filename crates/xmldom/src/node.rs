//! The owned XML node tree and serializer.

use std::fmt;

/// An XML node: an element or character data.
///
/// Comments and processing instructions are dropped at parse time — they
/// never occur in H-documents or query results, and discarding them keeps
/// node identity semantics simple for the XQuery evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element node.
    Element(Element),
    /// A text node (unescaped character data).
    Text(String),
}

impl Node {
    /// The element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Mutable access to the element, if this node is one.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// The *string value*: for text nodes the text, for elements the
    /// concatenation of all descendant text (XPath `string()` semantics).
    pub fn string_value(&self) -> String {
        match self {
            Node::Text(t) => t.clone(),
            Node::Element(e) => e.text_content(),
        }
    }

    /// Serialize compactly (no added whitespace).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out);
        out
    }

    fn write_xml(&self, out: &mut String) {
        match self {
            Node::Text(t) => push_escaped(out, t, false),
            Node::Element(e) => e.write_xml(out),
        }
    }
}

impl From<Element> for Node {
    fn from(e: Element) -> Node {
        Node::Element(e)
    }
}

/// An XML element: a name, ordered attributes, and ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order. Names are unique.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// A new element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Set (or replace) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Builder-style attribute setter.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Append a child node.
    pub fn push(&mut self, child: impl Into<Node>) {
        self.children.push(child.into());
    }

    /// Builder-style child appender.
    pub fn with_child(mut self, child: impl Into<Node>) -> Self {
        self.push(child);
        self
    }

    /// Builder-style text child appender.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Child elements, in order.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Child elements with the given tag name, in order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// First child element with the given tag name.
    pub fn first_child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Concatenated descendant text (XPath string value).
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                Node::Text(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
            }
        }
    }

    /// All descendant elements (excluding `self`), depth-first document order.
    pub fn descendants(&self) -> Vec<&Element> {
        let mut out = Vec::new();
        self.collect_descendants(&mut out);
        out
    }

    fn collect_descendants<'a>(&'a self, out: &mut Vec<&'a Element>) {
        for c in self.child_elements() {
            out.push(c);
            c.collect_descendants(out);
        }
    }

    /// Total number of element nodes in the subtree rooted here.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Serialize compactly (no added whitespace).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out);
        out
    }

    /// Serialize with two-space indentation, one element per line.
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_xml(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (n, v) in &self.attributes {
            out.push(' ');
            out.push_str(n);
            out.push_str("=\"");
            push_escaped(out, v, true);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            c.write_xml(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(&self.name);
        for (n, v) in &self.attributes {
            out.push(' ');
            out.push_str(n);
            out.push_str("=\"");
            push_escaped(out, v, true);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        // Text-only content stays on one line.
        if self.children.iter().all(|c| matches!(c, Node::Text(_))) {
            out.push('>');
            for c in &self.children {
                if let Node::Text(t) = c {
                    push_escaped(out, t, false);
                }
            }
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
            return;
        }
        out.push_str(">\n");
        for c in &self.children {
            match c {
                Node::Element(e) => e.write_pretty(out, depth + 1),
                Node::Text(t) => {
                    if !t.trim().is_empty() {
                        for _ in 0..=depth {
                            out.push_str("  ");
                        }
                        push_escaped(out, t, false);
                        out.push('\n');
                    }
                }
            }
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

fn push_escaped(out: &mut String, s: &str, in_attr: bool) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attr => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("employee")
            .with_attr("tstart", "1995-01-01")
            .with_attr("tend", "9999-12-31")
            .with_child(Element::new("name").with_text("Bob"))
            .with_child(
                Element::new("salary")
                    .with_attr("tstart", "1995-01-01")
                    .with_attr("tend", "1995-05-31")
                    .with_text("60000"),
            )
    }

    #[test]
    fn serializes_compactly() {
        assert_eq!(
            sample().to_xml(),
            "<employee tstart=\"1995-01-01\" tend=\"9999-12-31\">\
             <name>Bob</name>\
             <salary tstart=\"1995-01-01\" tend=\"1995-05-31\">60000</salary>\
             </employee>"
        );
    }

    #[test]
    fn escapes_special_characters() {
        let e = Element::new("t")
            .with_attr("a", "x\"<y")
            .with_text("a<b&c>d");
        assert_eq!(e.to_xml(), "<t a=\"x&quot;&lt;y\">a&lt;b&amp;c&gt;d</t>");
    }

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(Element::new("interval").to_xml(), "<interval/>");
    }

    #[test]
    fn navigation_helpers() {
        let e = sample();
        assert_eq!(e.first_child("name").unwrap().text_content(), "Bob");
        assert_eq!(e.children_named("salary").count(), 1);
        assert_eq!(e.child_elements().count(), 2);
        assert_eq!(e.attr("tstart"), Some("1995-01-01"));
        assert_eq!(e.attr("missing"), None);
        assert_eq!(e.descendants().len(), 2);
        assert_eq!(e.subtree_size(), 3);
    }

    #[test]
    fn string_value_concatenates_descendants() {
        assert_eq!(sample().text_content(), "Bob60000");
        assert_eq!(Node::Text("x".into()).string_value(), "x");
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("x").with_attr("a", "1");
        e.set_attr("a", "2");
        assert_eq!(e.attributes.len(), 1);
        assert_eq!(e.attr("a"), Some("2"));
    }

    #[test]
    fn pretty_print_indents() {
        let p = sample().to_pretty_xml();
        assert!(p.contains("\n  <name>Bob</name>\n"));
        assert!(p.starts_with("<employee"));
        assert!(p.ends_with("</employee>\n"));
    }
}
