//! A hand-written, non-validating XML parser for the subset H-documents and
//! SQL/XML query results use.
//!
//! Supported: one root element, nested elements, attributes with `'` or `"`
//! quotes, character data, the five predefined entities plus decimal /
//! hexadecimal character references, comments, CDATA sections, XML
//! declarations and processing instructions (both skipped). Not supported
//! (not needed by ArchIS): DTDs, namespaces-aware processing (prefixes are
//! kept verbatim in names).

use crate::node::{Element, Node};
use std::fmt;

/// A parse failure with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete document and return its root element. Leading and
/// trailing whitespace, declarations and comments around the root are
/// skipped; trailing non-whitespace content is an error.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc();
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos < p.input.len() {
        return Err(p.err("content after document root"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match find(self.input, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.starts_with("<?") {
                match find(self.input, self.pos + 2, b"?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching '>' (no internal subset support).
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'>' {
                        break;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| self.err("eof in attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    self.pos += 1;
                    let vstart = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[vstart..self.pos]).into_owned();
                    self.expect(quote)?;
                    if element.attr(&attr_name).is_some() {
                        return Err(self.err(format!("duplicate attribute {attr_name:?}")));
                    }
                    element
                        .attributes
                        .push((attr_name, unescape(&raw, vstart)?));
                }
                None => return Err(self.err("eof in start tag")),
            }
        }
        // Content.
        loop {
            match self.peek() {
                None => return Err(self.err(format!("eof inside <{}>", element.name))),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.pos += 2;
                        let end_name = self.parse_name()?;
                        if end_name != element.name {
                            return Err(self.err(format!(
                                "mismatched end tag: expected </{}>, found </{end_name}>",
                                element.name
                            )));
                        }
                        self.skip_ws();
                        self.expect(b'>')?;
                        return Ok(element);
                    } else if self.starts_with("<!--") {
                        let end = find(self.input, self.pos + 4, b"-->")
                            .ok_or_else(|| self.err("unterminated comment"))?;
                        self.pos = end + 3;
                    } else if self.starts_with("<![CDATA[") {
                        let start = self.pos + 9;
                        let end = find(self.input, start, b"]]>")
                            .ok_or_else(|| self.err("unterminated CDATA"))?;
                        let text = String::from_utf8_lossy(&self.input[start..end]).into_owned();
                        push_text(&mut element, text);
                        self.pos = end + 3;
                    } else if self.starts_with("<?") {
                        let end = find(self.input, self.pos + 2, b"?>")
                            .ok_or_else(|| self.err("unterminated processing instruction"))?;
                        self.pos = end + 2;
                    } else {
                        let child = self.parse_element()?;
                        element.children.push(Node::Element(child));
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    let text = unescape(&raw, start)?;
                    // Whitespace-only runs between elements are formatting.
                    if !text.trim().is_empty() {
                        push_text(&mut element, text);
                    }
                }
            }
        }
    }
}

fn push_text(element: &mut Element, text: String) {
    if let Some(Node::Text(prev)) = element.children.last_mut() {
        prev.push_str(&text);
    } else {
        element.children.push(Node::Text(text));
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from > haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

fn unescape(s: &str, offset: usize) -> Result<String, ParseError> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').ok_or(ParseError {
            offset,
            message: "unterminated entity reference".into(),
        })?;
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| ParseError {
                    offset,
                    message: format!("bad character reference &{entity};"),
                })?;
                out.push(char::from_u32(code).ok_or(ParseError {
                    offset,
                    message: format!("invalid code point &{entity};"),
                })?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| ParseError {
                    offset,
                    message: format!("bad character reference &{entity};"),
                })?;
                out.push(char::from_u32(code).ok_or(ParseError {
                    offset,
                    message: format!("invalid code point &{entity};"),
                })?);
            }
            _ => {
                return Err(ParseError {
                    offset,
                    message: format!("unknown entity &{entity};"),
                })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hdocument_fragment() {
        let doc = r#"<?xml version="1.0"?>
            <!-- employees.xml -->
            <employees tstart="1988-01-01" tend="9999-12-31">
              <employee tstart="1995-01-01" tend="9999-12-31">
                <id tstart="1995-01-01" tend="9999-12-31">1001</id>
                <name tstart="1995-01-01" tend="9999-12-31">Bob</name>
                <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
                <salary tstart="1995-06-01" tend="9999-12-31">70000</salary>
              </employee>
            </employees>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "employees");
        let emp = root.first_child("employee").unwrap();
        assert_eq!(emp.children_named("salary").count(), 2);
        assert_eq!(emp.first_child("name").unwrap().text_content(), "Bob");
        assert!(emp.interval().unwrap().is_current());
    }

    #[test]
    fn roundtrips_serialization() {
        let e = Element::new("a")
            .with_attr("k", "v<&\"")
            .with_child(Element::new("b").with_text("x & y < z"))
            .with_child(Element::new("c"));
        let parsed = parse(&e.to_xml()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let root = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(root.children.len(), 2);
    }

    #[test]
    fn mixed_text_is_kept() {
        let root = parse("<a>hello <b/> world</a>").unwrap();
        assert_eq!(root.children.len(), 3);
        assert_eq!(root.text_content(), "hello  world");
    }

    #[test]
    fn entities_and_char_refs() {
        let root = parse("<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>").unwrap();
        assert_eq!(root.text_content(), "<>&\"'AB");
    }

    #[test]
    fn cdata_passes_through_verbatim() {
        let root = parse("<a><![CDATA[<not><parsed> & raw]]></a>").unwrap();
        assert_eq!(root.text_content(), "<not><parsed> & raw");
    }

    #[test]
    fn single_quoted_attributes() {
        let root = parse("<a k='v1' j=\"v2\"/>").unwrap();
        assert_eq!(root.attr("k"), Some("v1"));
        assert_eq!(root.attr("j"), Some("v2"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("<a><b></a></b>").is_err(), "mismatched nesting");
        assert!(parse("<a>").is_err(), "unclosed root");
        assert!(parse("<a/><b/>").is_err(), "two roots");
        assert!(parse("<a k=unquoted/>").is_err());
        assert!(parse("<a k='1' k='2'/>").is_err(), "duplicate attribute");
        assert!(parse("<a>&bogus;</a>").is_err(), "unknown entity");
        assert!(parse("").is_err(), "empty input");
    }

    #[test]
    fn doctype_and_pi_are_skipped() {
        let root = parse("<!DOCTYPE x><?pi data?><a><?inner?></a>").unwrap();
        assert_eq!(root.name, "a");
        assert!(root.children.is_empty());
    }

    #[test]
    fn error_reports_offset() {
        let err = parse("<a><broken</a>").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("byte"));
    }
}
