//! Robustness: the XML parser must never panic, whatever bytes arrive —
//! it either parses or returns a positioned error.

use proptest::prelude::*;
use xmldom::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_input_never_panics(s in "\\PC*") {
        let _ = parse(&s); // Ok or Err — both fine, panic is the bug
    }

    #[test]
    fn xmlish_input_never_panics(s in "[<>a-z\"'=/ &;{}\\[\\]0-9-]{0,120}") {
        let _ = parse(&s);
    }

    #[test]
    fn truncations_of_valid_docs_never_panic(cut in 0usize..200) {
        let doc = r#"<employees tstart="1988-01-01" tend="9999-12-31">
          <employee><id>1001</id><name>B&amp;b</name>
          <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
          <!-- comment --><![CDATA[raw < data]]></employee></employees>"#;
        let cut = cut.min(doc.len());
        // Only slice at char boundaries (ASCII here, but stay safe).
        if doc.is_char_boundary(cut) {
            let _ = parse(&doc[..cut]);
        }
    }

    #[test]
    fn parse_errors_have_in_range_offsets(s in "[<>a-z\"'=/ ]{1,60}") {
        if let Err(e) = parse(&s) {
            prop_assert!(e.offset <= s.len(), "offset {} beyond input {}", e.offset, s.len());
        }
    }
}
