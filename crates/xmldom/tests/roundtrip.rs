//! Property tests: any tree the model can represent survives a
//! serialize → parse roundtrip (modulo the whitespace-only text nodes the
//! parser intentionally drops, which the generator never emits).

use proptest::prelude::*;
use xmldom::{parse, Element, Node};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Non-empty, non-whitespace-only text with XML specials included.
    "[ -~]{1,20}".prop_filter("whitespace-only text is dropped by the parser", |s| {
        !s.trim().is_empty()
    })
}

fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_text()), 0..3),
    )
        .prop_map(|(name, attrs)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                e.set_attr(k, v); // set_attr dedups names
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
            proptest::collection::vec(
                prop_oneof![
                    inner.prop_map(Node::Element),
                    arb_text().prop_map(Node::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    e.set_attr(k, v);
                }
                // Merge adjacent text children the way the parser would.
                for c in children {
                    match (e.children.last_mut(), c) {
                        (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                        (_, c) => e.children.push(c),
                    }
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_roundtrip(e in arb_element()) {
        let xml = e.to_xml();
        let parsed = parse(&xml).unwrap();
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn pretty_print_preserves_structure(e in arb_element()) {
        // Pretty printing may add whitespace-only text, which parsing drops,
        // so compare element structure and attribute content only.
        let parsed = parse(&e.to_pretty_xml()).unwrap();
        type Skeleton = (String, Vec<(String, String)>, Vec<(String, Vec<(String, String)>)>);
        fn skeleton(e: &Element) -> Skeleton {
            (
                e.name.clone(),
                e.attributes.clone(),
                e.child_elements().map(|c| (c.name.clone(), c.attributes.clone())).collect(),
            )
        }
        prop_assert_eq!(skeleton(&parsed), skeleton(&e));
    }
}
