//! LZ77 matching with hash chains (the "deflation algorithm" the paper's
//! zlib base uses).

/// Sliding-window size.
pub const WINDOW: usize = 32 * 1024;
/// Minimum useful match length.
pub const MIN_MATCH: usize = 3;
/// Maximum match length.
pub const MAX_MATCH: usize = 258;
/// How many chain links to probe per position.
const MAX_CHAIN: usize = 64;
/// Once a match at least this long is in hand, shrink the remaining probe
/// budget: further improvements are unlikely to pay for the chain walk.
const GOOD_MATCH: usize = 32;
/// A match this long is "nice enough" — stop probing the chain entirely.
const NICE_MATCH: usize = 128;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length (3..=258).
        len: u16,
        /// Distance (1..=32768).
        dist: u16,
    },
}

/// Four-byte multiplicative hash. Only valid when `i + 4 <= data.len()`;
/// the up-to-three-byte tail is emitted as literals instead. Hashing one
/// extra byte (vs. the classic three) sharply cuts chain collisions on
/// record-shaped data, so the bounded chain walk spends its probes on
/// positions that actually share a 4-byte prefix.
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> 17) as usize & 0x7FFF
}

/// Tokenize `data` greedily with hash-chain match search.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 3);
    if data.len() < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i % WINDOW] = chain.
    let mut head = vec![usize::MAX; 0x8000];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut i = 0usize;
    while i < data.len() {
        if i + 4 > data.len() {
            // Too short to hash: the final (at most three-byte) tail is
            // emitted as literals.
            tokens.push(Token::Literal(data[i]));
            i += 1;
            continue;
        }
        let h = hash4(data, i);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let max_len = (data.len() - i).min(MAX_MATCH);
        let nice = NICE_MATCH.min(max_len);
        let mut budget = MAX_CHAIN;
        while cand != usize::MAX && budget > 0 {
            budget -= 1;
            let dist = i - cand;
            if dist > WINDOW {
                break;
            }
            // Cheap reject: beating the current best requires a match of at
            // least `best_len + 1`, which needs the bytes at offset
            // `best_len` to agree (true even for overlapping candidates).
            if best_len > 0 && data[cand + best_len] != data[i + best_len] {
                cand = prev[cand % WINDOW];
                continue;
            }
            // Extend the match.
            let mut l = 0usize;
            while l < max_len && data[cand + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = dist;
                if l >= nice {
                    // Nice enough — stop probing the chain.
                    break;
                }
                if l >= GOOD_MATCH {
                    // Good enough — spend at most a quarter of what's left.
                    budget /= 4;
                }
            }
            cand = prev[cand % WINDOW];
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // Insert all covered positions into the chains.
            let end = i + best_len;
            while i < end && i + 4 <= data.len() {
                let h = hash4(data, i);
                prev[i % WINDOW] = head[h];
                head[h] = i;
                i += 1;
            }
            i = end;
        } else {
            tokens.push(Token::Literal(data[i]));
            prev[i % WINDOW] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    tokens
}

/// Reconstruct bytes from tokens.
pub fn detokenize(tokens: &[Token]) -> Result<Vec<u8>, crate::BlockZipError> {
    let mut out: Vec<u8> = Vec::with_capacity(tokens.len() * 2);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(crate::BlockZipError::Corrupt(format!(
                        "match distance {dist} out of range (have {})",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                // Byte-by-byte copy: overlapping matches are the RLE case.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let tokens = tokenize(data);
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_text_uses_matches() {
        let data = b"100022|40000|02/20/1988|02/19/1989\n100022|42010|02/20/1989|02/04/1990\n";
        let tokens = tokenize(data);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "record-shaped data must produce back-references"
        );
        roundtrip(data);
    }

    #[test]
    fn run_length_overlap() {
        // "aaaa..." compresses to a literal + overlapping match.
        let data = vec![b'a'; 1000];
        let tokens = tokenize(&data);
        assert!(
            tokens.len() < 20,
            "RLE case should be tiny, got {}",
            tokens.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes (xorshift) — few or no matches.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_match_capped_at_max() {
        let data = vec![b'z'; MAX_MATCH * 4];
        for t in tokenize(&data) {
            if let Token::Match { len, .. } = t {
                assert!(len as usize <= MAX_MATCH);
            }
        }
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        let bad = vec![Token::Literal(b'a'), Token::Match { len: 3, dist: 5 }];
        assert!(detokenize(&bad).is_err());
    }

    #[test]
    fn large_document_roundtrips() {
        let mut data = Vec::new();
        for i in 0..2000 {
            data.extend_from_slice(
                format!(
                    "<salary tstart=\"19{:02}-01-01\" tend=\"9999-12-31\">{}</salary>",
                    i % 100,
                    40000 + i
                )
                .as_bytes(),
            );
        }
        roundtrip(&data);
        let tokens = tokenize(&data);
        // Strong compression expected on XML.
        assert!(tokens.len() < data.len() / 4);
    }
}
