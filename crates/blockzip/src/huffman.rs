//! Canonical, length-limited Huffman coding.
//!
//! Code lengths are built from symbol frequencies with a binary heap, then
//! limited to [`MAX_BITS`] with a Kraft-sum adjustment, and finally turned
//! into canonical codes (as in DEFLATE), so only the length table needs to
//! be transmitted.

use crate::bits::{BitReader, BitWriter};
use crate::BlockZipError;

/// Maximum code length.
pub const MAX_BITS: u32 = 15;

/// An encoder table: per-symbol `(code, length)`.
pub struct Encoder {
    codes: Vec<(u32, u32)>,
}

impl Encoder {
    /// Emit a symbol.
    pub fn write(&self, w: &mut BitWriter, sym: usize) {
        let (code, len) = self.codes[sym];
        debug_assert!(len > 0, "symbol {sym} has no code");
        // Canonical codes are MSB-first; emit bit-reversed for our
        // LSB-first writer (as DEFLATE does).
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> (len - 1 - i)) & 1) << i;
        }
        w.write(rev, len);
    }

    /// The code length of a symbol (0 = absent).
    pub fn len_of(&self, sym: usize) -> u32 {
        self.codes[sym].1
    }
}

/// A decoder over canonical code lengths (bit-by-bit walk; fine at our
/// block sizes).
pub struct Decoder {
    /// `first_code[l]`, `first_index[l]` per length, plus sorted symbols.
    first_code: [u32; (MAX_BITS + 1) as usize],
    first_index: [usize; (MAX_BITS + 1) as usize],
    count: [u32; (MAX_BITS + 1) as usize],
    symbols: Vec<usize>,
}

impl Decoder {
    /// Build from the per-symbol code lengths.
    pub fn new(lengths: &[u32]) -> Result<Decoder, BlockZipError> {
        let mut count = [0u32; (MAX_BITS + 1) as usize];
        for &l in lengths {
            if l > MAX_BITS {
                return Err(BlockZipError::Corrupt("code length exceeds limit".into()));
            }
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Canonical first codes per length.
        let mut first_code = [0u32; (MAX_BITS + 1) as usize];
        let mut first_index = [0usize; (MAX_BITS + 1) as usize];
        let mut code = 0u32;
        let mut index = 0usize;
        for l in 1..=MAX_BITS as usize {
            code = (code + count[l - 1]) << 1;
            first_code[l] = code;
            first_index[l] = index;
            index += count[l] as usize;
        }
        // Symbols sorted by (length, symbol).
        let mut symbols: Vec<usize> = Vec::with_capacity(index);
        for l in 1..=MAX_BITS {
            for (sym, &sl) in lengths.iter().enumerate() {
                if sl == l {
                    symbols.push(sym);
                }
            }
        }
        Ok(Decoder {
            first_code,
            first_index,
            count,
            symbols,
        })
    }

    /// Decode one symbol.
    pub fn read(&self, r: &mut BitReader) -> Result<usize, BlockZipError> {
        let mut code = 0u32;
        for l in 1..=MAX_BITS as usize {
            code = (code << 1)
                | r.read_bit()
                    .ok_or_else(|| BlockZipError::Corrupt("unexpected end of stream".into()))?;
            let cnt = self.count[l];
            if cnt > 0 && code >= self.first_code[l] && code < self.first_code[l] + cnt {
                let idx = self.first_index[l] + (code - self.first_code[l]) as usize;
                return Ok(self.symbols[idx]);
            }
        }
        Err(BlockZipError::Corrupt("invalid Huffman code".into()))
    }
}

/// Build length-limited canonical code lengths from frequencies. Symbols
/// with zero frequency get length 0 (no code). If fewer than two symbols
/// occur, the occurring symbol gets length 1.
pub fn build_lengths(freqs: &[u64]) -> Vec<u32> {
    let n = freqs.len();
    let mut lengths = vec![0u32; n];
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Heap-based Huffman over (freq, node).
    #[derive(Clone)]
    enum Node {
        Leaf(usize),
        Internal(Box<Node>, Box<Node>),
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(Reverse<u64>, Reverse<usize>, usize)> = BinaryHeap::new();
    let mut nodes: Vec<Node> = Vec::new();
    for &s in &used {
        nodes.push(Node::Leaf(s));
        heap.push((Reverse(freqs[s]), Reverse(nodes.len() - 1), nodes.len() - 1));
    }
    let mut weights: Vec<u64> = used.iter().map(|&s| freqs[s]).collect();
    weights.resize(nodes.len(), 0);
    while heap.len() > 1 {
        let (Reverse(w1), _, i1) = heap.pop().unwrap();
        let (Reverse(w2), _, i2) = heap.pop().unwrap();
        let merged = Node::Internal(Box::new(nodes[i1].clone()), Box::new(nodes[i2].clone()));
        nodes.push(merged);
        weights.push(w1 + w2);
        heap.push((Reverse(w1 + w2), Reverse(nodes.len() - 1), nodes.len() - 1));
    }
    let (_, _, root) = heap.pop().unwrap();
    fn assign(node: &Node, depth: u32, lengths: &mut [u32]) {
        match node {
            Node::Leaf(s) => lengths[*s] = depth.max(1),
            Node::Internal(a, b) => {
                assign(a, depth + 1, lengths);
                assign(b, depth + 1, lengths);
            }
        }
    }
    assign(&nodes[root], 0, &mut lengths);
    limit_lengths(&mut lengths, MAX_BITS);
    lengths
}

/// Kraft-sum repair: force all lengths ≤ `max`, then rebalance so the
/// Kraft inequality holds with equality ≤ 1.
fn limit_lengths(lengths: &mut [u32], max: u32) {
    let mut over = false;
    for l in lengths.iter_mut() {
        if *l > max {
            *l = max;
            over = true;
        }
    }
    if !over {
        return;
    }
    // Compute Kraft sum in units of 2^-max.
    let unit = 1u64 << max;
    let mut kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit >> l).sum();
    // While oversubscribed, demote the shortest codes (increase length).
    while kraft > unit {
        // Find a symbol with the smallest length < max and lengthen it.
        let mut best: Option<usize> = None;
        for (i, &l) in lengths.iter().enumerate() {
            if l > 0 && l < max && best.is_none_or(|b| lengths[b] > l) {
                best = Some(i);
            }
        }
        let i = best.expect("kraft repair must terminate");
        kraft -= unit >> lengths[i];
        lengths[i] += 1;
        kraft += unit >> lengths[i];
    }
}

/// Canonical codes from lengths (for the [`Encoder`]).
pub fn build_encoder(lengths: &[u32]) -> Encoder {
    let mut count = [0u32; (MAX_BITS + 1) as usize];
    for &l in lengths {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = [0u32; (MAX_BITS + 1) as usize];
    let mut code = 0u32;
    for l in 1..=MAX_BITS as usize {
        code = (code + count[l - 1]) << 1;
        next[l] = code;
    }
    let mut codes = vec![(0u32, 0u32); lengths.len()];
    // Canonical order: by (length, symbol); iterating symbols in order per
    // length achieves that.
    for l in 1..=MAX_BITS {
        for (sym, &sl) in lengths.iter().enumerate() {
            if sl == l {
                codes[sym] = (next[l as usize], l);
                next[l as usize] += 1;
            }
        }
    }
    Encoder { codes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(freqs: &[u64], stream: &[usize]) {
        let lengths = build_lengths(freqs);
        let enc = build_encoder(&lengths);
        let dec = Decoder::new(&lengths).unwrap();
        let mut w = BitWriter::new();
        for &s in stream {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.read(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn simple_alphabet() {
        let freqs = [40u64, 30, 20, 10];
        roundtrip(&freqs, &[0, 1, 2, 3, 0, 0, 1, 2, 0, 3]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let mut freqs = vec![0u64; 10];
        freqs[7] = 100;
        let lengths = build_lengths(&freqs);
        assert_eq!(lengths[7], 1);
        roundtrip(&freqs, &[7, 7, 7]);
    }

    #[test]
    fn shorter_codes_for_frequent_symbols() {
        let freqs = [1000u64, 1, 1, 1, 1, 1];
        let lengths = build_lengths(&freqs);
        assert!(lengths[0] < lengths[3]);
    }

    #[test]
    fn skewed_distribution_respects_limit() {
        // Fibonacci-like frequencies force deep trees.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l <= MAX_BITS));
        // Kraft inequality holds — decodable.
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
        let stream: Vec<usize> = (0..40).chain((0..40).rev()).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn full_byte_alphabet() {
        let freqs: Vec<u64> = (0..256).map(|i| (i % 17 + 1) as u64).collect();
        let stream: Vec<usize> = (0..256).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn decoder_rejects_garbage() {
        let lengths = build_lengths(&[5, 5, 5, 5]);
        let dec = Decoder::new(&lengths).unwrap();
        // All-ones bits beyond any assigned code.
        let bytes = vec![0xFFu8; 4];
        let mut r = BitReader::new(&bytes);
        // Repeated reads either decode valid symbols or error out; never
        // panic. Drain the stream.
        let mut errs = 0;
        for _ in 0..20 {
            if dec.read(&mut r).is_err() {
                errs += 1;
                break;
            }
        }
        let _ = errs; // reaching here without panic is the assertion
    }

    #[test]
    fn rejects_overlong_lengths() {
        assert!(Decoder::new(&[MAX_BITS + 1]).is_err());
    }
}
