//! LSB-first bit I/O for the entropy coder.

/// Write bits least-significant-first into a byte vector.
#[derive(Default)]
pub struct BitWriter {
    out: Vec<u8>,
    cur: u32,
    nbits: u32,
}

impl BitWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `value` (n ≤ 24).
    pub fn write(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 24);
        let mask = if n >= 32 { u32::MAX } else { (1u32 << n) - 1 };
        self.cur |= (value & mask) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.cur & 0xFF) as u8);
            self.cur >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flush the final partial byte and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.cur & 0xFF) as u8);
        }
        self.out
    }

    /// Bytes written so far (excluding any partial byte).
    pub fn len(&self) -> usize {
        self.out.len() + usize::from(self.nbits > 0)
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Read bits least-significant-first from a byte slice.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    cur: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            cur: 0,
            nbits: 0,
        }
    }

    /// Read `n` bits (n ≤ 24). Returns `None` past end of input.
    pub fn read(&mut self, n: u32) -> Option<u32> {
        while self.nbits < n {
            let byte = *self.data.get(self.pos)?;
            self.pos += 1;
            self.cur |= (byte as u32) << self.nbits;
            self.nbits += 8;
        }
        let mask = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        let v = self.cur & mask;
        self.cur >>= n;
        self.nbits -= n;
        Some(v)
    }

    /// Read a single bit.
    pub fn read_bit(&mut self) -> Option<u32> {
        self.read(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let fields = [
            (0b1u32, 1u32),
            (0b1011, 4),
            (0x5A5A, 16),
            (0, 3),
            (0x7FFFFF, 23),
            (1, 1),
        ];
        for (v, n) in fields {
            w.write(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, n) in fields {
            assert_eq!(r.read(n), Some(v & ((1 << n) - 1)));
        }
    }

    #[test]
    fn read_past_end_is_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read(8), Some(0xFF));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn empty_writer() {
        assert!(BitWriter::new().is_empty());
        assert!(BitWriter::new().finish().is_empty());
    }
}
