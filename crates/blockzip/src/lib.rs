//! BlockZIP: block-based compression for relational history data
//! (paper §8).
//!
//! Traditional compressors treat a file as one stream, so reading a few
//! records means decompressing everything. BlockZIP instead compresses
//! record runs into **independent, block-sized blocks** (the paper uses
//! 4000-byte blocks stored as BLOBs): a snapshot or temporal-slicing query
//! touches only the blocks its key range maps to.
//!
//! The codec is built from scratch (no zlib available offline): greedy
//! [`lz77`] matching with hash chains plus canonical, length-limited
//! [`huffman`] coding of literals/lengths and distances, DEFLATE-style.
//! [`pack_records`] implements the paper's **Algorithm 2**: it estimates
//! the compression factor and average record size from a sample, then
//! adaptively grows or shrinks the number of records per block until the
//! compressed output fits the block size, padding small gaps.
//!
//! ```
//! let records: Vec<Vec<u8>> = (0..500)
//!     .map(|i| format!("100{:03}|{}|02/20/1988|02/19/1989", i, 40000 + i).into_bytes())
//!     .collect();
//! let blocks = blockzip::pack_records(&records, 4000);
//! // Every block decompresses independently.
//! let back: Vec<Vec<u8>> = blocks
//!     .iter()
//!     .flat_map(|b| blockzip::unpack_records(&b.data).unwrap())
//!     .collect();
//! assert_eq!(back, records);
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub mod bits;
pub mod huffman;
pub mod lz77;

use bits::{BitReader, BitWriter};
use huffman::{build_encoder, build_lengths, Decoder};
use lz77::Token;
use std::fmt;

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockZipError {
    /// Damaged or truncated compressed data.
    Corrupt(String),
}

impl fmt::Display for BlockZipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockZipError::Corrupt(m) => write!(f, "corrupt blockzip data: {m}"),
        }
    }
}

impl std::error::Error for BlockZipError {}

const MAGIC: &[u8; 3] = b"BZ1";
/// Literal/length alphabet: 256 literals + EOB + 29 length codes.
const NLITLEN: usize = 286;
const EOB: usize = 256;
/// Distance alphabet.
const NDIST: usize = 30;

const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

fn len_code(len: u16) -> (usize, u32, u32) {
    debug_assert!((3..=258).contains(&len));
    let mut code = 28;
    for (i, &base) in LEN_BASE.iter().enumerate() {
        let next = if i + 1 < LEN_BASE.len() {
            LEN_BASE[i + 1]
        } else {
            259
        };
        if len >= base && len < next {
            code = i;
            break;
        }
    }
    if len == 258 {
        code = 28;
    }
    (257 + code, (len - LEN_BASE[code]) as u32, LEN_EXTRA[code])
}

fn dist_code(dist: u16) -> (usize, u32, u32) {
    debug_assert!(dist >= 1);
    let d = dist as u32;
    let mut code = NDIST - 1;
    for (i, &base) in DIST_BASE.iter().enumerate() {
        let next = if i + 1 < DIST_BASE.len() {
            DIST_BASE[i + 1] as u32
        } else {
            32769
        };
        if d >= base as u32 && d < next {
            code = i;
            break;
        }
    }
    (code, d - DIST_BASE[code] as u32, DIST_EXTRA[code])
}

/// Compress a byte buffer into a self-contained block.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = lz77::tokenize(data);
    // Frequencies.
    let mut lfreq = vec![0u64; NLITLEN];
    let mut dfreq = vec![0u64; NDIST];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lfreq[b as usize] += 1,
            Token::Match { len, dist } => {
                lfreq[len_code(len).0] += 1;
                dfreq[dist_code(dist).0] += 1;
            }
        }
    }
    lfreq[EOB] += 1;
    let llens = build_lengths(&lfreq);
    let dlens = build_lengths(&dfreq);
    let lenc = build_encoder(&llens);
    let denc = build_encoder(&dlens);

    let mut out = Vec::with_capacity(data.len() / 2 + 256);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    // Code-length tables as nibbles (MAX_BITS = 15 fits 4 bits).
    let mut nibbles: Vec<u8> = Vec::with_capacity(NLITLEN + NDIST);
    nibbles.extend(llens.iter().map(|&l| l as u8));
    nibbles.extend(dlens.iter().map(|&l| l as u8));
    for pair in nibbles.chunks(2) {
        let lo = pair[0];
        let hi = pair.get(1).copied().unwrap_or(0);
        out.push(lo | (hi << 4));
    }
    // Payload.
    let mut w = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => lenc.write(&mut w, b as usize),
            Token::Match { len, dist } => {
                let (lc, lextra, lbits) = len_code(len);
                lenc.write(&mut w, lc);
                if lbits > 0 {
                    w.write(lextra, lbits);
                }
                let (dc, dextra, dbits) = dist_code(dist);
                denc.write(&mut w, dc);
                if dbits > 0 {
                    w.write(dextra, dbits);
                }
            }
        }
    }
    lenc.write(&mut w, EOB);
    let payload = w.finish();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decompress a block produced by [`compress`]. Trailing padding after the
/// payload is ignored (Algorithm 2 pads blocks to a fixed size).
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, BlockZipError> {
    let corrupt = |m: &str| BlockZipError::Corrupt(m.to_string());
    if data.len() < 7 || &data[..3] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let orig_len = u32::from_le_bytes(data[3..7].try_into().unwrap()) as usize;
    let ntab = NLITLEN + NDIST;
    let tab_bytes = ntab.div_ceil(2);
    if data.len() < 7 + tab_bytes + 4 {
        return Err(corrupt("truncated header"));
    }
    let mut lens = Vec::with_capacity(ntab);
    for &b in &data[7..7 + tab_bytes] {
        lens.push((b & 0x0F) as u32);
        lens.push((b >> 4) as u32);
    }
    lens.truncate(ntab);
    let llens = &lens[..NLITLEN];
    let dlens = &lens[NLITLEN..];
    let ldec = Decoder::new(llens)?;
    let ddec = Decoder::new(dlens)?;
    let p0 = 7 + tab_bytes;
    let payload_len = u32::from_le_bytes(
        data[p0..p0 + 4]
            .try_into()
            .map_err(|_| corrupt("truncated payload length"))?,
    ) as usize;
    let payload = data
        .get(p0 + 4..p0 + 4 + payload_len)
        .ok_or_else(|| corrupt("truncated payload"))?;

    let mut r = BitReader::new(payload);
    let mut tokens = Vec::new();
    loop {
        let sym = ldec.read(&mut r)?;
        if sym == EOB {
            break;
        }
        if sym < 256 {
            tokens.push(Token::Literal(sym as u8));
            continue;
        }
        let code = sym - 257;
        if code >= 29 {
            return Err(corrupt("invalid length code"));
        }
        let extra = if LEN_EXTRA[code] > 0 {
            r.read(LEN_EXTRA[code])
                .ok_or_else(|| corrupt("truncated length extra"))?
        } else {
            0
        };
        let len = LEN_BASE[code] as u32 + extra;
        let dcode = ddec.read(&mut r)?;
        if dcode >= NDIST {
            return Err(corrupt("invalid distance code"));
        }
        let dextra = if DIST_EXTRA[dcode] > 0 {
            r.read(DIST_EXTRA[dcode])
                .ok_or_else(|| corrupt("truncated distance extra"))?
        } else {
            0
        };
        let dist = DIST_BASE[dcode] as u32 + dextra;
        tokens.push(Token::Match {
            len: len as u16,
            dist: dist as u16,
        });
    }
    let out = lz77::detokenize(&tokens)?;
    if out.len() != orig_len {
        return Err(corrupt("length mismatch after decompression"));
    }
    Ok(out)
}

/// One output block of Algorithm 2: compressed data (padded to the block
/// size) plus the range of records it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The compressed (padded) bytes; decompress with [`unpack_records`].
    pub data: Vec<u8>,
    /// Index of the first record in this block.
    pub first_record: usize,
    /// Index of the last record (inclusive).
    pub last_record: usize,
}

/// Serialize a record run with length prefixes, preserving boundaries.
fn join_records(records: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.iter().map(|r| r.len() + 4).sum());
    for r in records {
        out.extend_from_slice(&(r.len() as u32).to_le_bytes());
        out.extend_from_slice(r);
    }
    out
}

/// Split a buffer produced by [`join_records`].
fn split_records(data: &[u8]) -> Result<Vec<Vec<u8>>, BlockZipError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        let len = u32::from_le_bytes(
            data.get(pos..pos + 4)
                .ok_or_else(|| BlockZipError::Corrupt("truncated record length".into()))?
                .try_into()
                .unwrap(),
        ) as usize;
        pos += 4;
        let rec = data
            .get(pos..pos + len)
            .ok_or_else(|| BlockZipError::Corrupt("truncated record".into()))?;
        out.push(rec.to_vec());
        pos += len;
    }
    Ok(out)
}

/// The paper's Algorithm 2: pack records into independently compressed
/// blocks of (at most, and usually exactly) `block_size` bytes.
///
/// A sampled compression factor seeds the estimate of how many input bytes
/// fit one block; each block is then adjusted record-by-record — grown when
/// the compressed output leaves a gap of at least one average record,
/// shrunk when it overflows — and finally padded to `block_size`. A single
/// record whose compressed form exceeds the block size yields one oversized
/// block (the paper's BLOBs tolerate this; it cannot be split).
pub fn pack_records(records: &[Vec<u8>], block_size: usize) -> Vec<Block> {
    if records.is_empty() {
        return Vec::new();
    }
    // Sample: estimated compression factor f0 and average record size R.
    let sample_n = records.len().min(64);
    let sample = join_records(&records[..sample_n]);
    let sample_c = compress(&sample);
    let f0 = (sample.len() as f64 / sample_c.len() as f64).max(0.5);
    let avg_r =
        (records.iter().map(|r| r.len() + 4).sum::<usize>() as f64 / records.len() as f64).max(1.0);

    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < records.len() {
        let mut n_chars = (block_size as f64 * f0) as usize;
        let mut k = records_within(&records[start..], n_chars);
        let mut best: Option<(usize, Vec<u8>)> = None;
        for _ in 0..8 {
            let joined = join_records(&records[start..start + k]);
            let c = compress(&joined);
            if c.len() <= block_size {
                best = Some((k, c));
                if start + k >= records.len() {
                    break; // no more records to grow into
                }
                // Grow if the gap fits at least one estimated record.
                let gap = block_size - best.as_ref().unwrap().1.len();
                let extra = (gap as f64 / avg_r * f0) as usize;
                if extra == 0 {
                    break;
                }
                n_chars += extra.max(1) * avg_r as usize;
                let k2 = records_within(&records[start..], n_chars).max(k + 1);
                if start + k2 > records.len() || k2 == k {
                    break;
                }
                k = k2.min(records.len() - start);
            } else {
                // Shrink.
                if k == 1 {
                    best = Some((1, c)); // oversized single record
                    break;
                }
                let over = c.len() - block_size;
                let reduce = ((over as f64 / avg_r * f0) as usize).max(1);
                k = k.saturating_sub(reduce).max(1);
                n_chars = records[start..start + k].iter().map(|r| r.len() + 4).sum();
            }
        }
        let (k, mut data) = best.unwrap_or_else(|| {
            let joined = join_records(&records[start..start + 1]);
            (1, compress(&joined))
        });
        if data.len() < block_size {
            data.resize(block_size, 0); // the paper's blank padding
        }
        blocks.push(Block {
            data,
            first_record: start,
            last_record: start + k - 1,
        });
        start += k;
    }
    blocks
}

fn records_within(records: &[Vec<u8>], budget: usize) -> usize {
    let mut total = 0usize;
    let mut k = 0usize;
    for r in records {
        total += r.len() + 4;
        if k > 0 && total > budget {
            break;
        }
        k += 1;
    }
    k.max(1).min(records.len())
}

/// Decompress one block back into its records.
pub fn unpack_records(block_data: &[u8]) -> Result<Vec<Vec<u8>>, BlockZipError> {
    split_records(&decompress(block_data)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn salary_records(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!(
                    "{}|{}|{:04}-{:02}-01|{:04}-{:02}-01",
                    100000 + i / 7,
                    40000 + (i * 137) % 30000,
                    1988 + i % 15,
                    1 + i % 12,
                    1989 + i % 15,
                    1 + (i + 3) % 12
                )
                .into_bytes()
            })
            .collect()
    }

    #[test]
    fn compress_roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog; the quick brown fox".to_vec();
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn compress_roundtrip_empty_and_binary() {
        assert_eq!(decompress(&compress(b"")).unwrap(), b"");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn compression_actually_compresses_records() {
        let data = join_records(&salary_records(2000));
        let c = compress(&data);
        let ratio = c.len() as f64 / data.len() as f64;
        assert!(
            ratio < 0.5,
            "record data should compress >2x, got ratio {ratio:.2}"
        );
    }

    #[test]
    fn decompress_rejects_corruption() {
        let mut c = compress(b"hello world hello world hello world");
        assert!(decompress(&c[..5]).is_err(), "truncated");
        c[0] = b'X';
        assert!(decompress(&c).is_err(), "bad magic");
        let mut c2 = compress(b"hello world hello world hello world");
        let last = c2.len() - 1;
        c2.truncate(last);
        // Either an explicit error or (rarely) EOB lands earlier; must not panic.
        let _ = decompress(&c2);
    }

    #[test]
    fn padding_is_ignored() {
        let data = b"pad me please pad me please".to_vec();
        let mut c = compress(&data);
        c.resize(c.len() + 100, 0);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn algorithm2_blocks_cover_all_records_in_order() {
        let records = salary_records(3000);
        let blocks = pack_records(&records, 4000);
        assert!(blocks.len() > 1);
        let mut next = 0usize;
        for b in &blocks {
            assert_eq!(b.first_record, next, "blocks must tile the record sequence");
            next = b.last_record + 1;
            let recs = unpack_records(&b.data).unwrap();
            assert_eq!(recs.len(), b.last_record - b.first_record + 1);
            assert_eq!(recs, records[b.first_record..=b.last_record].to_vec());
        }
        assert_eq!(next, records.len());
    }

    #[test]
    fn algorithm2_blocks_are_block_sized() {
        let records = salary_records(3000);
        let blocks = pack_records(&records, 4000);
        for b in &blocks[..blocks.len() - 1] {
            assert_eq!(
                b.data.len(),
                4000,
                "non-final blocks are exactly block-sized"
            );
        }
        assert!(blocks.last().unwrap().data.len() <= 4000);
        // Utilization: each full block holds a decent number of records.
        let avg = records.len() as f64 / blocks.len() as f64;
        assert!(
            avg > 50.0,
            "expected dozens of records per block, got {avg:.0}"
        );
    }

    #[test]
    fn algorithm2_single_oversized_record() {
        // An incompressible record larger than the block.
        let mut x = 7u32;
        let big: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        let records = vec![b"small".to_vec(), big.clone(), b"another".to_vec()];
        let blocks = pack_records(&records, 4000);
        let all: Vec<Vec<u8>> = blocks
            .iter()
            .flat_map(|b| unpack_records(&b.data).unwrap())
            .collect();
        assert_eq!(all, records);
        assert!(
            blocks.iter().any(|b| b.data.len() > 4000),
            "oversized block expected"
        );
    }

    #[test]
    fn empty_input() {
        assert!(pack_records(&[], 4000).is_empty());
    }

    #[test]
    fn block_level_random_access() {
        // The point of BlockZIP: decompressing one block must not require
        // any other block.
        let records = salary_records(2000);
        let blocks = pack_records(&records, 4000);
        let mid = &blocks[blocks.len() / 2];
        let recs = unpack_records(&mid.data).unwrap();
        assert_eq!(recs[0], records[mid.first_record]);
    }
}
