//! Property tests for the BlockZIP codec and Algorithm 2.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compress_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..8000)) {
        let c = blockzip::compress(&data);
        prop_assert_eq!(blockzip::decompress(&c).unwrap(), data);
    }

    #[test]
    fn compress_roundtrips_repetitive_bytes(
        unit in proptest::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..600,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = blockzip::compress(&data);
        prop_assert_eq!(blockzip::decompress(&c).unwrap(), data.clone());
        if data.len() > 1000 {
            prop_assert!(c.len() < data.len(), "repetitive data must shrink");
        }
    }

    #[test]
    fn corrupted_streams_never_panic(
        data in proptest::collection::vec(any::<u8>(), 10..2000),
        flip in 0usize..2000,
        trunc in 0usize..2000,
    ) {
        let mut c = blockzip::compress(&data);
        // Bit flip.
        let i = flip % c.len();
        c[i] ^= 0x40;
        let _ = blockzip::decompress(&c); // may Err or roundtrip-mismatch; must not panic
        // Truncation.
        let t = trunc % c.len();
        let _ = blockzip::decompress(&c[..t]);
    }

    #[test]
    fn algorithm2_partitions_any_record_stream(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..120),
        block_size in 256usize..4096,
    ) {
        let blocks = blockzip::pack_records(&records, block_size);
        if records.is_empty() {
            prop_assert!(blocks.is_empty());
            return Ok(());
        }
        let mut next = 0usize;
        let mut all: Vec<Vec<u8>> = Vec::new();
        for b in &blocks {
            prop_assert_eq!(b.first_record, next, "blocks tile the stream");
            next = b.last_record + 1;
            all.extend(blockzip::unpack_records(&b.data).unwrap());
        }
        prop_assert_eq!(next, records.len());
        prop_assert_eq!(all, records);
    }
}
