//! The XQuery abstract syntax tree.

/// A parsed query module: optional user function declarations followed by
/// the main expression.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryModule {
    /// `declare function local:name($p1, $p2) { body };` declarations.
    pub functions: Vec<FunctionDecl>,
    /// The query body.
    pub body: Expr,
}

/// A user-declared function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (prefix kept verbatim, e.g. `local:pay`).
    pub name: String,
    /// Parameter variable names (without `$`).
    pub params: Vec<String>,
    /// Function body.
    pub body: Expr,
}

/// Comparison operators (XQuery general comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

/// One `for`/`let` binding in a FLWOR expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// `for $var in expr` — iterates item by item.
    For { var: String, seq: Expr },
    /// `let $var := expr` — binds the whole sequence.
    Let { var: String, seq: Expr },
}

/// An ordering key in `order by`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    /// Key expression.
    pub key: Expr,
    /// Ascending (default) or descending.
    pub ascending: bool,
}

/// A path step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `name` — child elements with this tag.
    Child(String),
    /// `*` — all child elements.
    AnyChild,
    /// `@name` — attribute value (atomic).
    Attribute(String),
    /// `//name` was parsed into this: descendant-or-self then child.
    Descendant(String),
    /// `//*`
    AnyDescendant,
    /// `.` — the context item.
    SelfStep,
    /// `..` — parent element.
    Parent,
    /// `text()` — child text nodes.
    Text,
}

/// XQuery expressions (the subset used by the paper's queries).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// String literal.
    StrLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Decimal literal.
    DecLit(f64),
    /// `$var`
    Var(String),
    /// The context item `.` (inside predicates / paths).
    ContextItem,
    /// Empty sequence `()`.
    Empty,
    /// Sequence construction `a, b, c`.
    Seq(Vec<Expr>),
    /// FLWOR: bindings, optional where, optional order-by, return.
    Flwor {
        /// `for` / `let` clauses in source order.
        bindings: Vec<Binding>,
        /// `where` filter.
        where_clause: Option<Box<Expr>>,
        /// `order by` keys.
        order_by: Vec<OrderSpec>,
        /// `return` expression.
        ret: Box<Expr>,
    },
    /// `some`/`every $v in seq satisfies pred`.
    Quantified {
        /// True for `every`, false for `some`.
        every: bool,
        /// Bound variable.
        var: String,
        /// The searched sequence.
        seq: Box<Expr>,
        /// The predicate.
        pred: Box<Expr>,
    },
    /// `if (c) then t else e`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `a or b`
    Or(Box<Expr>, Box<Expr>),
    /// `a and b`
    And(Box<Expr>, Box<Expr>),
    /// General comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// A path: source expression, then steps, each with predicates.
    Path {
        /// The step source (e.g. `doc("x.xml")`, a variable, or the
        /// context item for relative paths).
        base: Box<Expr>,
        /// Steps with their predicate lists.
        steps: Vec<(Step, Vec<Expr>)>,
    },
    /// Function call.
    Call(String, Vec<Expr>),
    /// Computed element constructor `element name { content }`.
    ElementCtor {
        /// Element name.
        name: String,
        /// Content expression (None for empty).
        content: Option<Box<Expr>>,
    },
    /// Direct constructor `<name a="v{e}">{content}</name>`.
    DirectCtor {
        /// Element name.
        name: String,
        /// Attributes: name → list of literal/expression parts.
        attrs: Vec<(String, Vec<AttrPart>)>,
        /// Ordered children: literal text or enclosed expressions.
        content: Vec<DirectContent>,
    },
}

/// A piece of a direct-constructor attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrPart {
    /// Literal text.
    Text(String),
    /// `{ expr }`.
    Expr(Expr),
}

/// A piece of direct-constructor content.
#[derive(Debug, Clone, PartialEq)]
pub enum DirectContent {
    /// Literal text.
    Text(String),
    /// `{ expr }`.
    Expr(Expr),
    /// A nested direct constructor.
    Child(Expr),
}
