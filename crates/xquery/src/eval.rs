//! The native XQuery evaluator.
//!
//! Evaluates parsed queries directly over the `Rc`-node model — this is
//! the execution path a native XML database (Tamino in the paper) uses,
//! and the semantics oracle the ArchIS XQuery→SQL/XML translator is tested
//! against.

use crate::ast::*;
use crate::functions::call_builtin;
use crate::value::*;
use crate::{Result, XQueryError};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;
use temporal::Date;
use xmldom::Element;

/// Resolves `doc("uri")` calls to document roots.
pub trait DocResolver {
    /// The root node for a URI, or `None` if unknown.
    fn resolve(&self, uri: &str) -> Option<XNode>;
}

/// A simple in-memory resolver backed by a map.
#[derive(Default)]
pub struct MapResolver {
    docs: HashMap<String, XNode>,
}

impl MapResolver {
    /// Empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a document under a URI. The root element is wrapped in a
    /// synthetic `#document` node so that `doc("uri")/rootname/...` paths
    /// resolve with XPath document-node semantics.
    pub fn insert(&mut self, uri: impl Into<String>, root: Element) {
        self.insert_node(uri, XNode::from_dom(&root));
    }

    /// Register a pre-converted node (wrapped in a `#document` node unless
    /// it already is one).
    pub fn insert_node(&mut self, uri: impl Into<String>, root: XNode) {
        let doc = wrap_document(root);
        self.docs.insert(uri.into(), doc);
    }
}

impl DocResolver for MapResolver {
    fn resolve(&self, uri: &str) -> Option<XNode> {
        self.docs.get(uri).cloned()
    }
}

/// The XQuery engine: a document resolver plus evaluation options.
pub struct Engine {
    resolver: Box<dyn DocResolver>,
    /// The value of `current-date()` and the instantiation of *now*
    /// (fixed for determinism; set with [`Engine::set_now`]).
    now: Date,
}

impl Engine {
    /// Engine over a resolver, with `current-date()` pinned to 2005-01-01
    /// (the paper's publication era) until [`Engine::set_now`] is called.
    pub fn new(resolver: impl DocResolver + 'static) -> Self {
        Engine {
            resolver: Box::new(resolver),
            now: Date::from_ymd(2005, 1, 1).expect("valid date"),
        }
    }

    /// Pin `current-date()`.
    pub fn set_now(&mut self, now: Date) {
        self.now = now;
    }

    /// The pinned current date.
    pub fn now(&self) -> Date {
        self.now
    }

    /// Resolve a document URI.
    pub fn doc(&self, uri: &str) -> Result<XNode> {
        self.resolver
            .resolve(uri)
            .ok_or_else(|| XQueryError::UnknownDoc(uri.to_string()))
    }

    /// Parse and evaluate a query, returning the result sequence.
    pub fn eval(&self, query: &str) -> Result<Sequence> {
        let module = crate::parser::parse_query(query)?;
        self.eval_module(&module)
    }

    /// Evaluate a parsed module.
    pub fn eval_module(&self, module: &QueryModule) -> Result<Sequence> {
        let mut fns = HashMap::new();
        for f in &module.functions {
            fns.insert((normalize_fn_name(&f.name), f.params.len()), f.clone());
        }
        let mut ctx = Ctx {
            engine: self,
            vars: HashMap::new(),
            ctx_item: None,
            ctx_pos: None,
            fns: &fns,
            depth: 0,
        };
        eval_expr(&mut ctx, &module.body)
    }

    /// Evaluate and serialize the result sequence: nodes as XML, atomics as
    /// text, items separated by newlines.
    pub fn eval_to_xml(&self, query: &str) -> Result<String> {
        let seq = self.eval(query)?;
        Ok(serialize_sequence(&seq))
    }
}

/// Serialize a result sequence (nodes as XML, atomics as text).
pub fn serialize_sequence(seq: &Sequence) -> String {
    let mut parts = Vec::with_capacity(seq.len());
    for item in seq {
        match item {
            Item::Node(n) => parts.push(n.to_dom().to_xml()),
            Item::Atom(a) => parts.push(a.to_text()),
        }
    }
    parts.join("\n")
}

/// Wrap a root element in a synthetic `#document` node (idempotent).
pub fn wrap_document(root: XNode) -> XNode {
    if root.as_elem().map(|e| e.name.as_str()) == Some("#document") {
        return root;
    }
    let doc = XNode::new_elem("#document");
    if let Some(d) = doc.as_elem() {
        append_child(d, root);
    }
    doc
}

fn normalize_fn_name(name: &str) -> String {
    // Strip common prefixes so `local:f`, `fn:count`, `xs:date` match.
    match name.split_once(':') {
        Some((_, rest)) if !rest.is_empty() => rest.to_ascii_lowercase(),
        _ => name.to_ascii_lowercase(),
    }
}

pub(crate) struct Ctx<'a> {
    pub(crate) engine: &'a Engine,
    pub(crate) vars: HashMap<String, Sequence>,
    pub(crate) ctx_item: Option<Item>,
    /// `(position, last)` of the context item within its predicate's
    /// candidate list (1-based), for `position()`/`last()`.
    pub(crate) ctx_pos: Option<(usize, usize)>,
    pub(crate) fns: &'a HashMap<(String, usize), FunctionDecl>,
    pub(crate) depth: usize,
}

const MAX_DEPTH: usize = 64;

pub(crate) fn eval_expr(ctx: &mut Ctx, expr: &Expr) -> Result<Sequence> {
    match expr {
        Expr::StrLit(s) => Ok(vec![Item::Atom(Atomic::Str(s.clone()))]),
        Expr::IntLit(i) => Ok(vec![Item::Atom(Atomic::Int(*i))]),
        Expr::DecLit(d) => Ok(vec![Item::Atom(Atomic::Double(*d))]),
        Expr::Empty => Ok(vec![]),
        Expr::Var(v) => ctx
            .vars
            .get(v)
            .cloned()
            .ok_or_else(|| XQueryError::Eval(format!("unbound variable ${v}"))),
        Expr::ContextItem => ctx
            .ctx_item
            .clone()
            .map(|i| vec![i])
            .ok_or_else(|| XQueryError::Eval("no context item".into())),
        Expr::Seq(items) => {
            let mut out = Vec::new();
            for e in items {
                out.extend(eval_expr(ctx, e)?);
            }
            Ok(out)
        }
        Expr::If(c, t, e) => {
            let cond = eval_expr(ctx, c)?;
            if effective_boolean(&cond)? {
                eval_expr(ctx, t)
            } else {
                eval_expr(ctx, e)
            }
        }
        Expr::Or(l, r) => {
            let lv = effective_boolean(&eval_expr(ctx, l)?)?;
            if lv {
                return Ok(vec![Item::Atom(Atomic::Bool(true))]);
            }
            let rv = effective_boolean(&eval_expr(ctx, r)?)?;
            Ok(vec![Item::Atom(Atomic::Bool(rv))])
        }
        Expr::And(l, r) => {
            let lv = effective_boolean(&eval_expr(ctx, l)?)?;
            if !lv {
                return Ok(vec![Item::Atom(Atomic::Bool(false))]);
            }
            let rv = effective_boolean(&eval_expr(ctx, r)?)?;
            Ok(vec![Item::Atom(Atomic::Bool(rv))])
        }
        Expr::Cmp(op, l, r) => {
            let ls = eval_expr(ctx, l)?;
            let rs = eval_expr(ctx, r)?;
            Ok(vec![Item::Atom(Atomic::Bool(general_compare(
                *op, &ls, &rs,
            )))])
        }
        Expr::Arith(op, l, r) => {
            let ls = eval_expr(ctx, l)?;
            let rs = eval_expr(ctx, r)?;
            arith(*op, &ls, &rs)
        }
        Expr::Neg(e) => {
            let s = eval_expr(ctx, e)?;
            if s.is_empty() {
                return Ok(vec![]);
            }
            match s[0].atomize() {
                Atomic::Int(i) => Ok(vec![Item::Atom(Atomic::Int(-i))]),
                Atomic::Double(d) => Ok(vec![Item::Atom(Atomic::Double(-d))]),
                other => Err(XQueryError::Type(format!("cannot negate {other:?}"))),
            }
        }
        Expr::Flwor {
            bindings,
            where_clause,
            order_by,
            ret,
        } => {
            let mut out: Vec<(Vec<Atomic>, Sequence)> = Vec::new();
            flwor_rec(ctx, bindings, 0, where_clause, order_by, ret, &mut out)?;
            if !order_by.is_empty() {
                out.sort_by(|(a, _), (b, _)| {
                    for (i, spec) in order_by.iter().enumerate() {
                        let ord = atomic_compare(&a[i], &b[i]).unwrap_or(Ordering::Equal);
                        let ord = if spec.ascending { ord } else { ord.reverse() };
                        if ord != Ordering::Equal {
                            return ord;
                        }
                    }
                    Ordering::Equal
                });
            }
            Ok(out.into_iter().flat_map(|(_, s)| s).collect())
        }
        Expr::Quantified {
            every,
            var,
            seq,
            pred,
        } => {
            let items = eval_expr(ctx, seq)?;
            let saved = ctx.vars.get(var).cloned();
            let mut result = *every;
            for item in items {
                ctx.vars.insert(var.clone(), vec![item]);
                let holds = effective_boolean(&eval_expr(ctx, pred)?)?;
                if *every && !holds {
                    result = false;
                    break;
                }
                if !*every && holds {
                    result = true;
                    break;
                }
            }
            restore_var(ctx, var, saved);
            Ok(vec![Item::Atom(Atomic::Bool(result))])
        }
        Expr::Path { base, steps } => {
            let mut current = eval_expr(ctx, base)?;
            for (step, preds) in steps {
                current = eval_step(ctx, &current, step, preds)?;
            }
            Ok(current)
        }
        Expr::Call(name, args) => {
            let norm = normalize_fn_name(name);
            if let Some(decl) = ctx.fns.get(&(norm.clone(), args.len())).cloned() {
                if ctx.depth >= MAX_DEPTH {
                    return Err(XQueryError::Eval(format!(
                        "recursion limit in function {name}"
                    )));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(eval_expr(ctx, a)?);
                }
                let mut inner = Ctx {
                    engine: ctx.engine,
                    vars: HashMap::new(),
                    ctx_item: None,
                    ctx_pos: None,
                    fns: ctx.fns,
                    depth: ctx.depth + 1,
                };
                for (p, v) in decl.params.iter().zip(vals) {
                    inner.vars.insert(p.clone(), v);
                }
                return eval_expr(&mut inner, &decl.body);
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(ctx, a)?);
            }
            call_builtin(ctx, &norm, vals)
                .ok_or(XQueryError::UnknownFunction(name.clone(), args.len()))?
        }
        Expr::ElementCtor { name, content } => {
            let content_seq = match content {
                Some(c) => eval_expr(ctx, c)?,
                None => vec![],
            };
            Ok(vec![Item::Node(construct_element(name, &[], &content_seq))])
        }
        Expr::DirectCtor {
            name,
            attrs,
            content,
        } => {
            let mut attr_vals = Vec::with_capacity(attrs.len());
            for (aname, parts) in attrs {
                let mut text = String::new();
                for p in parts {
                    match p {
                        AttrPart::Text(t) => text.push_str(t),
                        AttrPart::Expr(e) => {
                            let s = eval_expr(ctx, e)?;
                            let joined: Vec<String> =
                                s.iter().map(|i| i.atomize().to_text()).collect();
                            text.push_str(&joined.join(" "));
                        }
                    }
                }
                attr_vals.push((aname.clone(), text));
            }
            let mut content_seq: Sequence = Vec::new();
            for c in content {
                match c {
                    DirectContent::Text(t) => {
                        content_seq.push(Item::Node(XNode::Text(Rc::new(t.clone()))))
                    }
                    DirectContent::Expr(e) => content_seq.extend(eval_expr(ctx, e)?),
                    DirectContent::Child(e) => content_seq.extend(eval_expr(ctx, e)?),
                }
            }
            Ok(vec![Item::Node(construct_element(
                name,
                &attr_vals,
                &content_seq,
            ))])
        }
    }
}

fn restore_var(ctx: &mut Ctx, var: &str, saved: Option<Sequence>) {
    match saved {
        Some(s) => {
            ctx.vars.insert(var.to_string(), s);
        }
        None => {
            ctx.vars.remove(var);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn flwor_rec(
    ctx: &mut Ctx,
    bindings: &[Binding],
    idx: usize,
    where_clause: &Option<Box<Expr>>,
    order_by: &[OrderSpec],
    ret: &Expr,
    out: &mut Vec<(Vec<Atomic>, Sequence)>,
) -> Result<()> {
    if idx == bindings.len() {
        if let Some(w) = where_clause {
            if !effective_boolean(&eval_expr(ctx, w)?)? {
                return Ok(());
            }
        }
        let mut keys = Vec::with_capacity(order_by.len());
        for spec in order_by {
            let k = eval_expr(ctx, &spec.key)?;
            keys.push(
                k.first()
                    .map(|i| i.atomize())
                    .unwrap_or(Atomic::Str(String::new())),
            );
        }
        let value = eval_expr(ctx, ret)?;
        out.push((keys, value));
        return Ok(());
    }
    match &bindings[idx] {
        Binding::For { var, seq } => {
            let items = eval_expr(ctx, seq)?;
            let saved = ctx.vars.get(var).cloned();
            for item in items {
                ctx.vars.insert(var.clone(), vec![item]);
                flwor_rec(ctx, bindings, idx + 1, where_clause, order_by, ret, out)?;
            }
            restore_var(ctx, var, saved);
        }
        Binding::Let { var, seq } => {
            let value = eval_expr(ctx, seq)?;
            let saved = ctx.vars.get(var).cloned();
            ctx.vars.insert(var.clone(), value);
            flwor_rec(ctx, bindings, idx + 1, where_clause, order_by, ret, out)?;
            restore_var(ctx, var, saved);
        }
    }
    Ok(())
}

fn eval_step(ctx: &mut Ctx, input: &Sequence, step: &Step, preds: &[Expr]) -> Result<Sequence> {
    let mut result: Sequence = Vec::new();
    for item in input {
        // Candidates for this one context item.
        let candidates: Sequence = match step {
            Step::SelfStep => vec![item.clone()],
            Step::Parent => match item.as_node().and_then(XNode::as_elem) {
                Some(e) => match e.parent.borrow().upgrade() {
                    Some(p) => vec![Item::Node(XNode::Elem(p))],
                    None => vec![],
                },
                None => vec![],
            },
            Step::Attribute(name) => match item.as_node() {
                Some(n) => match n.attr(name) {
                    Some(v) => vec![Item::Atom(Atomic::Str(v))],
                    None => vec![],
                },
                None => vec![],
            },
            Step::Child(name) => children_of(item, Some(name)),
            Step::AnyChild => children_of(item, None),
            Step::Text => match item.as_node().and_then(XNode::as_elem) {
                Some(e) => e
                    .children
                    .borrow()
                    .iter()
                    .filter(|c| matches!(c, XNode::Text(_)))
                    .map(|c| Item::Node(c.clone()))
                    .collect(),
                None => vec![],
            },
            Step::Descendant(name) => descendants_of(item, Some(name)),
            Step::AnyDescendant => descendants_of(item, None),
        };
        // Apply predicates over this candidate list.
        let mut kept = candidates;
        for p in preds {
            kept = apply_predicate(ctx, kept, p)?;
        }
        result.extend(kept);
    }
    Ok(result)
}

fn children_of(item: &Item, name: Option<&str>) -> Sequence {
    match item.as_node().and_then(XNode::as_elem) {
        Some(e) => e
            .children
            .borrow()
            .iter()
            .filter_map(|c| match c {
                XNode::Elem(ce) if name.is_none() || Some(ce.name.as_str()) == name => {
                    Some(Item::Node(c.clone()))
                }
                _ => None,
            })
            .collect(),
        None => vec![],
    }
}

fn descendants_of(item: &Item, name: Option<&str>) -> Sequence {
    fn rec(n: &XNode, name: Option<&str>, out: &mut Sequence) {
        if let XNode::Elem(e) = n {
            for c in e.children.borrow().iter() {
                if let XNode::Elem(ce) = c {
                    if name.is_none() || Some(ce.name.as_str()) == name {
                        out.push(Item::Node(c.clone()));
                    }
                    rec(c, name, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    if let Some(n) = item.as_node() {
        // descendant-or-self semantics for the `//name` shorthand.
        if let XNode::Elem(e) = n {
            if name.is_none() || Some(e.name.as_str()) == name {
                // `self` is matched by `//name` only via `descendant-or-self
                // ::node()/child::name`; the standard shorthand does NOT
                // include the context element itself unless a child matches.
                // We therefore do not push `n` here.
                let _ = e;
            }
        }
        rec(n, name, &mut out);
    }
    out
}

fn apply_predicate(ctx: &mut Ctx, candidates: Sequence, pred: &Expr) -> Result<Sequence> {
    let mut kept = Vec::new();
    let n = candidates.len();
    for (i, item) in candidates.into_iter().enumerate() {
        let saved = ctx.ctx_item.take();
        let saved_pos = ctx.ctx_pos.take();
        ctx.ctx_item = Some(item.clone());
        ctx.ctx_pos = Some((i + 1, n));
        let v = eval_expr(ctx, pred);
        ctx.ctx_item = saved;
        ctx.ctx_pos = saved_pos;
        let v = v?;
        // Positional predicate: a single numeric value selects by position.
        if v.len() == 1 {
            if let Item::Atom(a) = &v[0] {
                if let Atomic::Int(p) = a {
                    if *p == (i as i64) + 1 {
                        kept.push(item);
                    }
                    continue;
                }
                if let Atomic::Double(p) = a {
                    if *p == (i as f64) + 1.0 {
                        kept.push(item);
                    }
                    continue;
                }
            }
        }
        if effective_boolean(&v)? {
            kept.push(item);
        }
    }
    Ok(kept)
}

/// XQuery general comparison: existential over both sequences.
pub(crate) fn general_compare(op: CmpOp, ls: &Sequence, rs: &Sequence) -> bool {
    for l in ls {
        for r in rs {
            let (a, b) = (l.atomize(), r.atomize());
            if let Some(ord) = atomic_compare(&a, &b) {
                let hit = match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                };
                if hit {
                    return true;
                }
            }
        }
    }
    false
}

fn arith(op: ArithOp, ls: &Sequence, rs: &Sequence) -> Result<Sequence> {
    if ls.is_empty() || rs.is_empty() {
        return Ok(vec![]);
    }
    let a = ls[0].atomize();
    let b = rs[0].atomize();
    // Date arithmetic: date - date = days, date ± integer = date.
    if let (Some(da), Some(db)) = (
        match &a {
            Atomic::Date(d) => Some(*d),
            _ => None,
        },
        match &b {
            Atomic::Date(d) => Some(*d),
            _ => None,
        },
    ) {
        if op == ArithOp::Sub {
            return Ok(vec![Item::Atom(Atomic::Int(da.days_since(db) as i64))]);
        }
        return Err(XQueryError::Type(
            "only '-' is defined between dates".into(),
        ));
    }
    if let Atomic::Date(d) = &a {
        let n = b
            .as_number()
            .ok_or_else(|| XQueryError::Type("date arithmetic needs a number".into()))?
            as i32;
        return Ok(vec![Item::Atom(Atomic::Date(match op {
            ArithOp::Add => *d + n,
            ArithOp::Sub => *d - n,
            _ => return Err(XQueryError::Type("only +/- on dates".into())),
        }))]);
    }
    let (x, y) = (
        a.as_number()
            .ok_or_else(|| XQueryError::Type(format!("non-numeric operand {a:?}")))?,
        b.as_number()
            .ok_or_else(|| XQueryError::Type(format!("non-numeric operand {b:?}")))?,
    );
    let both_int = matches!(a, Atomic::Int(_)) && matches!(b, Atomic::Int(_));
    let result = match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => {
            if y == 0.0 {
                return Err(XQueryError::Eval("division by zero".into()));
            }
            x / y
        }
        ArithOp::Mod => {
            if y == 0.0 {
                return Err(XQueryError::Eval("modulo by zero".into()));
            }
            x % y
        }
    };
    if both_int && op != ArithOp::Div && result.fract() == 0.0 {
        Ok(vec![Item::Atom(Atomic::Int(result as i64))])
    } else {
        Ok(vec![Item::Atom(Atomic::Double(result))])
    }
}

/// Build an element from evaluated attribute values and a content sequence:
/// node items are deep-copied in; runs of adjacent atomics become one text
/// node with space-separated values (XQuery constructor semantics).
pub(crate) fn construct_element(
    name: &str,
    attrs: &[(String, String)],
    content: &Sequence,
) -> XNode {
    let node = XNode::new_elem(name);
    let elem = node.as_elem().unwrap().clone();
    *elem.attrs.borrow_mut() = attrs.to_vec();
    let mut pending_atoms: Vec<String> = Vec::new();
    let flush = |pending: &mut Vec<String>, elem: &Rc<ElemNode>| {
        if !pending.is_empty() {
            let text = pending.join(" ");
            pending.clear();
            append_child(elem, XNode::Text(Rc::new(text)));
        }
    };
    for item in content {
        match item {
            Item::Atom(a) => pending_atoms.push(a.to_text()),
            Item::Node(n) => {
                flush(&mut pending_atoms, &elem);
                append_child(&elem, n.deep_copy());
            }
        }
    }
    flush(&mut pending_atoms, &elem);
    node
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(docs: &[(&str, &str)]) -> Engine {
        let mut r = MapResolver::new();
        for (uri, xml) in docs {
            r.insert(*uri, xmldom::parse(xml).unwrap());
        }
        Engine::new(r)
    }

    const EMP: &str = r#"<employees tstart="1988-01-01" tend="9999-12-31">
      <employee tstart="1995-01-01" tend="9999-12-31">
        <id tstart="1995-01-01" tend="9999-12-31">1001</id>
        <name tstart="1995-01-01" tend="9999-12-31">Bob</name>
        <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
        <salary tstart="1995-06-01" tend="9999-12-31">70000</salary>
        <title tstart="1995-01-01" tend="1995-09-30">Engineer</title>
        <title tstart="1995-10-01" tend="9999-12-31">Sr Engineer</title>
        <deptno tstart="1995-01-01" tend="1995-09-30">d01</deptno>
        <deptno tstart="1995-10-01" tend="9999-12-31">d02</deptno>
      </employee>
      <employee tstart="1994-03-01" tend="1996-06-30">
        <id tstart="1994-03-01" tend="1996-06-30">1002</id>
        <name tstart="1994-03-01" tend="1996-06-30">Alice</name>
        <salary tstart="1994-03-01" tend="1996-06-30">80000</salary>
        <title tstart="1994-03-01" tend="1996-06-30">Manager</title>
        <deptno tstart="1994-03-01" tend="1996-06-30">d01</deptno>
      </employee>
    </employees>"#;

    fn emp_engine() -> Engine {
        engine_with(&[("employees.xml", EMP)])
    }

    #[test]
    fn literal_and_sequence() {
        let e = emp_engine();
        assert_eq!(e.eval_to_xml("1, 2, 3").unwrap(), "1\n2\n3");
        assert_eq!(e.eval_to_xml("()").unwrap(), "");
        assert_eq!(e.eval_to_xml(r#""hi""#).unwrap(), "hi");
    }

    #[test]
    fn path_with_predicate() {
        let e = emp_engine();
        let out = e
            .eval_to_xml(r#"doc("employees.xml")/employees/employee[name="Bob"]/title"#)
            .unwrap();
        assert!(out.contains(">Engineer<"));
        assert!(out.contains(">Sr Engineer<"));
        assert!(!out.contains("Manager"));
    }

    #[test]
    fn attribute_step() {
        let e = emp_engine();
        let out = e
            .eval_to_xml(r#"doc("employees.xml")/employees/employee[name="Alice"]/salary/@tstart"#)
            .unwrap();
        assert_eq!(out, "1994-03-01");
    }

    #[test]
    fn descendant_step() {
        let e = emp_engine();
        let out = e.eval(r#"doc("employees.xml")//salary"#).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn flwor_where_and_order() {
        let e = emp_engine();
        let out = e
            .eval_to_xml(
                r#"for $x in doc("employees.xml")/employees/employee
                   where $x/salary > 70000
                   return $x/name"#,
            )
            .unwrap();
        assert!(out.contains("Alice") && !out.contains("Bob"));
        let ordered = e
            .eval_to_xml(
                r#"for $x in doc("employees.xml")/employees/employee
                   order by $x/name descending
                   return string($x/name)"#,
            )
            .unwrap();
        assert_eq!(ordered, "Bob\nAlice");
    }

    #[test]
    fn let_binds_whole_sequence() {
        let e = emp_engine();
        let out = e
            .eval_to_xml(r#"let $s := doc("employees.xml")//salary return count($s)"#)
            .unwrap();
        assert_eq!(out, "3");
    }

    #[test]
    fn quantified_expressions() {
        let e = emp_engine();
        let every = e
            .eval_to_xml(r#"every $s in doc("employees.xml")//salary satisfies $s >= 60000"#)
            .unwrap();
        assert_eq!(every, "true");
        let some = e
            .eval_to_xml(r#"some $s in doc("employees.xml")//salary satisfies $s > 75000"#)
            .unwrap();
        assert_eq!(some, "true");
        let none = e
            .eval_to_xml(r#"some $s in doc("employees.xml")//salary satisfies $s > 99999"#)
            .unwrap();
        assert_eq!(none, "false");
    }

    #[test]
    fn element_constructors() {
        let e = emp_engine();
        let out = e
            .eval_to_xml(r#"element res { for $n in doc("employees.xml")//name return $n }"#)
            .unwrap();
        assert!(out.starts_with("<res>"));
        assert!(out.contains("Bob") && out.contains("Alice"));
        let direct = e
            .eval_to_xml(r#"<wrap kind="x{1+1}">{ doc("employees.xml")//name[1] }</wrap>"#)
            .unwrap();
        assert_eq!(
            direct,
            r#"<wrap kind="x2"><name tstart="1995-01-01" tend="9999-12-31">Bob</name></wrap>"#
        );
    }

    #[test]
    fn positional_predicate() {
        let e = emp_engine();
        let out = e
            .eval_to_xml(r#"string(doc("employees.xml")//salary[2])"#)
            .unwrap();
        assert_eq!(out, "70000");
    }

    #[test]
    fn atoms_in_constructors_join_with_spaces() {
        let e = emp_engine();
        assert_eq!(
            e.eval_to_xml("element x { 1, 2, 3 }").unwrap(),
            "<x>1 2 3</x>"
        );
    }

    #[test]
    fn arithmetic_and_types() {
        let e = emp_engine();
        assert_eq!(e.eval_to_xml("1 + 2 * 3").unwrap(), "7");
        assert_eq!(e.eval_to_xml("7 div 2").unwrap(), "3.5");
        assert_eq!(e.eval_to_xml("7 mod 2").unwrap(), "1");
        assert_eq!(
            e.eval_to_xml(r#"xs:date("1995-03-01") - xs:date("1995-01-01")"#)
                .unwrap(),
            "59"
        );
        assert!(e.eval("1 div 0").is_err());
    }

    #[test]
    fn if_then_else() {
        let e = emp_engine();
        assert_eq!(
            e.eval_to_xml(r#"if (1 < 2) then "y" else "n""#).unwrap(),
            "y"
        );
    }

    #[test]
    fn user_declared_functions() {
        let e = emp_engine();
        let out = e
            .eval_to_xml(
                r#"declare function local:top($s) { max($s) };
                   local:top(doc("employees.xml")//salary)"#,
            )
            .unwrap();
        assert_eq!(out, "80000");
    }

    #[test]
    fn recursive_function_hits_depth_limit() {
        let e = emp_engine();
        let err = e
            .eval("declare function local:f($x) { local:f($x) }; local:f(1)")
            .unwrap_err();
        assert!(matches!(err, XQueryError::Eval(_)));
    }

    #[test]
    fn unbound_variable_and_unknown_function() {
        let e = emp_engine();
        assert!(matches!(e.eval("$nope").unwrap_err(), XQueryError::Eval(_)));
        assert!(matches!(
            e.eval("frobnicate(1)").unwrap_err(),
            XQueryError::UnknownFunction(_, 1)
        ));
        assert!(matches!(
            e.eval(r#"doc("missing.xml")"#).unwrap_err(),
            XQueryError::UnknownDoc(_)
        ));
    }

    #[test]
    fn parent_step() {
        let e = emp_engine();
        let out = e
            .eval_to_xml(r#"string(doc("employees.xml")//salary[.="80000"]/../name)"#)
            .unwrap();
        assert_eq!(out, "Alice");
    }

    #[test]
    fn position_and_last_in_predicates() {
        let e = emp_engine();
        assert_eq!(
            e.eval_to_xml(r#"string(doc("employees.xml")//salary[position() = 2])"#)
                .unwrap(),
            "70000"
        );
        assert_eq!(
            e.eval_to_xml(r#"string(doc("employees.xml")//salary[last()])"#)
                .unwrap(),
            "80000"
        );
        assert_eq!(
            e.eval_to_xml(
                r#"for $s in doc("employees.xml")//salary[position() < last()]
                   return string($s)"#
            )
            .unwrap(),
            "60000\n70000"
        );
        assert!(
            e.eval("position()").is_err(),
            "no context outside predicates"
        );
    }

    #[test]
    fn general_comparison_is_existential() {
        let e = emp_engine();
        // Bob has two deptno values; = matches if ANY equals.
        let out = e
            .eval_to_xml(
                r#"for $x in doc("employees.xml")/employees/employee[deptno = "d02"]
                   return string($x/name)"#,
            )
            .unwrap();
        assert_eq!(out, "Bob");
    }
}
