//! An XQuery-subset engine for temporal queries over H-documents.
//!
//! The paper's central claim (§4) is that *"powerful temporal queries can
//! be expressed in XQuery without requiring the introduction of new
//! constructs in the language"*: the temporal machinery lives entirely in a
//! library of functions (`tstart`, `tend`, `toverlaps`, `tcontains`,
//! `tequals`, `tmeets`, `tprecedes`, `overlapinterval`, `telement`,
//! `timespan`, `tinterval`, `rtend`, `externalnow`, `coalesce`,
//! `restructure`, `tavg`, ...). This crate implements:
//!
//! * a lexer and recursive-descent parser for the XQuery subset the
//!   paper's queries use — FLWOR expressions, path expressions with
//!   predicates, quantified expressions (`some` / `every ... satisfies`),
//!   computed and direct element constructors, `if/then/else`, general
//!   comparisons, arithmetic, and user function declarations
//!   (`declare function`),
//! * a native evaluator over an `Rc`-based node tree built from
//!   [`xmldom`] documents (this is both the "Tamino" execution path of
//!   the evaluation and the semantics oracle the ArchIS translator is
//!   property-tested against),
//! * the full temporal function library of paper §4.2 and its Appendix.
//!
//! # Example
//!
//! ```
//! use xquery::{Engine, MapResolver};
//! let doc = r#"<employees>
//!   <employee><name>Bob</name>
//!     <title tstart="1995-01-01" tend="1995-09-30">Engineer</title>
//!     <title tstart="1995-10-01" tend="9999-12-31">Sr Engineer</title>
//!   </employee>
//! </employees>"#;
//! let mut resolver = MapResolver::new();
//! resolver.insert("employees.xml", xmldom::parse(doc).unwrap());
//! let engine = Engine::new(resolver);
//! let result = engine.eval_to_xml(
//!     r#"element title_history {
//!            for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
//!            return $t }"#,
//! ).unwrap();
//! assert!(result.contains("Sr Engineer"));
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub mod ast;
pub mod eval;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod value;

pub use ast::{Expr, QueryModule};
pub use eval::{DocResolver, Engine, MapResolver};
pub use parser::parse_query;
pub use value::{Atomic, Item, Sequence, XNode};

use std::fmt;

/// Errors from parsing or evaluating XQuery.
#[derive(Debug, Clone, PartialEq)]
pub enum XQueryError {
    /// Lexical error with byte offset.
    Lex(usize, String),
    /// Syntax error with byte offset.
    Parse(usize, String),
    /// Runtime (dynamic) error.
    Eval(String),
    /// Unknown document URI.
    UnknownDoc(String),
    /// Unknown function or wrong arity.
    UnknownFunction(String, usize),
    /// Type error during evaluation.
    Type(String),
}

impl fmt::Display for XQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XQueryError::Lex(at, m) => write!(f, "lexical error at byte {at}: {m}"),
            XQueryError::Parse(at, m) => write!(f, "syntax error at byte {at}: {m}"),
            XQueryError::Eval(m) => write!(f, "evaluation error: {m}"),
            XQueryError::UnknownDoc(u) => write!(f, "unknown document: {u}"),
            XQueryError::UnknownFunction(n, a) => {
                write!(f, "unknown function {n}#{a}")
            }
            XQueryError::Type(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for XQueryError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, XQueryError>;
