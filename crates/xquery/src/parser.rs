//! Recursive-descent parser for the XQuery subset.
//!
//! Direct element constructors are parsed at the character level: when the
//! token stream shows `<name` in expression position, the parser re-enters
//! the raw source at that byte offset, consumes the constructor (handling
//! nested elements, attribute templates and `{ expr }` enclosures by brace
//! matching), and then resynchronizes the token cursor past the
//! constructor's closing tag.

use crate::ast::*;
use crate::lexer::{lex, SpannedTok, Tok};
use crate::{Result, XQueryError};

/// Parse a full query module (optional `declare function`s, then the body).
pub fn parse_query(src: &str) -> Result<QueryModule> {
    let toks = lex(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    let mut functions = Vec::new();
    while p.peek_name("declare") {
        functions.push(p.parse_function_decl()?);
    }
    let body = p.parse_expr()?;
    if p.pos < p.toks.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(QueryModule { functions, body })
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> XQueryError {
        let at = self
            .toks
            .get(self.pos)
            .map(|t| t.at)
            .unwrap_or(self.src.len());
        XQueryError::Parse(at, msg.into())
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off).map(|t| &t.tok)
    }

    fn peek_name(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Name(n)) if n == kw)
    }

    fn peek_name_at(&self, off: usize, kw: &str) -> bool {
        matches!(self.peek_at(off), Some(Tok::Name(n)) if n == kw)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn expect_name(&mut self, kw: &str) -> Result<()> {
        if self.peek_name(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}, found {:?}", self.peek())))
        }
    }

    fn expect_var(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Var(v)) => Ok(v),
            other => Err(self.err(format!("expected $variable, found {other:?}"))),
        }
    }

    fn expect_any_name(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Name(n)) => Ok(n),
            other => Err(self.err(format!("expected a name, found {other:?}"))),
        }
    }

    // -- declarations -----------------------------------------------------

    fn parse_function_decl(&mut self) -> Result<FunctionDecl> {
        self.expect_name("declare")?;
        self.expect_name("function")?;
        let name = self.expect_any_name()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                params.push(self.expect_var()?);
                // Optional `as type` annotations are skipped.
                if self.peek_name("as") {
                    self.pos += 1;
                    self.expect_any_name()?;
                    // possible occurrence indicator * + ?
                    if matches!(self.peek(), Some(Tok::Star | Tok::Plus)) {
                        self.pos += 1;
                    }
                }
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        if self.peek_name("as") {
            self.pos += 1;
            self.expect_any_name()?;
            if matches!(self.peek(), Some(Tok::Star | Tok::Plus)) {
                self.pos += 1;
            }
        }
        self.expect(&Tok::LBrace)?;
        let body = self.parse_expr()?;
        self.expect(&Tok::RBrace)?;
        self.expect(&Tok::Semi)?;
        Ok(FunctionDecl { name, params, body })
    }

    // -- expressions ------------------------------------------------------

    /// `Expr := ExprSingle ("," ExprSingle)*`
    fn parse_expr(&mut self) -> Result<Expr> {
        let first = self.parse_expr_single()?;
        if self.peek() != Some(&Tok::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            items.push(self.parse_expr_single()?);
        }
        Ok(Expr::Seq(items))
    }

    fn parse_expr_single(&mut self) -> Result<Expr> {
        if (self.peek_name("for") || self.peek_name("let"))
            && matches!(self.peek_at(1), Some(Tok::Var(_)))
        {
            return self.parse_flwor();
        }
        if (self.peek_name("some") || self.peek_name("every"))
            && matches!(self.peek_at(1), Some(Tok::Var(_)))
        {
            return self.parse_quantified();
        }
        if self.peek_name("if") && self.peek_at(1) == Some(&Tok::LParen) {
            return self.parse_if();
        }
        self.parse_or()
    }

    fn parse_flwor(&mut self) -> Result<Expr> {
        let mut bindings = Vec::new();
        loop {
            if self.peek_name("for") && matches!(self.peek_at(1), Some(Tok::Var(_))) {
                self.pos += 1;
                loop {
                    let var = self.expect_var()?;
                    self.expect_name("in")?;
                    let seq = self.parse_expr_single()?;
                    bindings.push(Binding::For { var, seq });
                    if self.peek() == Some(&Tok::Comma)
                        && matches!(self.peek_at(1), Some(Tok::Var(_)))
                    {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            } else if self.peek_name("let") && matches!(self.peek_at(1), Some(Tok::Var(_))) {
                self.pos += 1;
                loop {
                    let var = self.expect_var()?;
                    self.expect(&Tok::Assign)?;
                    let seq = self.parse_expr_single()?;
                    bindings.push(Binding::Let { var, seq });
                    if self.peek() == Some(&Tok::Comma)
                        && matches!(self.peek_at(1), Some(Tok::Var(_)))
                    {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        let where_clause = if self.peek_name("where") {
            self.pos += 1;
            Some(Box::new(self.parse_expr_single()?))
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.peek_name("order") && self.peek_name_at(1, "by") {
            self.pos += 2;
            loop {
                let key = self.parse_expr_single()?;
                let mut ascending = true;
                if self.peek_name("ascending") {
                    self.pos += 1;
                } else if self.peek_name("descending") {
                    self.pos += 1;
                    ascending = false;
                }
                order_by.push(OrderSpec { key, ascending });
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect_name("return")?;
        let ret = Box::new(self.parse_expr_single()?);
        Ok(Expr::Flwor {
            bindings,
            where_clause,
            order_by,
            ret,
        })
    }

    fn parse_quantified(&mut self) -> Result<Expr> {
        let every = self.peek_name("every");
        self.pos += 1;
        let var = self.expect_var()?;
        self.expect_name("in")?;
        let seq = Box::new(self.parse_expr_single()?);
        self.expect_name("satisfies")?;
        let pred = Box::new(self.parse_expr_single()?);
        Ok(Expr::Quantified {
            every,
            var,
            seq,
            pred,
        })
    }

    fn parse_if(&mut self) -> Result<Expr> {
        self.expect_name("if")?;
        self.expect(&Tok::LParen)?;
        let c = self.parse_expr()?;
        self.expect(&Tok::RParen)?;
        self.expect_name("then")?;
        let t = self.parse_expr_single()?;
        self.expect_name("else")?;
        let e = self.parse_expr_single()?;
        Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e)))
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.peek_name("or") {
            self.pos += 1;
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_comparison()?;
        while self.peek_name("and") {
            self.pos += 1;
            let right = self.parse_comparison()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        // Extension over the strict XQuery grammar: quantified and
        // conditional expressions may appear directly as operands of
        // `and`/`or` (the paper's QUERY 8 writes
        // `every ... satisfies (...) and every ...` without parentheses).
        if (self.peek_name("some") || self.peek_name("every"))
            && matches!(self.peek_at(1), Some(Tok::Var(_)))
        {
            return self.parse_quantified();
        }
        if self.peek_name("if") && self.peek_at(1) == Some(&Tok::LParen) {
            return self.parse_if();
        }
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            Some(Tok::Name(n)) if n == "eq" => Some(CmpOp::Eq),
            Some(Tok::Name(n)) if n == "ne" => Some(CmpOp::Ne),
            Some(Tok::Name(n)) if n == "lt" => Some(CmpOp::Lt),
            Some(Tok::Name(n)) if n == "le" => Some(CmpOp::Le),
            Some(Tok::Name(n)) if n == "gt" => Some(CmpOp::Gt),
            Some(Tok::Name(n)) if n == "ge" => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            Ok(Expr::Cmp(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Name(n)) if n == "div" => ArithOp::Div,
                Some(Tok::Name(n)) if n == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            let e = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        self.parse_path()
    }

    /// A path expression: a primary (or leading `/`) followed by `/step`s.
    fn parse_path(&mut self) -> Result<Expr> {
        let mut steps: Vec<(Step, Vec<Expr>)> = Vec::new();
        let base: Expr;
        match self.peek() {
            // Leading name (relative path) that is NOT a function call or
            // keyword expression — a child step on the context item.
            Some(Tok::Name(n))
                if self.peek_at(1) != Some(&Tok::LParen)
                    && !(n == "element"
                        && matches!(self.peek_at(1), Some(Tok::Name(_)))
                        && self.peek_at(2) == Some(&Tok::LBrace)) =>
            {
                let name = self.expect_any_name()?;
                base = Expr::ContextItem;
                let preds = self.parse_predicates()?;
                steps.push((Step::Child(name), preds));
            }
            Some(Tok::At) => {
                self.pos += 1;
                let name = self.expect_any_name()?;
                base = Expr::ContextItem;
                let preds = self.parse_predicates()?;
                steps.push((Step::Attribute(name), preds));
            }
            _ => {
                base = self.parse_postfix()?;
            }
        }
        loop {
            let descendant = match self.peek() {
                Some(Tok::Slash) => false,
                Some(Tok::SlashSlash) => true,
                _ => break,
            };
            self.pos += 1;
            let step = match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    if descendant {
                        Step::AnyDescendant
                    } else {
                        Step::AnyChild
                    }
                }
                Some(Tok::At) => {
                    self.pos += 1;
                    let name = self.expect_any_name()?;
                    Step::Attribute(name)
                }
                Some(Tok::DotDot) => {
                    self.pos += 1;
                    Step::Parent
                }
                Some(Tok::Name(n)) if n == "text" && self.peek_at(1) == Some(&Tok::LParen) => {
                    self.pos += 1;
                    self.expect(&Tok::LParen)?;
                    self.expect(&Tok::RParen)?;
                    Step::Text
                }
                Some(Tok::Name(_)) => {
                    let name = self.expect_any_name()?;
                    if descendant {
                        Step::Descendant(name)
                    } else {
                        Step::Child(name)
                    }
                }
                other => return Err(self.err(format!("expected a path step, found {other:?}"))),
            };
            let preds = self.parse_predicates()?;
            steps.push((step, preds));
        }
        if steps.is_empty() {
            Ok(base)
        } else {
            Ok(Expr::Path {
                base: Box::new(base),
                steps,
            })
        }
    }

    fn parse_predicates(&mut self) -> Result<Vec<Expr>> {
        let mut preds = Vec::new();
        while self.peek() == Some(&Tok::LBracket) {
            self.pos += 1;
            preds.push(self.parse_expr()?);
            self.expect(&Tok::RBracket)?;
        }
        Ok(preds)
    }

    /// Primary expression, with trailing predicates (e.g. `$e[...]`).
    fn parse_postfix(&mut self) -> Result<Expr> {
        let primary = self.parse_primary()?;
        let preds = self.parse_predicates()?;
        if preds.is_empty() {
            Ok(primary)
        } else {
            Ok(Expr::Path {
                base: Box::new(primary),
                steps: vec![(Step::SelfStep, preds)],
            })
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::StrLit(s))
            }
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Expr::IntLit(i))
            }
            Some(Tok::Dec(d)) => {
                self.pos += 1;
                Ok(Expr::DecLit(d))
            }
            Some(Tok::Var(v)) => {
                self.pos += 1;
                Ok(Expr::Var(v))
            }
            Some(Tok::Dot) => {
                self.pos += 1;
                Ok(Expr::ContextItem)
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::RParen) {
                    self.pos += 1;
                    return Ok(Expr::Empty);
                }
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::LtName(name)) => self.parse_direct_ctor(name),
            Some(Tok::Name(kw)) if kw == "element" => {
                // Computed constructor: `element name { expr }`.
                if matches!(self.peek_at(1), Some(Tok::Name(_)))
                    && self.peek_at(2) == Some(&Tok::LBrace)
                {
                    self.pos += 1;
                    let name = self.expect_any_name()?;
                    self.expect(&Tok::LBrace)?;
                    if self.peek() == Some(&Tok::RBrace) {
                        self.pos += 1;
                        return Ok(Expr::ElementCtor {
                            name,
                            content: None,
                        });
                    }
                    let content = self.parse_expr()?;
                    self.expect(&Tok::RBrace)?;
                    return Ok(Expr::ElementCtor {
                        name,
                        content: Some(Box::new(content)),
                    });
                }
                self.parse_call_or_err()
            }
            Some(Tok::Name(_)) => self.parse_call_or_err(),
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    fn parse_call_or_err(&mut self) -> Result<Expr> {
        let name = self.expect_any_name()?;
        if self.peek() != Some(&Tok::LParen) {
            return Err(self.err(format!("bare name {name:?} is not an expression here")));
        }
        self.pos += 1;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.parse_expr_single()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(Expr::Call(name, args))
    }

    // -- direct constructors (character level) ----------------------------

    /// Called with the element name already lexed ([`Tok::LtName`]); the
    /// token at `self.pos` is the `LtName` itself.
    fn parse_direct_ctor(&mut self, _name: String) -> Result<Expr> {
        let start = self.toks[self.pos].at;
        let (expr, end) = parse_direct_from(self.src, start)?;
        // Resynchronize: skip all tokens that start before `end`.
        while self.pos < self.toks.len() && self.toks[self.pos].at < end {
            self.pos += 1;
        }
        Ok(expr)
    }
}

/// Parse a direct constructor from `src[at..]` (which starts with `<name`).
/// Returns the expression and the byte offset just past the constructor.
fn parse_direct_from(src: &str, at: usize) -> Result<(Expr, usize)> {
    let b = src.as_bytes();
    let mut i = at;
    let err = |i: usize, m: &str| XQueryError::Parse(i, m.to_string());
    if b.get(i) != Some(&b'<') {
        return Err(err(i, "expected '<'"));
    }
    i += 1;
    let name_start = i;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || matches!(b[i], b'_' | b'-' | b':' | b'.'))
    {
        i += 1;
    }
    if i == name_start {
        return Err(err(i, "expected element name"));
    }
    let name = src[name_start..i].to_string();
    let mut attrs: Vec<(String, Vec<AttrPart>)> = Vec::new();
    // Attributes.
    loop {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        match b.get(i) {
            Some(b'/') if b.get(i + 1) == Some(&b'>') => {
                return Ok((
                    Expr::DirectCtor {
                        name,
                        attrs,
                        content: Vec::new(),
                    },
                    i + 2,
                ));
            }
            Some(b'>') => {
                i += 1;
                break;
            }
            Some(_) => {
                let astart = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || matches!(b[i], b'_' | b'-' | b':' | b'.'))
                {
                    i += 1;
                }
                if i == astart {
                    return Err(err(i, "expected attribute name"));
                }
                let aname = src[astart..i].to_string();
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                if b.get(i) != Some(&b'=') {
                    return Err(err(i, "expected '=' in attribute"));
                }
                i += 1;
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                let quote = *b.get(i).ok_or_else(|| err(i, "eof in attribute"))?;
                if quote != b'"' && quote != b'\'' {
                    return Err(err(i, "expected quoted attribute value"));
                }
                i += 1;
                let mut parts = Vec::new();
                let mut text = String::new();
                while i < b.len() && b[i] != quote {
                    if b[i] == b'{' {
                        if !text.is_empty() {
                            parts.push(AttrPart::Text(std::mem::take(&mut text)));
                        }
                        let (inner, end) = enclosed_expr(src, i)?;
                        parts.push(AttrPart::Expr(inner));
                        i = end;
                    } else {
                        text.push(b[i] as char);
                        i += 1;
                    }
                }
                if i >= b.len() {
                    return Err(err(i, "unterminated attribute value"));
                }
                if !text.is_empty() {
                    parts.push(AttrPart::Text(text));
                }
                i += 1; // closing quote
                attrs.push((aname, parts));
            }
            None => return Err(err(i, "eof in start tag")),
        }
    }
    // Content.
    let mut content: Vec<DirectContent> = Vec::new();
    let mut text = String::new();
    loop {
        match b.get(i) {
            None => return Err(err(i, "eof inside direct constructor")),
            Some(b'<') if b.get(i + 1) == Some(&b'/') => {
                if !text.trim().is_empty() {
                    content.push(DirectContent::Text(std::mem::take(&mut text)));
                }
                i += 2;
                let estart = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || matches!(b[i], b'_' | b'-' | b':' | b'.'))
                {
                    i += 1;
                }
                let ename = &src[estart..i];
                if ename != name {
                    return Err(err(estart, "mismatched closing tag"));
                }
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                if b.get(i) != Some(&b'>') {
                    return Err(err(i, "expected '>'"));
                }
                return Ok((
                    Expr::DirectCtor {
                        name,
                        attrs,
                        content,
                    },
                    i + 1,
                ));
            }
            Some(b'<') => {
                if !text.trim().is_empty() {
                    content.push(DirectContent::Text(std::mem::take(&mut text)));
                } else {
                    text.clear();
                }
                let (child, end) = parse_direct_from(src, i)?;
                content.push(DirectContent::Child(child));
                i = end;
            }
            Some(b'{') => {
                if !text.trim().is_empty() {
                    content.push(DirectContent::Text(std::mem::take(&mut text)));
                } else {
                    text.clear();
                }
                let (inner, end) = enclosed_expr(src, i)?;
                content.push(DirectContent::Expr(inner));
                i = end;
            }
            Some(&c) => {
                text.push(c as char);
                i += 1;
            }
        }
    }
}

/// Parse a `{ ... }` enclosure starting at the `{`; returns the inner
/// expression and the offset just past the `}`.
fn enclosed_expr(src: &str, at: usize) -> Result<(Expr, usize)> {
    let b = src.as_bytes();
    debug_assert_eq!(b[at], b'{');
    let mut depth = 0usize;
    let mut i = at;
    let mut in_str: Option<u8> = None;
    while i < b.len() {
        let c = b[i];
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        let inner_src = &src[at + 1..i];
                        let module = parse_query(inner_src)?;
                        return Ok((module.body, i + 1));
                    }
                }
                b'"' | b'\'' => in_str = Some(c),
                _ => {}
            },
        }
        i += 1;
    }
    Err(XQueryError::Parse(
        at,
        "unbalanced '{' in constructor".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Expr {
        parse_query(src).unwrap().body
    }

    #[test]
    fn parses_paper_query1() {
        let q = r#"element title_history {
            for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
            return $t }"#;
        let Expr::ElementCtor { name, content } = parse(q) else {
            panic!("expected element constructor")
        };
        assert_eq!(name, "title_history");
        let Expr::Flwor { bindings, ret, .. } = *content.unwrap() else {
            panic!("expected FLWOR")
        };
        assert_eq!(bindings.len(), 1);
        assert_eq!(*ret, Expr::Var("t".into()));
        let Binding::For { var, seq } = &bindings[0] else {
            panic!()
        };
        assert_eq!(var, "t");
        let Expr::Path { base, steps } = seq else {
            panic!("expected path")
        };
        assert!(matches!(**base, Expr::Call(ref n, _) if n == "doc"));
        assert_eq!(steps.len(), 3);
        assert!(matches!(&steps[1].0, Step::Child(n) if n == "employee"));
        assert_eq!(steps[1].1.len(), 1, "employee step has one predicate");
    }

    #[test]
    fn parses_paper_query2_snapshot() {
        let q = r#"for $m in doc("depts.xml")/depts/dept/mgrno
                       [tstart(.)<=xs:date("1994-05-06") and tend(.) >= xs:date("1994-05-06")]
                   return $m"#;
        let Expr::Flwor { bindings, .. } = parse(q) else {
            panic!()
        };
        let Binding::For { seq, .. } = &bindings[0] else {
            panic!()
        };
        let Expr::Path { steps, .. } = seq else {
            panic!()
        };
        let (step, preds) = steps.last().unwrap();
        assert!(matches!(step, Step::Child(n) if n == "mgrno"));
        assert!(matches!(&preds[0], Expr::And(_, _)));
    }

    #[test]
    fn parses_quantified_query8() {
        let q = r#"every $d1 in $e1/deptno satisfies
                   some $d2 in $e2/deptno satisfies
                   (string($d1)=string($d2) and tequals($d2,$d1))"#;
        let Expr::Quantified { every, pred, .. } = parse(q) else {
            panic!()
        };
        assert!(every);
        assert!(matches!(*pred, Expr::Quantified { every: false, .. }));
    }

    #[test]
    fn parses_direct_constructor_with_enclosures() {
        let q = r#"<employee level="senior">{$e/id, $e/name}</employee>"#;
        let Expr::DirectCtor {
            name,
            attrs,
            content,
        } = parse(q)
        else {
            panic!()
        };
        assert_eq!(name, "employee");
        assert_eq!(attrs[0].0, "level");
        assert_eq!(attrs[0].1, vec![AttrPart::Text("senior".into())]);
        assert_eq!(content.len(), 1);
        assert!(matches!(&content[0], DirectContent::Expr(Expr::Seq(items)) if items.len() == 2));
    }

    #[test]
    fn parses_nested_direct_constructors() {
        let q = r#"<a x="{1+1}"><b/>text{$v}</a>"#;
        let Expr::DirectCtor { attrs, content, .. } = parse(q) else {
            panic!()
        };
        assert!(matches!(&attrs[0].1[0], AttrPart::Expr(Expr::Arith(..))));
        assert_eq!(content.len(), 3);
        assert!(
            matches!(&content[0], DirectContent::Child(Expr::DirectCtor { name, .. }) if name == "b")
        );
        assert!(matches!(&content[1], DirectContent::Text(t) if t == "text"));
        assert!(matches!(&content[2], DirectContent::Expr(Expr::Var(v)) if v == "v"));
    }

    #[test]
    fn parses_let_and_where() {
        let q = r#"for $e in doc("e.xml")/employees/employee
                   let $d := $e/dept
                   where not(empty($d)) and $e/name != "Bob"
                   return max($d)"#;
        let Expr::Flwor {
            bindings,
            where_clause,
            ..
        } = parse(q)
        else {
            panic!()
        };
        assert_eq!(bindings.len(), 2);
        assert!(matches!(&bindings[1], Binding::Let { var, .. } if var == "d"));
        assert!(where_clause.is_some());
    }

    #[test]
    fn parses_function_declarations() {
        let q = r#"declare function local:pay($e) { $e/salary };
                   local:pay(doc("x.xml")/employees/employee)"#;
        let m = parse_query(q).unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].name, "local:pay");
        assert_eq!(m.functions[0].params, vec!["e".to_string()]);
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let e = parse("1 + 2 * 3");
        let Expr::Arith(ArithOp::Add, l, r) = e else {
            panic!()
        };
        assert_eq!(*l, Expr::IntLit(1));
        assert!(matches!(*r, Expr::Arith(ArithOp::Mul, _, _)));
    }

    #[test]
    fn parses_order_by() {
        let q = "for $x in $s order by $x descending return $x";
        let Expr::Flwor { order_by, .. } = parse(q) else {
            panic!()
        };
        assert_eq!(order_by.len(), 1);
        assert!(!order_by[0].ascending);
    }

    #[test]
    fn parses_if_then_else() {
        let e = parse(r#"if ($a > 1) then "big" else "small""#);
        assert!(matches!(e, Expr::If(..)));
    }

    #[test]
    fn parses_descendant_and_attribute_steps() {
        let e = parse(r#"doc("x.xml")//salary/@tstart"#);
        let Expr::Path { steps, .. } = e else {
            panic!()
        };
        assert!(matches!(&steps[0].0, Step::Descendant(n) if n == "salary"));
        assert!(matches!(&steps[1].0, Step::Attribute(n) if n == "tstart"));
    }

    #[test]
    fn parses_variable_with_predicate() {
        let e = parse(r#"$e/title[.="Sr Engineer" and tend(.)=current-date()]"#);
        let Expr::Path { base, steps } = e else {
            panic!()
        };
        assert_eq!(*base, Expr::Var("e".into()));
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].1.len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("for $x").is_err());
        assert!(parse_query("1 +").is_err());
        assert!(parse_query("<a>{1}</b>").is_err());
        assert!(parse_query(")").is_err());
        assert!(parse_query("return 1 extra").is_err());
    }

    #[test]
    fn empty_parens_are_empty_sequence() {
        assert_eq!(parse("()"), Expr::Empty);
    }

    #[test]
    fn relative_path_from_context() {
        let e = parse("employees/employee");
        let Expr::Path { base, steps } = e else {
            panic!()
        };
        assert_eq!(*base, Expr::ContextItem);
        assert_eq!(steps.len(), 2);
    }
}
