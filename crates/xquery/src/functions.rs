//! Built-in functions: the XQuery core set the paper's queries use, plus
//! the ArchIS temporal function library (paper §4.2 and Appendix).
//!
//! The temporal builtins divorce queries from representation details
//! (closed intervals, the `9999-12-31` encoding of *now*): `tend` returns
//! `current-date()` for still-current elements, `rtend` / `externalnow`
//! rewrite end-of-time values for presentation, and the aggregates
//! (`tavg`, ...) compute interval step-functions in one sweep.

use crate::eval::{construct_element, Ctx};
use crate::value::*;
use crate::{Result, XQueryError};
use std::rc::Rc;
use temporal::{
    coalesce as t_coalesce, restructure as t_restructure, temporal_aggregate, AggregateKind, Date,
    Interval, END_OF_TIME,
};

/// Dispatch a built-in by (normalized) name. Returns `None` for unknown
/// names so the caller can report an unknown-function error with the
/// original spelling.
pub(crate) fn call_builtin(
    ctx: &mut Ctx,
    name: &str,
    args: Vec<Sequence>,
) -> Option<Result<Sequence>> {
    let now = ctx.engine.now();
    Some(match (name, args.len()) {
        ("doc", 1) | ("document", 1) => {
            let uri = string_of(&args[0]);
            ctx.engine.doc(&uri).map(|root| vec![Item::Node(root)])
        }
        ("current-date", 0) => Ok(vec![Item::Atom(Atomic::Date(now))]),
        ("date", 1) => {
            let s = string_of(&args[0]);
            Date::parse(&s)
                .map(|d| vec![Item::Atom(Atomic::Date(d))])
                .map_err(|e| XQueryError::Type(format!("xs:date: {e}")))
        }
        ("position", 0) => match ctx.ctx_pos {
            Some((pos, _)) => Ok(vec![Item::Atom(Atomic::Int(pos as i64))]),
            None => Err(XQueryError::Eval("position() outside a predicate".into())),
        },
        ("last", 0) => match ctx.ctx_pos {
            Some((_, last)) => Ok(vec![Item::Atom(Atomic::Int(last as i64))]),
            None => Err(XQueryError::Eval("last() outside a predicate".into())),
        },
        ("true", 0) => Ok(vec![Item::Atom(Atomic::Bool(true))]),
        ("false", 0) => Ok(vec![Item::Atom(Atomic::Bool(false))]),
        ("not", 1) => effective_boolean(&args[0]).map(|b| vec![Item::Atom(Atomic::Bool(!b))]),
        ("boolean", 1) => effective_boolean(&args[0]).map(|b| vec![Item::Atom(Atomic::Bool(b))]),
        ("empty", 1) => Ok(vec![Item::Atom(Atomic::Bool(args[0].is_empty()))]),
        ("exists", 1) => Ok(vec![Item::Atom(Atomic::Bool(!args[0].is_empty()))]),
        ("count", 1) => Ok(vec![Item::Atom(Atomic::Int(args[0].len() as i64))]),
        ("string", 1) => Ok(vec![Item::Atom(Atomic::Str(string_of(&args[0])))]),
        ("number", 1) => {
            let v = args[0].first().map(|i| i.atomize());
            match v.and_then(|a| a.as_number()) {
                Some(n) => Ok(vec![Item::Atom(Atomic::Double(n))]),
                None => Ok(vec![Item::Atom(Atomic::Double(f64::NAN))]),
            }
        }
        ("string-length", 1) => Ok(vec![Item::Atom(Atomic::Int(
            string_of(&args[0]).chars().count() as i64,
        ))]),
        ("concat", _) => {
            let mut out = String::new();
            for a in &args {
                out.push_str(&string_of(a));
            }
            Ok(vec![Item::Atom(Atomic::Str(out))])
        }
        ("contains", 2) => Ok(vec![Item::Atom(Atomic::Bool(
            string_of(&args[0]).contains(&string_of(&args[1])),
        ))]),
        ("starts-with", 2) => Ok(vec![Item::Atom(Atomic::Bool(
            string_of(&args[0]).starts_with(&string_of(&args[1])),
        ))]),
        ("substring", 3) => {
            let s = string_of(&args[0]);
            let start = number_of(&args[1]).unwrap_or(1.0) as usize;
            let len = number_of(&args[2]).unwrap_or(0.0) as usize;
            let out: String = s.chars().skip(start.saturating_sub(1)).take(len).collect();
            Ok(vec![Item::Atom(Atomic::Str(out))])
        }
        ("name", 1) => {
            let n = args[0]
                .first()
                .and_then(Item::as_node)
                .and_then(XNode::as_elem)
                .map(|e| e.name.clone())
                .unwrap_or_default();
            Ok(vec![Item::Atom(Atomic::Str(n))])
        }
        ("distinct-values", 1) => {
            let mut seen: Vec<Atomic> = Vec::new();
            for item in &args[0] {
                let a = item.atomize();
                if !seen.iter().any(|s| s == &a) {
                    seen.push(a);
                }
            }
            Ok(seen.into_iter().map(Item::Atom).collect())
        }
        ("sum", 1) => fold_numeric(&args[0], |acc, v| acc + v, 0.0),
        ("avg", 1) => {
            if args[0].is_empty() {
                Ok(vec![])
            } else {
                let n = args[0].len() as f64;
                match numeric_values(&args[0]) {
                    Ok(vs) => Ok(vec![Item::Atom(Atomic::Double(vs.iter().sum::<f64>() / n))]),
                    Err(e) => Err(e),
                }
            }
        }
        ("max", 1) => extremum(&args[0], true),
        ("min", 1) => extremum(&args[0], false),

        // --- the temporal function library (paper §4.2 / Appendix) ------
        ("tstart", 1) => match interval_of(&args[0], now) {
            Some(iv) => Ok(vec![Item::Atom(Atomic::Date(iv.start()))]),
            None => Ok(vec![]),
        },
        ("tend", 1) => match interval_of(&args[0], now) {
            // The paper: tend returns the period end "if this is different
            // from 9999-12-31, and current_date otherwise".
            Some(iv) => Ok(vec![Item::Atom(Atomic::Date(if iv.is_current() {
                now
            } else {
                iv.end()
            }))]),
            None => Ok(vec![]),
        },
        ("tinterval", 1) => match interval_of(&args[0], now) {
            Some(iv) => Ok(vec![Item::Node(interval_element("interval", iv))]),
            None => Ok(vec![]),
        },
        ("telement", 2) => {
            let s = date_of(&args[0]);
            let e = date_of(&args[1]);
            match (s, e) {
                (Some(s), Some(e)) => match Interval::new(s, e) {
                    Ok(iv) => Ok(vec![Item::Node(interval_element("telement", iv))]),
                    Err(e) => Err(XQueryError::Eval(e.to_string())),
                },
                _ => Err(XQueryError::Type("telement expects two dates".into())),
            }
        }
        ("timespan", 1) => match interval_of(&args[0], now) {
            Some(iv) => Ok(vec![Item::Atom(Atomic::Int(iv.timespan(now) as i64))]),
            None => Ok(vec![]),
        },
        ("toverlaps", 2) => interval_pred(&args, now, |a, b| a.overlaps(&b)),
        ("tprecedes", 2) => interval_pred(&args, now, |a, b| a.precedes(&b)),
        ("tcontains", 2) => interval_pred(&args, now, |a, b| a.contains(&b)),
        ("tequals", 2) => interval_pred(&args, now, |a, b| a.equals(&b)),
        ("tmeets", 2) => interval_pred(&args, now, |a, b| a.meets(&b)),
        ("overlapinterval", 2) => match (interval_of(&args[0], now), interval_of(&args[1], now)) {
            (Some(a), Some(b)) => match a.intersect(&b) {
                Some(iv) => Ok(vec![Item::Node(interval_element("interval", iv))]),
                None => Ok(vec![]),
            },
            _ => Ok(vec![]),
        },
        ("rtend", 1) => Ok(replace_eot(&args[0], &now.to_string())),
        ("externalnow", 1) => Ok(replace_eot(&args[0], "now")),
        ("coalesce", 1) => coalesce_nodes(&args[0]),
        ("restructure", 2) => {
            let a = intervals_of(&args[0], now);
            let b = intervals_of(&args[1], now);
            let out = t_restructure(&a, &b);
            Ok(out
                .into_iter()
                .map(|iv| Item::Node(interval_element("interval", iv)))
                .collect())
        }
        ("tavg", 1) => temporal_agg(&args[0], AggregateKind::Avg, "tavg"),
        ("tsum", 1) => temporal_agg(&args[0], AggregateKind::Sum, "tsum"),
        ("tcount", 1) => temporal_agg(&args[0], AggregateKind::Count, "tcount"),
        ("tmin", 1) => temporal_agg(&args[0], AggregateKind::Min, "tmin"),
        ("tmax", 1) => temporal_agg(&args[0], AggregateKind::Max, "tmax"),
        // Moving-window variants (paper §4: "moving window aggregate can
        // also be supported"): second argument is the trailing window in
        // days.
        ("tmovavg", 2) | ("tmovsum", 2) | ("tmovcount", 2) | ("tmovmin", 2) | ("tmovmax", 2) => {
            let kind = match name {
                "tmovavg" => AggregateKind::Avg,
                "tmovsum" => AggregateKind::Sum,
                "tmovcount" => AggregateKind::Count,
                "tmovmin" => AggregateKind::Min,
                _ => AggregateKind::Max,
            };
            let window = number_of(&args[1]).unwrap_or(1.0).max(1.0) as u32;
            match value_interval_pairs(&args[0]) {
                Ok(items) => {
                    let series = temporal::moving_window(kind, &items, window);
                    Ok(series
                        .into_iter()
                        .map(|(v, iv)| {
                            let node = interval_element(name, iv);
                            if let XNode::Elem(e) = &node {
                                let text = if v.fract() == 0.0 && v.abs() < 1e15 {
                                    format!("{}", v as i64)
                                } else {
                                    v.to_string()
                                };
                                e.children.borrow_mut().push(XNode::Text(Rc::new(text)));
                            }
                            Item::Node(node)
                        })
                        .collect())
                }
                Err(e) => Err(e),
            }
        }
        ("trising", 1) => match value_interval_pairs(&args[0]) {
            Ok(items) => {
                let series = temporal_aggregate(AggregateKind::Max, &items);
                match temporal::aggregate::rising(&series) {
                    Some(iv) => Ok(vec![Item::Node(interval_element("interval", iv))]),
                    None => Ok(vec![]),
                }
            }
            Err(e) => Err(e),
        },
        _ => return None,
    })
}

fn string_of(seq: &Sequence) -> String {
    seq.first()
        .map(|i| i.atomize().to_text())
        .unwrap_or_default()
}

fn number_of(seq: &Sequence) -> Option<f64> {
    seq.first().and_then(|i| i.atomize().as_number())
}

fn date_of(seq: &Sequence) -> Option<Date> {
    seq.first().and_then(|i| i.atomize().as_date())
}

fn numeric_values(seq: &Sequence) -> Result<Vec<f64>> {
    seq.iter()
        .map(|i| {
            i.atomize()
                .as_number()
                .ok_or_else(|| XQueryError::Type("non-numeric value in aggregate".into()))
        })
        .collect()
}

fn fold_numeric(seq: &Sequence, f: impl Fn(f64, f64) -> f64, init: f64) -> Result<Sequence> {
    let vs = numeric_values(seq)?;
    let total = vs.into_iter().fold(init, f);
    if total.fract() == 0.0 && total.abs() < 1e15 {
        Ok(vec![Item::Atom(Atomic::Int(total as i64))])
    } else {
        Ok(vec![Item::Atom(Atomic::Double(total))])
    }
}

fn extremum(seq: &Sequence, want_max: bool) -> Result<Sequence> {
    if seq.is_empty() {
        return Ok(vec![]);
    }
    let mut best: Option<Atomic> = None;
    for item in seq {
        let a = item.atomize();
        // Promote numeric strings so max over node values works.
        let a = match (&a, a.as_number(), a.as_date()) {
            (Atomic::Str(_), Some(n), _) => Atomic::Double(n),
            (Atomic::Str(_), None, Some(d)) => Atomic::Date(d),
            _ => a,
        };
        best = Some(match best {
            None => a,
            Some(b) => match atomic_compare(&a, &b) {
                Some(std::cmp::Ordering::Greater) if want_max => a,
                Some(std::cmp::Ordering::Less) if !want_max => a,
                None => return Err(XQueryError::Type("mixed types in max/min".into())),
                _ => b,
            },
        });
    }
    // Render integral doubles back as integers for friendlier output.
    Ok(vec![Item::Atom(match best.unwrap() {
        Atomic::Double(d) if d.fract() == 0.0 && d.abs() < 1e15 => Atomic::Int(d as i64),
        other => other,
    })])
}

/// The period of the first item: for element nodes, their
/// `tstart`/`tend` attributes.
fn interval_of(seq: &Sequence, _now: Date) -> Option<Interval> {
    seq.first()
        .and_then(Item::as_node)
        .and_then(XNode::interval)
}

fn intervals_of(seq: &Sequence, _now: Date) -> Vec<Interval> {
    seq.iter()
        .filter_map(|i| i.as_node().and_then(XNode::interval))
        .collect()
}

fn interval_pred(
    args: &[Sequence],
    now: Date,
    f: impl Fn(Interval, Interval) -> bool,
) -> Result<Sequence> {
    match (interval_of(&args[0], now), interval_of(&args[1], now)) {
        (Some(a), Some(b)) => Ok(vec![Item::Atom(Atomic::Bool(f(a, b)))]),
        _ => Ok(vec![Item::Atom(Atomic::Bool(false))]),
    }
}

fn interval_element(name: &str, iv: Interval) -> XNode {
    construct_element(
        name,
        &[
            ("tstart".into(), iv.start().to_string()),
            ("tend".into(), iv.end().to_string()),
        ],
        &vec![],
    )
}

/// Deep-copy nodes replacing every attribute value `9999-12-31` with
/// `replacement` (implements `rtend` and `externalnow`).
fn replace_eot(seq: &Sequence, replacement: &str) -> Sequence {
    fn rewrite(n: &XNode, replacement: &str) {
        if let XNode::Elem(e) = n {
            for (_, v) in e.attrs.borrow_mut().iter_mut() {
                if v == &END_OF_TIME.to_string() {
                    *v = replacement.to_string();
                }
            }
            for c in e.children.borrow().iter() {
                rewrite(c, replacement);
            }
        }
    }
    seq.iter()
        .map(|item| match item {
            Item::Node(n) => {
                let copy = n.deep_copy();
                rewrite(&copy, replacement);
                Item::Node(copy)
            }
            Item::Atom(a) => {
                if a.to_text() == END_OF_TIME.to_string() {
                    Item::Atom(Atomic::Str(replacement.to_string()))
                } else {
                    item.clone()
                }
            }
        })
        .collect()
}

/// `coalesce($l)`: merge value-equivalent nodes with joinable periods.
/// Result nodes carry the shared element name, the merged period and the
/// common string value.
fn coalesce_nodes(seq: &Sequence) -> Result<Sequence> {
    let mut items: Vec<((String, String), Interval)> = Vec::new();
    for item in seq {
        let node = item
            .as_node()
            .ok_or_else(|| XQueryError::Type("coalesce expects nodes".into()))?;
        let iv = node
            .interval()
            .ok_or_else(|| XQueryError::Type("coalesce expects timestamped elements".into()))?;
        let name = node
            .as_elem()
            .map(|e| e.name.clone())
            .unwrap_or_else(|| "value".to_string());
        items.push(((name, node.string_value()), iv));
    }
    let grouped = t_coalesce(items);
    Ok(grouped
        .into_iter()
        .map(|((name, value), iv)| {
            let node = interval_element(&name, iv);
            if !value.is_empty() {
                if let XNode::Elem(e) = &node {
                    e.children.borrow_mut().push(XNode::Text(Rc::new(value)));
                }
            }
            Item::Node(node)
        })
        .collect())
}

fn value_interval_pairs(seq: &Sequence) -> Result<Vec<(f64, Interval)>> {
    let mut items = Vec::with_capacity(seq.len());
    for item in seq {
        let node = item
            .as_node()
            .ok_or_else(|| XQueryError::Type("temporal aggregate expects nodes".into()))?;
        let iv = node.interval().ok_or_else(|| {
            XQueryError::Type("temporal aggregate expects timestamped elements".into())
        })?;
        let v: f64 =
            node.string_value().trim().parse().map_err(|_| {
                XQueryError::Type("temporal aggregate expects numeric values".into())
            })?;
        items.push((v, iv));
    }
    Ok(items)
}

/// Shared implementation of `tavg`/`tsum`/`tcount`/`tmin`/`tmax`: a
/// sequence of `<name tstart=".." tend="..">value</name>` elements, one per
/// constant-valued period of the sweep.
fn temporal_agg(seq: &Sequence, kind: AggregateKind, name: &str) -> Result<Sequence> {
    let items = value_interval_pairs(seq)?;
    let series = temporal_aggregate(kind, &items);
    Ok(series
        .into_iter()
        .map(|(v, iv)| {
            let node = interval_element(name, iv);
            if let XNode::Elem(e) = &node {
                let text = if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{}", v as i64)
                } else {
                    v.to_string()
                };
                e.children.borrow_mut().push(XNode::Text(Rc::new(text)));
            }
            Item::Node(node)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use crate::eval::{Engine, MapResolver};

    const EMP: &str = r#"<employees tstart="1988-01-01" tend="9999-12-31">
      <employee tstart="1995-01-01" tend="9999-12-31">
        <name tstart="1995-01-01" tend="9999-12-31">Bob</name>
        <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
        <salary tstart="1995-06-01" tend="9999-12-31">70000</salary>
        <title tstart="1995-01-01" tend="1995-09-30">Engineer</title>
        <title tstart="1995-10-01" tend="9999-12-31">Sr Engineer</title>
        <deptno tstart="1995-01-01" tend="1995-09-30">d01</deptno>
        <deptno tstart="1995-10-01" tend="9999-12-31">d02</deptno>
      </employee>
    </employees>"#;

    fn engine() -> Engine {
        let mut r = MapResolver::new();
        r.insert("emp.xml", xmldom::parse(EMP).unwrap());
        Engine::new(r)
    }

    #[test]
    fn tstart_tend_and_now_substitution() {
        let e = engine();
        assert_eq!(
            e.eval_to_xml(r#"tstart(doc("emp.xml")/employees/employee)"#)
                .unwrap(),
            "1995-01-01"
        );
        // tend of a current element = current-date (pinned to 2005-01-01).
        assert_eq!(
            e.eval_to_xml(r#"tend(doc("emp.xml")/employees/employee)"#)
                .unwrap(),
            "2005-01-01"
        );
        assert_eq!(
            e.eval_to_xml(r#"tend(doc("emp.xml")//salary[1])"#).unwrap(),
            "1995-05-31"
        );
    }

    #[test]
    fn snapshot_query2_style() {
        let e = engine();
        let out = e
            .eval_to_xml(
                r#"for $s in doc("emp.xml")//salary
                      [tstart(.) <= xs:date("1995-03-01") and tend(.) >= xs:date("1995-03-01")]
                   return string($s)"#,
            )
            .unwrap();
        assert_eq!(out, "60000");
    }

    #[test]
    fn toverlaps_and_telement_slicing_query3() {
        let e = engine();
        let out = e
            .eval_to_xml(
                r#"for $e in doc("emp.xml")/employees/employee[
                       toverlaps(., telement(xs:date("1994-05-06"), xs:date("1995-05-06")))]
                   return $e/name"#,
            )
            .unwrap();
        assert!(out.contains("Bob"));
    }

    #[test]
    fn overlapinterval_returns_interval_element() {
        let e = engine();
        let out = e
            .eval_to_xml(r#"overlapinterval(doc("emp.xml")//salary[1], doc("emp.xml")//title[1])"#)
            .unwrap();
        assert_eq!(out, r#"<interval tstart="1995-01-01" tend="1995-05-31"/>"#);
        // Disjoint periods yield the empty sequence.
        let empty = e
            .eval_to_xml(
                r#"empty(overlapinterval(doc("emp.xml")//salary[1], doc("emp.xml")//title[2]))"#,
            )
            .unwrap();
        assert_eq!(empty, "true");
    }

    #[test]
    fn interval_predicates() {
        let e = engine();
        for (q, want) in [
            (
                r#"tcontains(doc("emp.xml")/employees/employee, doc("emp.xml")//salary[1])"#,
                "true",
            ),
            (
                r#"tprecedes(doc("emp.xml")//salary[1], doc("emp.xml")//title[2])"#,
                "true",
            ),
            (
                r#"tmeets(doc("emp.xml")//salary[1], doc("emp.xml")//salary[2])"#,
                "true",
            ),
            (
                r#"tequals(doc("emp.xml")//salary[1], doc("emp.xml")//title[1])"#,
                "false",
            ),
        ] {
            assert_eq!(e.eval_to_xml(q).unwrap(), want, "query: {q}");
        }
    }

    #[test]
    fn timespan_counts_days() {
        let e = engine();
        assert_eq!(
            e.eval_to_xml(r#"timespan(doc("emp.xml")//salary[1])"#)
                .unwrap(),
            "151"
        );
    }

    #[test]
    fn rtend_and_externalnow() {
        let e = engine();
        let r = e
            .eval_to_xml(r#"rtend(doc("emp.xml")//salary[2])"#)
            .unwrap();
        assert!(r.contains(r#"tend="2005-01-01""#), "{r}");
        let x = e
            .eval_to_xml(r#"externalnow(doc("emp.xml")//salary[2])"#)
            .unwrap();
        assert!(x.contains(r#"tend="now""#), "{x}");
        // Originals are untouched (deep copy).
        let orig = e.eval_to_xml(r#"doc("emp.xml")//salary[2]"#).unwrap();
        assert!(orig.contains("9999-12-31"));
    }

    #[test]
    fn coalesce_merges_value_equivalent_periods() {
        let mut r = MapResolver::new();
        r.insert(
            "h.xml",
            xmldom::parse(
                r#"<h>
                    <salary tstart="1995-01-01" tend="1995-05-31">70000</salary>
                    <salary tstart="1995-06-01" tend="1995-12-31">70000</salary>
                    <salary tstart="1996-06-01" tend="1996-12-31">70000</salary>
                   </h>"#,
            )
            .unwrap(),
        );
        let e = Engine::new(r);
        let out = e.eval_to_xml(r#"coalesce(doc("h.xml")/h/salary)"#).unwrap();
        assert_eq!(
            out,
            "<salary tstart=\"1995-01-01\" tend=\"1995-12-31\">70000</salary>\n\
             <salary tstart=\"1996-06-01\" tend=\"1996-12-31\">70000</salary>"
        );
    }

    #[test]
    fn restructure_query6_style() {
        let e = engine();
        // Periods during which Bob kept both the same title and dept.
        let out = e
            .eval_to_xml(
                r#"for $e in doc("emp.xml")/employees/employee[name="Bob"]
                   let $d := $e/deptno
                   let $t := $e/title
                   return max(for $i in restructure($d, $t) return timespan($i))"#,
            )
            .unwrap();
        // d02 with Sr Engineer: 1995-10-01 .. now(2005-01-01) = 3381 days.
        assert_eq!(out, "3381");
    }

    #[test]
    fn tavg_computes_step_function() {
        let mut r = MapResolver::new();
        r.insert(
            "s.xml",
            xmldom::parse(
                r#"<h>
                    <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
                    <salary tstart="1995-03-01" tend="1995-12-31">40000</salary>
                   </h>"#,
            )
            .unwrap(),
        );
        let e = Engine::new(r);
        let out = e.eval_to_xml(r#"tavg(doc("s.xml")/h/salary)"#).unwrap();
        assert_eq!(
            out,
            "<tavg tstart=\"1995-01-01\" tend=\"1995-02-28\">60000</tavg>\n\
             <tavg tstart=\"1995-03-01\" tend=\"1995-05-31\">50000</tavg>\n\
             <tavg tstart=\"1995-06-01\" tend=\"1995-12-31\">40000</tavg>"
        );
        let cnt = e.eval_to_xml(r#"tcount(doc("s.xml")/h/salary)"#).unwrap();
        assert!(cnt.contains(">2<"));
    }

    #[test]
    fn moving_window_aggregates() {
        let mut r = MapResolver::new();
        r.insert(
            "s.xml",
            xmldom::parse(
                r#"<h>
                    <salary tstart="1995-01-01" tend="1995-01-31">100</salary>
                   </h>"#,
            )
            .unwrap(),
        );
        let e = Engine::new(r);
        // A 30-day trailing window keeps the value visible 29 extra days.
        let out = e
            .eval_to_xml(r#"tmovmax(doc("s.xml")/h/salary, 30)"#)
            .unwrap();
        assert_eq!(
            out,
            "<tmovmax tstart=\"1995-01-01\" tend=\"1995-03-01\">100</tmovmax>"
        );
        let cnt = e
            .eval_to_xml(r#"tmovcount(doc("s.xml")/h/salary, 1)"#)
            .unwrap();
        assert!(cnt.contains("tend=\"1995-01-31\""), "{cnt}");
        assert!(e.eval(r#"trising(doc("s.xml")/h/salary)"#).is_ok());
    }

    #[test]
    fn since_query7_shape() {
        let e = engine();
        // Bob has been Sr Engineer in d02 since he joined d02.
        let out = e
            .eval_to_xml(
                r#"for $e in doc("emp.xml")/employees/employee
                   let $m := $e/title[.="Sr Engineer" and tend(.)=current-date()]
                   let $d := $e/deptno[.="d02" and tcontains($m, .)]
                   where not(empty($d)) and not(empty($m))
                   return <employee>{$e/name}</employee>"#,
            )
            .unwrap();
        assert!(out.contains("Bob"), "{out}");
    }

    #[test]
    fn core_functions() {
        let e = engine();
        assert_eq!(e.eval_to_xml(r#"concat("a", "b", 1)"#).unwrap(), "ab1");
        assert_eq!(
            e.eval_to_xml(r#"contains("hello", "ell")"#).unwrap(),
            "true"
        );
        assert_eq!(
            e.eval_to_xml(r#"starts-with("hello", "he")"#).unwrap(),
            "true"
        );
        assert_eq!(e.eval_to_xml(r#"string-length("abc")"#).unwrap(), "3");
        assert_eq!(
            e.eval_to_xml(r#"substring("abcdef", 2, 3)"#).unwrap(),
            "bcd"
        );
        assert_eq!(e.eval_to_xml("sum((1, 2, 3))").unwrap(), "6");
        assert_eq!(e.eval_to_xml("avg((1, 2, 3, 6))").unwrap(), "3");
        assert_eq!(e.eval_to_xml("min((3, 1, 2))").unwrap(), "1");
        assert_eq!(
            e.eval_to_xml(r#"count(distinct-values(("a", "a", "b")))"#)
                .unwrap(),
            "2"
        );
        assert_eq!(
            e.eval_to_xml(r#"name(doc("emp.xml")//salary[1])"#).unwrap(),
            "salary"
        );
    }
}
