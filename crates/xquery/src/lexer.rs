//! The XQuery lexer.
//!
//! Names may contain `-`, `.` and `:` (QNames like `xs:date`,
//! `current-date`). A `-` is part of a name only when it is directly
//! followed by a letter and directly preceded by a name character with no
//! intervening whitespace — `foo-bar` is one name, `foo - bar` and
//! `$a -1` are subtractions, matching XQuery's tokenization rules closely
//! enough for the paper's query corpus.

use crate::{Result, XQueryError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Name / keyword (keywords are contextual in XQuery).
    Name(String),
    /// `$name`
    Var(String),
    /// String literal (quotes removed, entities resolved).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal.
    Dec(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `/`
    Slash,
    /// `//`
    SlashSlash,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `@`
    At,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `<` opening a direct element constructor (disambiguated by the
    /// parser via lookahead; the lexer emits `Lt` and the parser re-lexes
    /// raw input for constructors).
    LtName(String),
}

/// A token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Byte offset in the source.
    pub at: usize,
}

/// Tokenize a query. Direct-constructor bodies are *not* tokenized here;
/// the parser detects `<name` (as [`Tok::LtName`]) and switches to a
/// character-level sub-parser using the recorded offset.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' if b.get(i + 1) == Some(&b':') => {
                // XQuery comment `(: ... :)`, nestable.
                let mut depth = 1;
                let mut j = i + 2;
                while j + 1 < b.len() && depth > 0 {
                    if b[j] == b'(' && b[j + 1] == b':' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b':' && b[j + 1] == b')' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                if depth > 0 {
                    return Err(XQueryError::Lex(i, "unterminated comment".into()));
                }
                i = j;
            }
            b'(' => {
                toks.push(SpannedTok {
                    tok: Tok::LParen,
                    at: i,
                });
                i += 1;
            }
            b')' => {
                toks.push(SpannedTok {
                    tok: Tok::RParen,
                    at: i,
                });
                i += 1;
            }
            b'{' => {
                toks.push(SpannedTok {
                    tok: Tok::LBrace,
                    at: i,
                });
                i += 1;
            }
            b'}' => {
                toks.push(SpannedTok {
                    tok: Tok::RBrace,
                    at: i,
                });
                i += 1;
            }
            b'[' => {
                toks.push(SpannedTok {
                    tok: Tok::LBracket,
                    at: i,
                });
                i += 1;
            }
            b']' => {
                toks.push(SpannedTok {
                    tok: Tok::RBracket,
                    at: i,
                });
                i += 1;
            }
            b',' => {
                toks.push(SpannedTok {
                    tok: Tok::Comma,
                    at: i,
                });
                i += 1;
            }
            b';' => {
                toks.push(SpannedTok {
                    tok: Tok::Semi,
                    at: i,
                });
                i += 1;
            }
            b'@' => {
                toks.push(SpannedTok {
                    tok: Tok::At,
                    at: i,
                });
                i += 1;
            }
            b'+' => {
                toks.push(SpannedTok {
                    tok: Tok::Plus,
                    at: i,
                });
                i += 1;
            }
            b'-' => {
                toks.push(SpannedTok {
                    tok: Tok::Minus,
                    at: i,
                });
                i += 1;
            }
            b'*' => {
                toks.push(SpannedTok {
                    tok: Tok::Star,
                    at: i,
                });
                i += 1;
            }
            b'/' => {
                if b.get(i + 1) == Some(&b'/') {
                    toks.push(SpannedTok {
                        tok: Tok::SlashSlash,
                        at: i,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Slash,
                        at: i,
                    });
                    i += 1;
                }
            }
            b'.' => {
                if b.get(i + 1) == Some(&b'.') {
                    toks.push(SpannedTok {
                        tok: Tok::DotDot,
                        at: i,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Dot,
                        at: i,
                    });
                    i += 1;
                }
            }
            b':' if b.get(i + 1) == Some(&b'=') => {
                toks.push(SpannedTok {
                    tok: Tok::Assign,
                    at: i,
                });
                i += 2;
            }
            b'=' => {
                toks.push(SpannedTok {
                    tok: Tok::Eq,
                    at: i,
                });
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                toks.push(SpannedTok {
                    tok: Tok::Ne,
                    at: i,
                });
                i += 2;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Le,
                        at: i,
                    });
                    i += 2;
                } else if b
                    .get(i + 1)
                    .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
                {
                    // `<name` — a direct element constructor start. Capture
                    // the name; the parser takes over at `at`.
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && is_name_char(b[j]) {
                        j += 1;
                    }
                    let name = src[start..j].to_string();
                    toks.push(SpannedTok {
                        tok: Tok::LtName(name),
                        at: i,
                    });
                    i = j;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Lt,
                        at: i,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Ge,
                        at: i,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Gt,
                        at: i,
                    });
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut out = String::new();
                loop {
                    if j >= b.len() {
                        return Err(XQueryError::Lex(i, "unterminated string literal".into()));
                    }
                    if b[j] == quote {
                        // Doubled quote escapes itself.
                        if b.get(j + 1) == Some(&quote) {
                            out.push(quote as char);
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    out.push(b[j] as char);
                    j += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(out),
                    at: i,
                });
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: f64 = src[start..i]
                        .parse()
                        .map_err(|_| XQueryError::Lex(start, "bad decimal".into()))?;
                    toks.push(SpannedTok {
                        tok: Tok::Dec(v),
                        at: start,
                    });
                } else {
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| XQueryError::Lex(start, "bad integer".into()))?;
                    toks.push(SpannedTok {
                        tok: Tok::Int(v),
                        at: start,
                    });
                }
            }
            b'$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && is_name_char(b[j]) {
                    j += 1;
                }
                if j == start {
                    return Err(XQueryError::Lex(i, "expected variable name after $".into()));
                }
                toks.push(SpannedTok {
                    tok: Tok::Var(src[start..j].to_string()),
                    at: i,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && is_name_char_at(b, j) {
                    j += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Name(src[start..j].to_string()),
                    at: start,
                });
                i = j;
            }
            other => {
                return Err(XQueryError::Lex(
                    i,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        }
    }
    Ok(toks)
}

fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b':' | b'.')
}

/// Name-character test that also accepts `-` when it binds two name
/// characters (`current-date`).
fn is_name_char_at(b: &[u8], j: usize) -> bool {
    let c = b[j];
    if is_name_char(c) {
        // A trailing '.' (e.g. in `tstart(.)`) never occurs mid-name in our
        // grammar, but `xs:date` and `local:f` need ':'; however a ':'
        // followed by '=' is the assignment operator.
        if c == b':' && b.get(j + 1) == Some(&b'=') {
            return false;
        }
        if c == b'.' {
            // Only part of a name if followed by a letter (rare); keep '.'
            // for path steps otherwise.
            return b.get(j + 1).is_some_and(|n| n.is_ascii_alphabetic());
        }
        return true;
    }
    if c == b'-' {
        return j > 0
            && is_name_char(b[j - 1])
            && b.get(j + 1).is_some_and(|n| n.is_ascii_alphabetic());
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds(r#"for $t in doc("emp.xml")/employees return $t"#),
            vec![
                Tok::Name("for".into()),
                Tok::Var("t".into()),
                Tok::Name("in".into()),
                Tok::Name("doc".into()),
                Tok::LParen,
                Tok::Str("emp.xml".into()),
                Tok::RParen,
                Tok::Slash,
                Tok::Name("employees".into()),
                Tok::Name("return".into()),
                Tok::Var("t".into()),
            ]
        );
    }

    #[test]
    fn hyphenated_names_vs_minus() {
        assert_eq!(kinds("current-date()")[0], Tok::Name("current-date".into()));
        assert_eq!(kinds("1 - 2"), vec![Tok::Int(1), Tok::Minus, Tok::Int(2)]);
        assert_eq!(
            kinds("$a-$b"),
            vec![Tok::Var("a".into()), Tok::Minus, Tok::Var("b".into())]
        );
    }

    #[test]
    fn qnames_and_assign() {
        assert_eq!(kinds("xs:date")[0], Tok::Name("xs:date".into()));
        assert_eq!(
            kinds("let $d := 3"),
            vec![
                Tok::Name("let".into()),
                Tok::Var("d".into()),
                Tok::Assign,
                Tok::Int(3)
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b >= c != d < 1 > 2"),
            vec![
                Tok::Name("a".into()),
                Tok::Le,
                Tok::Name("b".into()),
                Tok::Ge,
                Tok::Name("c".into()),
                Tok::Ne,
                Tok::Name("d".into()),
                Tok::Lt,
                Tok::Int(1),
                Tok::Gt,
                Tok::Int(2),
            ]
        );
    }

    #[test]
    fn direct_ctor_start_is_detected() {
        let toks = kinds(r#"return <employee>"#);
        assert_eq!(toks[1], Tok::LtName("employee".into()));
    }

    #[test]
    fn strings_with_escapes_and_comments() {
        assert_eq!(kinds(r#""a""b""#), vec![Tok::Str("a\"b".into())]);
        assert_eq!(kinds("(: skip (: nested :) :) 5"), vec![Tok::Int(5)]);
        assert!(lex("(: unterminated").is_err());
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42 3.5"), vec![Tok::Int(42), Tok::Dec(3.5)]);
    }

    #[test]
    fn dots_and_slashes() {
        assert_eq!(
            kinds("tstart(.) .. // /"),
            vec![
                Tok::Name("tstart".into()),
                Tok::LParen,
                Tok::Dot,
                Tok::RParen,
                Tok::DotDot,
                Tok::SlashSlash,
                Tok::Slash,
            ]
        );
    }
}
