//! The XQuery data model: nodes, atomic values, items and sequences.

use crate::{Result, XQueryError};
use std::cell::RefCell;
use std::rc::{Rc, Weak};
use temporal::{Date, Interval};
use xmldom::{Element, Node};

/// An element node with parent links (needed for `..` and for attaching
/// constructed children).
#[derive(Debug)]
pub struct ElemNode {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: RefCell<Vec<(String, String)>>,
    /// Children in document order.
    pub children: RefCell<Vec<XNode>>,
    /// Parent element, if any.
    pub parent: RefCell<Weak<ElemNode>>,
}

/// A node in the XQuery data model.
#[derive(Debug, Clone)]
pub enum XNode {
    /// Element node.
    Elem(Rc<ElemNode>),
    /// Text node.
    Text(Rc<String>),
}

impl XNode {
    /// Build an element with no children.
    pub fn new_elem(name: impl Into<String>) -> XNode {
        XNode::Elem(Rc::new(ElemNode {
            name: name.into(),
            attrs: RefCell::new(Vec::new()),
            children: RefCell::new(Vec::new()),
            parent: RefCell::new(Weak::new()),
        }))
    }

    /// Convert an [`xmldom`] tree into the evaluator's node model.
    pub fn from_dom(e: &Element) -> XNode {
        fn build(e: &Element, parent: &Weak<ElemNode>) -> XNode {
            let node = Rc::new(ElemNode {
                name: e.name.clone(),
                attrs: RefCell::new(e.attributes.clone()),
                children: RefCell::new(Vec::new()),
                parent: RefCell::new(parent.clone()),
            });
            let self_weak = Rc::downgrade(&node);
            let mut children = Vec::with_capacity(e.children.len());
            for c in &e.children {
                match c {
                    Node::Element(ce) => children.push(build(ce, &self_weak)),
                    Node::Text(t) => children.push(XNode::Text(Rc::new(t.clone()))),
                }
            }
            *node.children.borrow_mut() = children;
            XNode::Elem(node)
        }
        build(e, &Weak::new())
    }

    /// Convert back to an [`xmldom`] tree (text nodes become `Node::Text`).
    pub fn to_dom(&self) -> Node {
        match self {
            XNode::Text(t) => Node::Text((**t).clone()),
            XNode::Elem(e) => {
                let mut out = Element::new(e.name.clone());
                out.attributes = e.attrs.borrow().clone();
                for c in e.children.borrow().iter() {
                    out.children.push(c.to_dom());
                }
                Node::Element(out)
            }
        }
    }

    /// Deep copy (fresh identity, no parent).
    pub fn deep_copy(&self) -> XNode {
        match self {
            XNode::Text(t) => XNode::Text(Rc::new((**t).clone())),
            XNode::Elem(_) => match self.to_dom() {
                Node::Element(e) => XNode::from_dom(&e),
                Node::Text(t) => XNode::Text(Rc::new(t)),
            },
        }
    }

    /// Node identity (pointer equality).
    pub fn same_node(&self, other: &XNode) -> bool {
        match (self, other) {
            (XNode::Elem(a), XNode::Elem(b)) => Rc::ptr_eq(a, b),
            (XNode::Text(a), XNode::Text(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Element view.
    pub fn as_elem(&self) -> Option<&Rc<ElemNode>> {
        match self {
            XNode::Elem(e) => Some(e),
            XNode::Text(_) => None,
        }
    }

    /// XPath string value.
    pub fn string_value(&self) -> String {
        match self {
            XNode::Text(t) => (**t).clone(),
            XNode::Elem(e) => {
                let mut out = String::new();
                collect_text(e, &mut out);
                out
            }
        }
    }

    /// The `tstart`/`tend` period of an element, per the H-document
    /// timestamping scheme.
    pub fn interval(&self) -> Option<Interval> {
        let e = self.as_elem()?;
        let attrs = e.attrs.borrow();
        let s = attrs
            .iter()
            .find(|(n, _)| n == "tstart")
            .map(|(_, v)| v.clone())?;
        let t = attrs
            .iter()
            .find(|(n, _)| n == "tend")
            .map(|(_, v)| v.clone())?;
        Interval::new(Date::parse(&s).ok()?, Date::parse(&t).ok()?).ok()
    }

    /// Attribute value.
    pub fn attr(&self, name: &str) -> Option<String> {
        let e = self.as_elem()?;
        let attrs = e.attrs.borrow();
        attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }
}

fn collect_text(e: &Rc<ElemNode>, out: &mut String) {
    for c in e.children.borrow().iter() {
        match c {
            XNode::Text(t) => out.push_str(t),
            XNode::Elem(ce) => collect_text(ce, out),
        }
    }
}

/// Attach a deep copy of `child` under `parent` and return nothing; sets
/// the parent pointer.
pub fn append_child(parent: &Rc<ElemNode>, child: XNode) {
    if let XNode::Elem(ce) = &child {
        *ce.parent.borrow_mut() = Rc::downgrade(parent);
    }
    parent.children.borrow_mut().push(child);
}

/// An atomic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Atomic {
    /// `xs:boolean`
    Bool(bool),
    /// `xs:integer`
    Int(i64),
    /// `xs:double`/`xs:decimal`
    Double(f64),
    /// `xs:string`
    Str(String),
    /// `xs:date` (day granularity).
    Date(Date),
}

impl Atomic {
    /// Lexical form.
    pub fn to_text(&self) -> String {
        match self {
            Atomic::Bool(b) => b.to_string(),
            Atomic::Int(i) => i.to_string(),
            Atomic::Double(d) => {
                if d.fract() == 0.0 && d.abs() < 1e15 {
                    format!("{}", *d as i64)
                } else {
                    d.to_string()
                }
            }
            Atomic::Str(s) => s.clone(),
            Atomic::Date(d) => d.to_string(),
        }
    }

    /// Numeric view.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Atomic::Int(i) => Some(*i as f64),
            Atomic::Double(d) => Some(*d),
            Atomic::Str(s) => s.trim().parse().ok(),
            Atomic::Bool(b) => Some(*b as i64 as f64),
            Atomic::Date(_) => None,
        }
    }

    /// Date view (strings are parsed).
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Atomic::Date(d) => Some(*d),
            Atomic::Str(s) => Date::parse(s).ok(),
            _ => None,
        }
    }
}

/// One item: a node or an atomic value.
#[derive(Debug, Clone)]
pub enum Item {
    /// Node item.
    Node(XNode),
    /// Atomic item.
    Atom(Atomic),
}

impl Item {
    /// Atomize: nodes become their typed-as-string values.
    pub fn atomize(&self) -> Atomic {
        match self {
            Item::Atom(a) => a.clone(),
            Item::Node(n) => Atomic::Str(n.string_value()),
        }
    }

    /// The node, if this item is one.
    pub fn as_node(&self) -> Option<&XNode> {
        match self {
            Item::Node(n) => Some(n),
            Item::Atom(_) => None,
        }
    }
}

/// An XQuery sequence (flat list of items).
pub type Sequence = Vec<Item>;

/// Effective boolean value (XQuery rules, restricted to our types).
pub fn effective_boolean(seq: &Sequence) -> Result<bool> {
    match seq.len() {
        0 => Ok(false),
        _ => match &seq[0] {
            Item::Node(_) => Ok(true),
            Item::Atom(a) if seq.len() == 1 => Ok(match a {
                Atomic::Bool(b) => *b,
                Atomic::Int(i) => *i != 0,
                Atomic::Double(d) => *d != 0.0 && !d.is_nan(),
                Atomic::Str(s) => !s.is_empty(),
                Atomic::Date(_) => true,
            }),
            _ => Err(XQueryError::Type(
                "effective boolean value of a multi-item atomic sequence".into(),
            )),
        },
    }
}

/// Compare two atomics with XQuery general-comparison coercion: dates win
/// if either side is (or parses as) a date and the other side parses too;
/// then numbers; then strings.
pub fn atomic_compare(a: &Atomic, b: &Atomic) -> Option<std::cmp::Ordering> {
    use Atomic::*;
    match (a, b) {
        (Date(x), Date(y)) => Some(x.cmp(y)),
        (Date(x), other) => {
            let y = other.as_date()?;
            Some(x.cmp(&y))
        }
        (other, Date(y)) => {
            let x = other.as_date()?;
            Some(x.cmp(y))
        }
        (Bool(x), Bool(y)) => Some(x.cmp(y)),
        (Int(x), Int(y)) => Some(x.cmp(y)),
        (Int(_) | Double(_), Int(_) | Double(_)) => a.as_number()?.partial_cmp(&b.as_number()?),
        (Int(_) | Double(_), Str(s)) => {
            let y: f64 = s.trim().parse().ok()?;
            a.as_number()?.partial_cmp(&y)
        }
        (Str(s), Int(_) | Double(_)) => {
            let x: f64 = s.trim().parse().ok()?;
            x.partial_cmp(&b.as_number()?)
        }
        (Str(x), Str(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn elem_from(xml: &str) -> XNode {
        XNode::from_dom(&xmldom::parse(xml).unwrap())
    }

    #[test]
    fn dom_roundtrip_preserves_structure() {
        let xml = r#"<employee tstart="1995-01-01" tend="9999-12-31"><name>Bob</name><salary tstart="1995-01-01" tend="1995-05-31">60000</salary></employee>"#;
        let n = elem_from(xml);
        assert_eq!(n.to_dom().to_xml(), xml);
    }

    #[test]
    fn parent_links_are_set() {
        let n = elem_from("<a><b><c/></b></a>");
        let a = n.as_elem().unwrap();
        let b = a.children.borrow()[0].clone();
        let be = b.as_elem().unwrap().clone();
        let parent = be.parent.borrow().upgrade().unwrap();
        assert!(Rc::ptr_eq(&parent, a));
    }

    #[test]
    fn string_value_and_interval() {
        let n = elem_from(r#"<salary tstart="1995-01-01" tend="1995-05-31">60000</salary>"#);
        assert_eq!(n.string_value(), "60000");
        assert_eq!(
            n.interval().unwrap(),
            Interval::parse("1995-01-01", "1995-05-31").unwrap()
        );
        assert_eq!(elem_from("<x/>").interval(), None);
    }

    #[test]
    fn deep_copy_has_fresh_identity() {
        let n = elem_from("<a><b/></a>");
        let c = n.deep_copy();
        assert!(!n.same_node(&c));
        assert_eq!(n.to_dom().to_xml(), c.to_dom().to_xml());
    }

    #[test]
    fn effective_boolean_rules() {
        assert!(!effective_boolean(&vec![]).unwrap());
        assert!(effective_boolean(&vec![Item::Node(elem_from("<x/>"))]).unwrap());
        assert!(!effective_boolean(&vec![Item::Atom(Atomic::Str("".into()))]).unwrap());
        assert!(effective_boolean(&vec![Item::Atom(Atomic::Int(2))]).unwrap());
        assert!(effective_boolean(&vec![
            Item::Node(elem_from("<x/>")),
            Item::Node(elem_from("<y/>"))
        ])
        .unwrap());
        assert!(effective_boolean(&vec![
            Item::Atom(Atomic::Int(1)),
            Item::Atom(Atomic::Int(2))
        ])
        .is_err());
    }

    #[test]
    fn compare_coerces_dates_and_numbers() {
        let d = Atomic::Date(Date::parse("1994-05-06").unwrap());
        let s = Atomic::Str("1994-05-07".into());
        assert_eq!(atomic_compare(&d, &s), Some(Ordering::Less));
        assert_eq!(atomic_compare(&s, &d), Some(Ordering::Greater));
        assert_eq!(
            atomic_compare(&Atomic::Str("60000".into()), &Atomic::Int(70000)),
            Some(Ordering::Less)
        );
        assert_eq!(
            atomic_compare(&Atomic::Str("abc".into()), &Atomic::Str("abd".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            atomic_compare(&Atomic::Str("abc".into()), &Atomic::Int(1)),
            None
        );
    }
}
