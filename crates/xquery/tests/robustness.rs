//! Robustness: the XQuery lexer/parser never panic; errors carry
//! in-range offsets.

use proptest::prelude::*;
use xquery::parse_query;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_input_never_panics(s in "\\PC*") {
        let _ = parse_query(&s);
    }

    #[test]
    fn queryish_input_never_panics(
        s in "[a-z$/\\[\\]()<>=.,:\"' {}0-9@*+-]{0,120}"
    ) {
        let _ = parse_query(&s);
    }

    #[test]
    fn truncations_of_valid_queries_never_panic(cut in 0usize..400) {
        let q = r#"element title_history {
            for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
            where tstart($t) <= xs:date("1995-01-01") and not(empty($t))
            order by $t descending
            return <wrap kind="x{1+1}">{$t, overlapinterval($t, $t)}</wrap> }"#;
        let cut = cut.min(q.len());
        if q.is_char_boundary(cut) {
            let _ = parse_query(&q[..cut]);
        }
    }
}
