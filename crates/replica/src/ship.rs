//! The primary side of log shipping: a durable segmented stream of WAL
//! commit units, a [`ShipTee`] that populates it transparently from the
//! primary's own WAL traffic, and the [`Primary`] open path that
//! reconciles stream and WAL after a crash.
//!
//! # Stream format
//!
//! The shipping stream reuses the WAL's framed record format verbatim
//! (`[kind u8][page_id u64][len u32][crc32 u32][payload]`): for every
//! primary commit it carries the commit's `WAL_REC_PAGE` records and the
//! `WAL_REC_COMMIT` record *byte-for-byte as they appear in the WAL*,
//! followed by one generated [`SHIP_REC_CRC`] record whose payload is
//! `(global_commit u64, crc_state u64)` — the running divergence
//! checksum chained over every shipped page image (see [`mix_crc`]).
//! Because shipped bytes are copies of durable WAL bytes plus a
//! deterministic trailer, re-shipping the same commits after a crash
//! reproduces the stream **byte-identically**, so replica positions
//! (plain stream offsets) survive primary restarts.
//!
//! # Durability contract
//!
//! The stream is strictly a suffix-lagging copy of the durable WAL: the
//! tee ships only after `inner.sync()` succeeds, and the meta record
//! (tmp+rename, CRC-guarded) is authoritative — segment bytes beyond
//! `meta.total_bytes` are discarded on open as unacknowledged garbage.
//! A crash between WAL fsync and ship append therefore loses nothing:
//! [`Primary::open`] compares `meta.wal_commits_shipped` against the
//! commits actually present in the WAL and re-ships the missing tail.

use crate::Result;
use parking_lot::Mutex;
use relstore::{
    crc32, encode_record, Database, FileLog, FilePager, LogFile, MemLog, RecordScan, RecoveryStop,
    StoreError, WalConfig, WalPager, WAL_REC_COMMIT, WAL_REC_PAGE,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Shipping-stream record kind: divergence-checksum trailer after each
/// commit. Payload is `global_commit u64 LE ++ crc_state u64 LE`; the
/// record's `page_id` field mirrors `global_commit` for greppability.
pub const SHIP_REC_CRC: u8 = 3;

/// Logical segment size of the shipping stream. Positions are plain
/// offsets into the concatenated stream; segmentation is a storage
/// detail (bounded file sizes, cheap tail reads), not a framing one —
/// records may span segment boundaries.
pub const SHIP_SEG_BYTES: u64 = 256 * 1024;

/// Chain one shipped page image into the running divergence checksum.
///
/// SplitMix64-style finalizer over `(state, page_id, crc32(payload))`;
/// order-sensitive, so a replica that applies the right images in the
/// wrong order still diverges.
pub fn mix_crc(state: u64, page_id: u64, payload_crc: u32) -> u64 {
    let mut x = state
        ^ page_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((payload_crc as u64) << 32 | payload_crc as u64);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Byte length of the longest prefix of `bytes` that ends at a
/// `WAL_REC_COMMIT` record boundary (0 when no complete commit is
/// present). The tee ships only whole commit units; trailing page
/// records of an unfinished batch stay pending.
pub fn last_commit_boundary(bytes: &[u8]) -> usize {
    let mut cut = 0;
    for rec in RecordScan::new(bytes, &[WAL_REC_PAGE, WAL_REC_COMMIT]) {
        if rec.kind == WAL_REC_COMMIT {
            cut = rec.end;
        }
    }
    cut
}

// ---------------------------------------------------------------------------
// Segment storage backends
// ---------------------------------------------------------------------------

/// Storage for shipping-log segments plus one atomically-replaceable
/// meta blob. Implementations must make [`SegmentStore::write_meta`]
/// atomic (all-or-nothing under crash), because the meta record is the
/// stream's source of truth.
pub trait SegmentStore: Send + Sync {
    /// Read the meta blob, `None` when the store is fresh.
    fn read_meta(&self) -> relstore::Result<Option<Vec<u8>>>;
    /// Atomically replace the meta blob.
    fn write_meta(&self, bytes: &[u8]) -> relstore::Result<()>;
    /// Open (creating if absent) the segment with this index.
    fn segment(&self, index: u64) -> relstore::Result<Arc<dyn LogFile>>;
    /// Truncate a segment to exactly `len` bytes (discarding any
    /// unacknowledged tail written after the last durable meta).
    fn truncate_segment(&self, index: u64, len: u64) -> relstore::Result<()>;
}

/// In-memory segment store for tests and torture harnesses.
pub struct MemSegments {
    meta: Mutex<Option<Vec<u8>>>,
    segs: Mutex<HashMap<u64, Arc<MemLog>>>,
}

impl MemSegments {
    /// An empty in-memory segment store.
    pub fn new() -> Arc<Self> {
        Arc::new(MemSegments {
            meta: Mutex::new(None),
            segs: Mutex::new(HashMap::new()),
        })
    }
}

impl SegmentStore for MemSegments {
    fn read_meta(&self) -> relstore::Result<Option<Vec<u8>>> {
        Ok(self.meta.lock().clone())
    }

    fn write_meta(&self, bytes: &[u8]) -> relstore::Result<()> {
        *self.meta.lock() = Some(bytes.to_vec());
        Ok(())
    }

    fn segment(&self, index: u64) -> relstore::Result<Arc<dyn LogFile>> {
        let mut segs = self.segs.lock();
        let seg = segs.entry(index).or_insert_with(|| Arc::new(MemLog::new()));
        Ok(seg.clone())
    }

    fn truncate_segment(&self, index: u64, len: u64) -> relstore::Result<()> {
        let segs = self.segs.lock();
        if let Some(seg) = segs.get(&index) {
            let mut raw = seg.raw();
            if raw.len() as u64 > len {
                raw.truncate(len as usize);
                seg.set_raw(raw);
            }
        }
        Ok(())
    }
}

/// Directory-backed segment store: `<dir>/seg-NNNNNNNN.log` files plus
/// `<dir>/meta` replaced via write-to-temp + rename.
pub struct DirSegments {
    dir: PathBuf,
}

impl DirSegments {
    /// Open (creating if absent) a segment directory.
    pub fn open(dir: impl AsRef<Path>) -> relstore::Result<Arc<Self>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::Io(format!("{e}")))?;
        Ok(Arc::new(DirSegments { dir }))
    }

    fn seg_path(&self, index: u64) -> PathBuf {
        self.dir.join(format!("seg-{index:08}.log"))
    }
}

impl SegmentStore for DirSegments {
    fn read_meta(&self) -> relstore::Result<Option<Vec<u8>>> {
        match std::fs::read(self.dir.join("meta")) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::Io(format!("{e}"))),
        }
    }

    fn write_meta(&self, bytes: &[u8]) -> relstore::Result<()> {
        let tmp = self.dir.join("meta.tmp");
        let dst = self.dir.join("meta");
        let io = |e: std::io::Error| StoreError::Io(format!("{e}"));
        // lint:allow(DirSegments IS a durable-medium implementation below
        // the pager layer, like FileLog: the ship meta is written
        // tmp+fsync+rename+dirsync, never in place)
        std::fs::write(&tmp, bytes).map_err(io)?;
        let f = std::fs::File::open(&tmp).map_err(io)?;
        f.sync_all().map_err(io)?;
        std::fs::rename(&tmp, &dst).map_err(io)?;
        // Rename durability requires a directory fsync on POSIX.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn segment(&self, index: u64) -> relstore::Result<Arc<dyn LogFile>> {
        Ok(Arc::new(FileLog::open(self.seg_path(index))?))
    }

    fn truncate_segment(&self, index: u64, len: u64) -> relstore::Result<()> {
        let path = self.seg_path(index);
        if !path.is_file() {
            return Ok(());
        }
        let io = |e: std::io::Error| StoreError::Io(format!("{e}"));
        // lint:allow(segment truncation opens the raw segment file;
        // DirSegments is the durable ship medium itself)
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(io)?;
        if f.metadata().map_err(io)?.len() > len {
            // lint:allow(discards only unacknowledged ship-stream bytes past
            // the durable head recorded in the CRC-guarded meta; committed
            // pages all live below `len`)
            f.set_len(len).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Meta record
// ---------------------------------------------------------------------------

/// Durable head state of a shipping stream. CRC-guarded on disk; the
/// copy in memory always mirrors the last durable write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShipMeta {
    /// Logical stream length: every byte below this is acknowledged.
    pub total_bytes: u64,
    /// Global commits in the stream (== number of [`SHIP_REC_CRC`]
    /// trailers).
    pub commits: u64,
    /// Divergence checksum chain value after the last shipped commit.
    pub crc_state: u64,
    /// How many commits of the *current WAL incarnation* are already in
    /// the stream; reset to 0 when a checkpoint truncates the WAL. The
    /// reconcile path re-ships WAL commits beyond this count.
    pub wal_commits_shipped: u64,
}

const META_MAGIC: u32 = 0x5348_4950; // "SHIP"
const META_LEN: usize = 4 + 8 * 4 + 4;

impl ShipMeta {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(META_LEN);
        b.extend_from_slice(&META_MAGIC.to_le_bytes());
        b.extend_from_slice(&self.total_bytes.to_le_bytes());
        b.extend_from_slice(&self.commits.to_le_bytes());
        b.extend_from_slice(&self.crc_state.to_le_bytes());
        b.extend_from_slice(&self.wal_commits_shipped.to_le_bytes());
        b.extend_from_slice(&crc32(&b).to_le_bytes());
        b
    }

    pub(crate) fn decode(bytes: &[u8]) -> relstore::Result<ShipMeta> {
        let bad = |kind: &str| StoreError::Io(format!("shipping meta corrupt: {kind}"));
        if bytes.len() != META_LEN {
            return Err(bad("wrong length"));
        }
        let (body, crc) = bytes.split_at(META_LEN - 4);
        // lint:allow(length checked == META_LEN above: crc is exactly 4 bytes)
        if crc32(body) != u32::from_le_bytes(crc.try_into().unwrap()) {
            return Err(bad("checksum mismatch"));
        }
        // lint:allow(body is META_LEN - 4 bytes, the magic window is in-bounds)
        if u32::from_le_bytes(body[0..4].try_into().unwrap()) != META_MAGIC {
            return Err(bad("bad magic"));
        }
        // lint:allow(length-checked buffer: all four 8-byte windows are
        // in-bounds and each try_into sees exactly 8 bytes)
        let u = |i: usize| u64::from_le_bytes(body[4 + i * 8..12 + i * 8].try_into().unwrap());
        Ok(ShipMeta {
            total_bytes: u(0),
            commits: u(1),
            crc_state: u(2),
            wal_commits_shipped: u(3),
        })
    }
}

// ---------------------------------------------------------------------------
// Shipping log
// ---------------------------------------------------------------------------

struct ShipLogState {
    meta: ShipMeta,
    /// Open segment handles, keyed by index.
    segs: HashMap<u64, Arc<dyn LogFile>>,
}

/// The durable shipping stream: fixed-size logical segments plus the
/// authoritative [`ShipMeta`]. All appends go through
/// [`ShippingLog::ship_commits`], which keeps the divergence checksum
/// chain and the meta record consistent with the appended bytes.
pub struct ShippingLog {
    store: Arc<dyn SegmentStore>,
    state: Mutex<ShipLogState>,
}

impl ShippingLog {
    /// Open the stream over a segment store, discarding any segment
    /// bytes beyond the durable meta (unacknowledged tail from a crash
    /// mid-append — the reconcile path will re-ship them identically).
    pub fn open(store: Arc<dyn SegmentStore>) -> relstore::Result<Arc<Self>> {
        let meta = match store.read_meta()? {
            Some(bytes) => ShipMeta::decode(&bytes)?,
            None => ShipMeta::default(),
        };
        // Trim every segment that could hold stream bytes to its
        // acknowledged extent; later segments (created just before the
        // crash) go to zero.
        let last_seg = meta.total_bytes / SHIP_SEG_BYTES;
        for idx in 0..=last_seg + 1 {
            let seg_start = idx * SHIP_SEG_BYTES;
            let keep = meta
                .total_bytes
                .saturating_sub(seg_start)
                .min(SHIP_SEG_BYTES);
            store.truncate_segment(idx, keep)?;
        }
        Ok(Arc::new(ShippingLog {
            store,
            state: Mutex::new(ShipLogState {
                meta,
                segs: HashMap::new(),
            }),
        }))
    }

    /// Durable head of the stream: `(position, global commits)`.
    pub fn head(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.meta.total_bytes, st.meta.commits)
    }

    /// The durable meta record.
    pub fn meta(&self) -> ShipMeta {
        self.state.lock().meta
    }

    fn seg(
        store: &Arc<dyn SegmentStore>,
        st: &mut ShipLogState,
        index: u64,
    ) -> relstore::Result<Arc<dyn LogFile>> {
        if let Some(seg) = st.segs.get(&index) {
            return Ok(seg.clone());
        }
        let seg = store.segment(index)?;
        st.segs.insert(index, seg.clone());
        Ok(seg)
    }

    /// Append raw stream bytes, rolling segments at [`SHIP_SEG_BYTES`]
    /// boundaries. Advances `meta.total_bytes` in memory only; the
    /// caller syncs segments and persists meta afterwards.
    fn append_stream(&self, st: &mut ShipLogState, mut bytes: &[u8]) -> relstore::Result<Vec<u64>> {
        let mut touched = Vec::new();
        while !bytes.is_empty() {
            let idx = st.meta.total_bytes / SHIP_SEG_BYTES;
            let room = (SHIP_SEG_BYTES - st.meta.total_bytes % SHIP_SEG_BYTES) as usize;
            let take = room.min(bytes.len());
            let seg = Self::seg(&self.store, st, idx)?;
            seg.append(&bytes[..take])?; // lint:allow(take <= bytes.len() by min)
            if touched.last() != Some(&idx) {
                touched.push(idx);
            }
            st.meta.total_bytes += take as u64;
            bytes = &bytes[take..]; // lint:allow(take <= bytes.len() by min)
        }
        Ok(touched)
    }

    /// Ship complete WAL commit units (`records` must end exactly at a
    /// `WAL_REC_COMMIT` boundary — use [`last_commit_boundary`]). Each
    /// commit's records are appended verbatim, followed by a generated
    /// [`SHIP_REC_CRC`] trailer; segments are synced and the meta is
    /// persisted once at the end. Returns the number of commits shipped.
    pub fn ship_commits(&self, records: &[u8]) -> relstore::Result<u64> {
        let st = &mut *self.state.lock();
        let before = st.meta;
        let mut shipped = 0u64;
        let mut touched: Vec<u64> = Vec::new();
        let mut unit_start = 0usize;
        let mut crc = st.meta.crc_state;
        let mut scan = RecordScan::new(records, &[WAL_REC_PAGE, WAL_REC_COMMIT]);
        for rec in &mut scan {
            match rec.kind {
                WAL_REC_PAGE => crc = mix_crc(crc, rec.page_id, crc32(rec.payload)),
                _ => {
                    st.meta.commits += 1;
                    st.meta.crc_state = crc;
                    st.meta.wal_commits_shipped += 1;
                    shipped += 1;
                    let mut payload = [0u8; 16];
                    payload[..8].copy_from_slice(&st.meta.commits.to_le_bytes()); // lint:allow(fixed 16-byte array, constant range)
                    payload[8..].copy_from_slice(&crc.to_le_bytes()); // lint:allow(fixed 16-byte array, constant range)
                    let trailer = encode_record(SHIP_REC_CRC, st.meta.commits, &payload);
                    // lint:allow(RecordScan yields in-bounds offsets into `records`)
                    for idx in self.append_stream(st, &records[unit_start..rec.end])? {
                        if !touched.contains(&idx) {
                            touched.push(idx);
                        }
                    }
                    for idx in self.append_stream(st, &trailer)? {
                        if !touched.contains(&idx) {
                            touched.push(idx);
                        }
                    }
                    unit_start = rec.end;
                }
            }
        }
        if scan.stop() != RecoveryStop::CleanEof || unit_start != records.len() {
            // Roll back the in-memory meta: nothing was acknowledged.
            st.meta = before;
            return Err(StoreError::Io(
                "ship_commits: input is not whole commit units".into(),
            ));
        }
        if shipped == 0 {
            return Ok(0);
        }
        for idx in touched {
            Self::seg(&self.store, st, idx)?.sync()?;
        }
        self.store.write_meta(&st.meta.encode())?;
        Ok(shipped)
    }

    /// Record that the primary's WAL incarnation changed (checkpoint
    /// truncated it): commits shipped from the old incarnation no longer
    /// correspond to WAL contents.
    pub fn reset_wal_commits(&self) -> relstore::Result<()> {
        let st = &mut *self.state.lock();
        if st.meta.wal_commits_shipped == 0 {
            return Ok(());
        }
        st.meta.wal_commits_shipped = 0;
        self.store.write_meta(&st.meta.encode())
    }

    /// Read up to `max` acknowledged stream bytes starting at `pos`.
    /// Returns an empty vector at or past the head.
    pub fn read_from(&self, pos: u64, max: usize) -> relstore::Result<Vec<u8>> {
        let st = &mut *self.state.lock();
        let end = st.meta.total_bytes.min(pos.saturating_add(max as u64));
        let mut out = Vec::new();
        let mut at = pos;
        while at < end {
            let idx = at / SHIP_SEG_BYTES;
            let off = (at % SHIP_SEG_BYTES) as usize;
            let seg = Self::seg(&self.store, st, idx)?;
            let raw = seg.read_all()?;
            let take = raw.len().min(off + (end - at) as usize) - off.min(raw.len());
            if take == 0 {
                break;
            }
            // lint:allow(take is clamped against raw.len() - off above, so
            // the window ends at or before the segment's last byte)
            out.extend_from_slice(&raw[off..off + take]);
            at += take as u64;
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// WAL tee
// ---------------------------------------------------------------------------

struct TeeState {
    /// Record bytes appended to the WAL since the last ship, not yet
    /// acknowledged into the stream. Only whole commit units leave.
    pending: Vec<u8>,
}

/// A [`LogFile`] wrapper for the primary's WAL that ships every durable
/// commit into a [`ShippingLog`] as a side effect of `sync`.
///
/// Ordering: the inner WAL fsync completes **before** anything is
/// shipped, so the stream is always a prefix-copy of durable WAL state
/// — a replica can never apply a commit the primary could lose. On
/// `truncate` (checkpoint reclaiming the WAL) only the inner log is
/// truncated; the stream keeps the full history and the meta's
/// `wal_commits_shipped` resets so reconcile math stays aligned with
/// the new WAL incarnation.
pub struct ShipTee {
    inner: Arc<dyn LogFile>,
    ship: Arc<ShippingLog>,
    state: Mutex<TeeState>,
}

impl ShipTee {
    /// Tee `inner` (the primary's durable WAL device) into `ship`.
    pub fn new(inner: Arc<dyn LogFile>, ship: Arc<ShippingLog>) -> Arc<Self> {
        Arc::new(ShipTee {
            inner,
            ship,
            state: Mutex::new(TeeState {
                pending: Vec::new(),
            }),
        })
    }

    /// The shipping stream this tee feeds.
    pub fn ship(&self) -> Arc<ShippingLog> {
        self.ship.clone()
    }
}

impl LogFile for ShipTee {
    fn append(&self, bytes: &[u8]) -> relstore::Result<()> {
        self.inner.append(bytes)?;
        self.state.lock().pending.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> relstore::Result<()> {
        // WAL first: ship only what is durable on the primary.
        self.inner.sync()?;
        let mut st = self.state.lock();
        let cut = last_commit_boundary(&st.pending);
        if cut > 0 {
            // lint:allow(cut is a last_commit_boundary offset <= pending.len())
            self.ship.ship_commits(&st.pending[..cut])?;
            st.pending.drain(..cut);
        }
        Ok(())
    }

    fn read_all(&self) -> relstore::Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn truncate(&self) -> relstore::Result<()> {
        self.inner.truncate()?;
        self.state.lock().pending.clear();
        self.ship.reset_wal_commits()
    }

    fn len(&self) -> relstore::Result<u64> {
        self.inner.len()
    }
}

// ---------------------------------------------------------------------------
// Primary
// ---------------------------------------------------------------------------

/// A primary store wired for shipping: WAL traffic tees into a durable
/// [`ShippingLog`], and the open path reconciles the two after a crash
/// (re-shipping WAL commits the stream missed, byte-identically).
pub struct Primary {
    pager: Arc<WalPager>,
    ship: Arc<ShippingLog>,
}

impl Primary {
    /// Open a shipping primary over explicit devices. `wal_log` is the
    /// durable WAL medium; `store` holds the shipping stream.
    ///
    /// Reconcile-on-open: count the commits currently in the WAL; any
    /// beyond `meta.wal_commits_shipped` were made durable but never
    /// acknowledged into the stream (crash between WAL fsync and ship),
    /// so re-ship them now. The count is clamped downwards too — a crash
    /// after a checkpoint's WAL truncate but before the meta reset
    /// leaves `wal_commits_shipped` higher than the (now near-empty)
    /// WAL, and the clamp re-aligns it with the new incarnation.
    pub fn open(
        base: Arc<dyn relstore::Pager>,
        wal_log: Arc<dyn LogFile>,
        store: Arc<dyn SegmentStore>,
        cfg: WalConfig,
    ) -> Result<Primary> {
        let ship = ShippingLog::open(store)?;

        let bytes = wal_log.read_all()?;
        let committed = last_commit_boundary(&bytes);
        let mut wal_commits = 0u64;
        let mut unit_starts: Vec<usize> = vec![0];
        // lint:allow(committed is a last_commit_boundary offset <= bytes.len())
        for rec in RecordScan::new(&bytes[..committed], &[WAL_REC_PAGE, WAL_REC_COMMIT]) {
            if rec.kind == WAL_REC_COMMIT {
                wal_commits += 1;
                unit_starts.push(rec.end);
            }
        }
        {
            let shipped = ship.meta().wal_commits_shipped;
            if shipped > wal_commits {
                // New WAL incarnation (checkpoint truncate crashed before
                // the meta reset): nothing in this WAL is unshipped.
                let st = &mut *ship.state.lock();
                st.meta.wal_commits_shipped = wal_commits;
                ship.store.write_meta(&st.meta.encode())?;
            } else if shipped < wal_commits {
                // lint:allow(unit_starts holds wal_commits + 1 boundary
                // offsets and shipped < wal_commits here; every boundary
                // is <= committed <= bytes.len())
                ship.ship_commits(&bytes[unit_starts[shipped as usize]..committed])?;
            }
        }

        let tee = ShipTee::new(wal_log, ship.clone());
        let pager = Arc::new(WalPager::open(base, tee, cfg)?);
        Ok(Primary { pager, ship })
    }

    /// Open a file-backed shipping primary: page file at `path`, WAL at
    /// `<path>.wal`, shipping stream under `<path>.ship/`. Returns the
    /// primary handle and a [`Database`] over it.
    pub fn open_file(
        path: impl AsRef<Path>,
        pool_pages: usize,
        cfg: WalConfig,
    ) -> Result<(Primary, Database)> {
        let path = path.as_ref();
        let mut wal_path = path.as_os_str().to_os_string();
        wal_path.push(".wal");
        let mut ship_path = path.as_os_str().to_os_string();
        ship_path.push(".ship");
        let base = Arc::new(FilePager::open(path)?);
        let log = Arc::new(FileLog::open(wal_path)?);
        let store = DirSegments::open(ship_path)?;
        let primary = Primary::open(base, log, store, cfg)?;
        let pool = Arc::new(relstore::BufferPool::new(primary.pager.clone(), pool_pages));
        let db = Database::open_pool(pool)?;
        Ok((primary, db))
    }

    /// The WAL pager backing this primary (wrap in a `BufferPool` +
    /// [`Database`] for SQL-level access).
    pub fn pager(&self) -> Arc<WalPager> {
        self.pager.clone()
    }

    /// The durable shipping stream replicas pull from.
    pub fn ship(&self) -> Arc<ShippingLog> {
        self.ship.clone()
    }
}
