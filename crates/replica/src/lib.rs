//! Log-shipping read replicas for the ArchIS transaction-time store.
//!
//! The paper's archive is append-only history, which makes read scale-out
//! cheap: the physical page WAL (full-page-image records, CRC-32 framed,
//! self-describing) *is* the replication stream. A [`Primary`] tees every
//! WAL commit into a durable segmented [`ShippingLog`]; a [`Replica`]
//! continuously pulls the stream over a [`Transport`] and replays it into
//! its own store, publishing only at commit boundaries — every replica
//! state is some committed prefix of the primary, never a torn middle.
//!
//! Robustness is the design center, not an afterthought:
//!
//! * **Transient channel faults** (dropped / duplicated / reordered /
//!   truncated / bit-flipped shipments) are absorbed by bounded retry
//!   with exponential backoff + jitter and re-request from the last
//!   durable position. Framing damage is detected by the per-record
//!   CRC-32 before a single byte is applied.
//! * **Replica crash recovery**: the store, its WAL and the position log
//!   are ordinary fault-injectable devices; a kill at any write or fsync
//!   mid-replay reopens into WAL recovery and resumes from the durable
//!   shipping position. Replay is idempotent (full page images), so a
//!   stale-low position only costs re-work, never correctness.
//! * **Divergence detection**: the primary chains a running checksum
//!   over shipped page images and embeds it after every commit
//!   ([`SHIP_REC_CRC`]). The replica recomputes the chain over what it
//!   *applied* and verifies **before** committing the unit. A mismatch
//!   is [`ReplicaError::Diverged`]: the replica quarantines itself
//!   read-only-stale (durably, in its position log) and keeps serving
//!   its last verified state — it never invents or publishes bad pages.
//! * **Graceful degradation**: [`Replica::lag`] reports staleness in
//!   commits and stream bytes; [`Replica::begin_snapshot`] pins a
//!   replayed commit through the MVCC snapshot machinery so readers get
//!   consistent-but-stale views with an explicit staleness bound while
//!   replay continues underneath.

mod channel;
mod replica;
mod ship;
#[cfg(test)]
mod tests;

pub use channel::{FaultTransport, Head, LocalTransport, RetryPolicy, Shipment, Transport};
pub use replica::{read_position, Lag, Position, Progress, Replica, ReplicaSnapshot, POS_REC};
pub use ship::{
    last_commit_boundary, mix_crc, DirSegments, MemSegments, Primary, SegmentStore, ShipMeta,
    ShipTee, ShippingLog, SHIP_REC_CRC, SHIP_SEG_BYTES,
};

use relstore::StoreError;
use std::fmt;

/// Replication failure, classified so callers can tell "retry later"
/// conditions from "stop trusting this replica" conditions.
#[derive(Debug)]
pub enum ReplicaError {
    /// Local storage failure (replica store, WAL, or position log).
    Store(StoreError),
    /// The channel failed past the retry budget; the replica is intact
    /// and a later pull can resume from the same durable position.
    Transport {
        /// Fetch attempts made before giving up.
        attempts: u32,
        /// The last transport error observed.
        last: String,
    },
    /// The divergence checksum chain broke: what the replica applied is
    /// not what the primary shipped. The offending commit was **not**
    /// published; the replica has quarantined itself read-only-stale.
    Diverged {
        /// Global commit number whose verification failed.
        commit: u64,
        /// Checksum chain value the primary embedded in the stream.
        expected: u64,
        /// Chain value the replica computed over applied images.
        actual: u64,
    },
    /// The replica is quarantined after a divergence; apply is refused
    /// until an operator rebuilds it. Reads of the last verified state
    /// are still served.
    Quarantined,
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Store(e) => write!(f, "replica storage: {e}"),
            ReplicaError::Transport { attempts, last } => {
                write!(f, "transport failed after {attempts} attempt(s): {last}")
            }
            ReplicaError::Diverged {
                commit,
                expected,
                actual,
            } => write!(
                f,
                "diverged at commit {commit}: shipped checksum {expected:#018x}, \
                 applied checksum {actual:#018x}; replica quarantined read-only"
            ),
            ReplicaError::Quarantined => {
                write!(f, "replica is quarantined read-only after divergence")
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<StoreError> for ReplicaError {
    fn from(e: StoreError) -> Self {
        ReplicaError::Store(e)
    }
}

/// Result alias for replication operations.
pub type Result<T> = std::result::Result<T, ReplicaError>;
