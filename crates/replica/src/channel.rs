//! The wire between primary and replica: a [`Transport`] abstraction, a
//! loopback implementation over a [`ShippingLog`], a fault-injecting
//! wrapper driven by [`relstore::FailChannel`], and the bounded-retry
//! policy (exponential backoff + seeded jitter) replicas use to absorb
//! transient channel failures.

use crate::ship::{ShippingLog, SHIP_REC_CRC};
use crate::{ReplicaError, Result};
use parking_lot::Mutex;
use relstore::{
    encode_record, FailChannel, RecordScan, ShipmentFate, StoreError, WAL_HEADER_LEN,
    WAL_REC_COMMIT, WAL_REC_PAGE,
};
use std::sync::Arc;
use std::time::Duration;

/// Durable head of the primary's shipping stream as seen over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Head {
    /// Stream length in bytes (the next position to be written).
    pub pos: u64,
    /// Global commits acknowledged into the stream.
    pub commits: u64,
}

/// One chunk of the shipping stream in flight.
#[derive(Debug, Clone)]
pub struct Shipment {
    /// Stream position of the first byte (as labelled by the sender; a
    /// faulty channel may deliver a shipment for a different position
    /// than requested, which the replica detects and discards).
    pub pos: u64,
    /// Raw stream bytes; may end mid-record — framing is the replica's
    /// job.
    pub bytes: Vec<u8>,
}

/// How a replica reaches a primary's shipping stream. Implementations
/// must be safe to call from multiple puller threads.
pub trait Transport: Send + Sync {
    /// The stream's durable head.
    fn head(&self) -> relstore::Result<Head>;
    /// Fetch up to `max` bytes starting at `pos`.
    fn fetch(&self, pos: u64, max: usize) -> relstore::Result<Shipment>;
}

/// Loopback transport: reads the shipping stream in-process. The
/// baseline both for tests and for the fault wrapper.
pub struct LocalTransport {
    ship: Arc<ShippingLog>,
}

impl LocalTransport {
    /// A transport serving this shipping stream.
    pub fn new(ship: Arc<ShippingLog>) -> Arc<Self> {
        Arc::new(LocalTransport { ship })
    }
}

impl Transport for LocalTransport {
    fn head(&self) -> relstore::Result<Head> {
        let (pos, commits) = self.ship.head();
        Ok(Head { pos, commits })
    }

    fn fetch(&self, pos: u64, max: usize) -> relstore::Result<Shipment> {
        Ok(Shipment {
            pos,
            bytes: self.ship.read_from(pos, max)?,
        })
    }
}

/// A transport wrapper that damages shipments according to a seeded
/// [`FailChannel`] schedule. Fate-specific behaviour:
///
/// * `Drop` — the fetch errors (shipment lost in transit).
/// * `Duplicate` — delivers a stale shipment from an earlier position,
///   honestly labelled (the replica sees the label mismatch).
/// * `Reorder` — delivers a shipment from a later position than asked.
/// * `Truncate` — a seeded prefix arrives (torn in transit); this is
///   indistinguishable from a small shipment and costs only re-fetch.
/// * `BitFlip` — one seeded bit flips; record CRC framing catches it.
/// * `CorruptPayload` — a page record's payload is rewritten and
///   re-framed with a **valid** CRC: framing passes, content is wrong.
///   Only the divergence checksum chain can catch this, which is why
///   the fate is never drawn randomly (see [`FailChannel`]).
pub struct FaultTransport {
    inner: Arc<dyn Transport>,
    chan: Arc<FailChannel>,
    last_pos: Mutex<u64>,
}

impl FaultTransport {
    /// Wrap `inner` under the channel-fault schedule `chan`.
    pub fn new(inner: Arc<dyn Transport>, chan: Arc<FailChannel>) -> Arc<Self> {
        Arc::new(FaultTransport {
            inner,
            chan,
            last_pos: Mutex::new(0),
        })
    }

    /// Rewrite one framed page record in `bytes` so the damage survives
    /// framing validation: payload bytes change and the record CRC is
    /// recomputed over the new content.
    fn corrupt_payload(&self, bytes: &mut [u8]) {
        let kinds = [WAL_REC_PAGE, WAL_REC_COMMIT, SHIP_REC_CRC];
        let pages: Vec<(usize, u64, Vec<u8>)> = RecordScan::new(bytes, &kinds)
            .filter(|r| r.kind == WAL_REC_PAGE)
            .map(|r| (r.start, r.page_id, r.payload.to_vec()))
            .collect();
        if pages.is_empty() {
            return;
        }
        let (start, page_id, mut payload) =
            pages[self.chan.pick(pages.len() as u64) as usize].clone(); // lint:allow(pick yields an index < pages.len())
        let at = self.chan.pick(payload.len() as u64) as usize;
        payload[at] ^= 0x5A; // lint:allow(pick yields an index < payload.len())
        let rec = encode_record(WAL_REC_PAGE, page_id, &payload);
        // lint:allow(record re-encoded in place: same start, same length,
        // both taken from the RecordScan that found it)
        bytes[start..start + WAL_HEADER_LEN + payload.len()].copy_from_slice(&rec);
    }
}

impl Transport for FaultTransport {
    fn head(&self) -> relstore::Result<Head> {
        self.inner.head()
    }

    fn fetch(&self, pos: u64, max: usize) -> relstore::Result<Shipment> {
        let fate = self.chan.next_fate();
        let prev = {
            let mut last = self.last_pos.lock();
            let p = *last;
            *last = pos;
            p
        };
        match fate {
            ShipmentFate::Deliver => self.inner.fetch(pos, max),
            ShipmentFate::Drop => Err(StoreError::Io(
                "channel: shipment dropped in transit".into(),
            )),
            ShipmentFate::Duplicate => self.inner.fetch(prev.min(pos), max),
            ShipmentFate::Reorder => {
                let skip = self.chan.pick(max as u64 / 2) + 1;
                self.inner.fetch(pos.saturating_add(skip), max)
            }
            ShipmentFate::Truncate => {
                let mut s = self.inner.fetch(pos, max)?;
                let keep = self.chan.truncate_len(s.bytes.len());
                s.bytes.truncate(keep);
                Ok(s)
            }
            ShipmentFate::BitFlip => {
                let mut s = self.inner.fetch(pos, max)?;
                self.chan.flip_bit(&mut s.bytes);
                Ok(s)
            }
            ShipmentFate::CorruptPayload => {
                let mut s = self.inner.fetch(pos, max)?;
                self.corrupt_payload(&mut s.bytes);
                Ok(s)
            }
        }
    }
}

/// Bounded retry with exponential backoff and seeded jitter. A replica
/// gives up after `max_attempts` consecutive transport failures and
/// surfaces [`ReplicaError::Transport`]; its durable position is
/// untouched, so a later pull resumes cleanly.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total fetch attempts per shipment (≥ 1).
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed (xorshift over the attempt counter) so concurrent
    /// replicas don't thunder in lockstep.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(200),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never sleeps — for torture loops where wall-clock
    /// time is wasted time.
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0x5EED,
        }
    }

    /// Backoff before retry number `attempt` (1-based): `base << attempt`
    /// capped at `cap`, scaled by jitter in [50%, 100%].
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        // xorshift64* over (seed, attempt) for deterministic jitter.
        let mut x = self.seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jitter_pct = 50 + (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % 51);
        exp.mul_f64(jitter_pct as f64 / 100.0)
    }

    /// Fetch with bounded retry. Shipments labelled with the wrong
    /// position (duplicated or reordered in transit) count as failures
    /// and are retried like errors.
    pub fn fetch(&self, transport: &Arc<dyn Transport>, pos: u64, max: usize) -> Result<Shipment> {
        let mut last = String::new();
        for attempt in 1..=self.max_attempts.max(1) {
            match transport.fetch(pos, max) {
                Ok(s) if s.pos == pos => return Ok(s),
                Ok(s) => {
                    last = format!("mislabelled shipment: asked {pos}, got {}", s.pos);
                }
                Err(e) => last = format!("{e}"),
            }
            if attempt < self.max_attempts {
                let delay = self.backoff(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
        Err(ReplicaError::Transport {
            attempts: self.max_attempts.max(1),
            last,
        })
    }
}
