//! In-crate tests of the shipping stream, channel faults and replay.
//! The heavyweight kill-mid-replay sweeps live in the workspace-level
//! `tests/replica_torture.rs`.

use crate::{
    last_commit_boundary, mix_crc, FaultTransport, LocalTransport, MemSegments, Primary, Replica,
    ReplicaError, RetryPolicy, ShipMeta, ShippingLog,
};
use relstore::{
    BufferPool, DataType, Database, FailChannel, Field, MemLog, MemPager, Pager, Schema,
    ShipmentFate, StorageKind, Value, WalConfig, WalPager, PAGE_SIZE,
};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("v", DataType::Str),
    ])
}

struct Rig {
    primary: Primary,
    db: Database,
    wal_log: Arc<MemLog>,
    base: Arc<MemPager>,
    segs: Arc<MemSegments>,
}

fn mem_primary() -> Rig {
    let base = Arc::new(MemPager::new());
    let wal_log = Arc::new(MemLog::new());
    let segs = MemSegments::new();
    let primary = Primary::open(
        base.clone(),
        wal_log.clone(),
        segs.clone(),
        WalConfig::with_group_commit(1),
    )
    .unwrap();
    let pool = Arc::new(BufferPool::new(primary.pager(), 256));
    let db = Database::open_pool(pool).unwrap();
    Rig {
        primary,
        db,
        wal_log,
        base,
        segs,
    }
}

fn mem_replica(ship: Arc<ShippingLog>) -> Replica {
    Replica::open(
        Arc::new(MemPager::new()),
        Arc::new(MemLog::new()),
        Arc::new(MemLog::new()),
        LocalTransport::new(ship),
        RetryPolicy::immediate(4),
    )
    .unwrap()
}

fn seed_rows(db: &Database, n: i64) {
    db.create_table("t", schema(), StorageKind::Heap, &[])
        .unwrap();
    db.commit().unwrap();
    for i in 0..n {
        let t = db.table("t").unwrap();
        t.insert(vec![Value::Int(i), Value::Str(format!("row{i}"))])
            .unwrap();
        db.commit().unwrap();
    }
}

fn committed_pages(pager: &dyn Pager, n: u64) -> Vec<[u8; PAGE_SIZE]> {
    (0..n)
        .map(|id| {
            let mut buf = [0u8; PAGE_SIZE];
            pager.read_page(id, &mut buf).unwrap();
            buf
        })
        .collect()
}

fn assert_converged(rig: &Rig, replica: &Replica) {
    let n = rig.primary.pager().num_pages();
    assert_eq!(replica.pager().num_pages(), n, "page counts differ");
    let want = committed_pages(&*rig.primary.pager(), n);
    let got = committed_pages(&*replica.pager(), n);
    for (id, (w, g)) in want.iter().zip(&got).enumerate() {
        assert_eq!(w[..], g[..], "page {id} differs");
    }
}

#[test]
fn meta_codec_roundtrip() {
    let m = ShipMeta {
        total_bytes: 123456,
        commits: 42,
        crc_state: 0xDEAD_BEEF_F00D,
        wal_commits_shipped: 7,
    };
    let enc = m.encode();
    assert_eq!(ShipMeta::decode(&enc).unwrap(), m);
    let mut bad = enc.clone();
    bad[5] ^= 1;
    assert!(ShipMeta::decode(&bad).is_err());
    assert!(ShipMeta::decode(&enc[..enc.len() - 1]).is_err());
}

#[test]
fn position_codec_roundtrip() {
    let pos = crate::Position {
        pos: 9999,
        commits: 17,
        crc_state: 0xABCD,
        quarantined: true,
    };
    let mut log = Vec::new();
    log.extend_from_slice(&pos.encode());
    assert_eq!(crate::read_position(&log), Some(pos));
    // Torn tail falls back to the previous record.
    let newer = crate::Position {
        pos: 12000,
        commits: 18,
        crc_state: 0xEF01,
        quarantined: false,
    };
    let mut torn = log.clone();
    let rec = newer.encode();
    torn.extend_from_slice(&rec[..rec.len() - 3]);
    assert_eq!(crate::read_position(&torn), Some(pos));
    log.extend_from_slice(&rec);
    assert_eq!(crate::read_position(&log), Some(newer));
    assert_eq!(crate::read_position(&[]), None);
}

#[test]
fn commit_boundary_detection() {
    use relstore::{encode_record, WAL_REC_COMMIT, WAL_REC_PAGE};
    let page = encode_record(WAL_REC_PAGE, 0, &[0u8; PAGE_SIZE]);
    let commit = encode_record(WAL_REC_COMMIT, 1, &[]);
    let mut stream = Vec::new();
    assert_eq!(last_commit_boundary(&stream), 0);
    stream.extend_from_slice(&page);
    assert_eq!(last_commit_boundary(&stream), 0);
    stream.extend_from_slice(&commit);
    let first = stream.len();
    assert_eq!(last_commit_boundary(&stream), first);
    stream.extend_from_slice(&page);
    assert_eq!(last_commit_boundary(&stream), first);
}

#[test]
fn mix_crc_is_order_sensitive() {
    let a = mix_crc(mix_crc(0, 1, 10), 2, 20);
    let b = mix_crc(mix_crc(0, 2, 20), 1, 10);
    assert_ne!(a, b);
}

#[test]
fn roundtrip_and_snapshot() {
    let rig = mem_primary();
    seed_rows(&rig.db, 20);
    let replica = mem_replica(rig.primary.ship());
    let commits = replica.catch_up().unwrap();
    assert!(commits >= 21, "expected every commit, got {commits}");
    assert_converged(&rig, &replica);
    assert_eq!(replica.lag().unwrap().commits, 0);

    let snap = replica.begin_snapshot().unwrap();
    assert_eq!(snap.commits(), replica.position().commits);
    let rows = snap.table("t").unwrap().scan().unwrap();
    assert_eq!(rows.len(), 20);
}

#[test]
fn snapshot_survives_further_replay() {
    let rig = mem_primary();
    seed_rows(&rig.db, 5);
    let replica = mem_replica(rig.primary.ship());
    replica.catch_up().unwrap();
    let snap = replica.begin_snapshot().unwrap();
    let before: Vec<_> = snap.table("t").unwrap().scan().unwrap();

    // Primary keeps writing; replica replays and folds underneath the pin.
    for i in 100..160 {
        let t = rig.db.table("t").unwrap();
        t.insert(vec![Value::Int(i), Value::Str(format!("row{i}"))])
            .unwrap();
        rig.db.commit().unwrap();
    }
    replica.catch_up().unwrap();
    replica.checkpoint().unwrap();
    let after: Vec<_> = snap.table("t").unwrap().scan().unwrap();
    assert_eq!(
        format!("{before:?}"),
        format!("{after:?}"),
        "pinned snapshot changed under replay"
    );
    drop(snap);
    let fresh = replica.begin_snapshot().unwrap();
    assert_eq!(fresh.table("t").unwrap().scan().unwrap().len(), 65);
}

#[test]
fn lag_reports_staleness() {
    let rig = mem_primary();
    seed_rows(&rig.db, 3);
    let replica = mem_replica(rig.primary.ship());
    let lag = replica.lag().unwrap();
    assert_eq!(lag.commits, 4);
    assert!(lag.bytes > 0);
    replica.catch_up().unwrap();
    assert_eq!(
        replica.lag().unwrap(),
        crate::Lag {
            commits: 0,
            bytes: 0
        }
    );
}

#[test]
fn transient_channel_faults_converge() {
    for seed in 0..8u64 {
        let rig = mem_primary();
        seed_rows(&rig.db, 25);
        let chan = FailChannel::new(seed);
        chan.set_random_faults(35);
        let transport = FaultTransport::new(LocalTransport::new(rig.primary.ship()), chan);
        let replica = Replica::open(
            Arc::new(MemPager::new()),
            Arc::new(MemLog::new()),
            Arc::new(MemLog::new()),
            transport,
            RetryPolicy::immediate(64),
        )
        .unwrap();
        replica.catch_up().unwrap();
        assert_converged(&rig, &replica);
        assert!(!replica.is_quarantined());
    }
}

#[test]
fn dropped_shipments_exhaust_retry_budget() {
    let rig = mem_primary();
    seed_rows(&rig.db, 2);
    let chan = FailChannel::new(7);
    for n in 1..=4 {
        chan.arm_nth(n, ShipmentFate::Drop);
    }
    let transport = FaultTransport::new(LocalTransport::new(rig.primary.ship()), chan);
    let replica = Replica::open(
        Arc::new(MemPager::new()),
        Arc::new(MemLog::new()),
        Arc::new(MemLog::new()),
        transport,
        RetryPolicy::immediate(3),
    )
    .unwrap();
    match replica.poll() {
        Err(ReplicaError::Transport { attempts, .. }) => assert_eq!(attempts, 3),
        other => panic!("expected transport exhaustion, got {other:?}"),
    }
    // The budget overrun left the replica intact: a later pull succeeds.
    replica.catch_up().unwrap();
    assert_converged(&rig, &replica);
}

#[test]
fn corrupt_payload_quarantines() {
    let rig = mem_primary();
    seed_rows(&rig.db, 10);
    let chan = FailChannel::new(3);
    chan.arm_nth(1, ShipmentFate::CorruptPayload);
    let transport = FaultTransport::new(LocalTransport::new(rig.primary.ship()), chan);
    let replica = Replica::open(
        Arc::new(MemPager::new()),
        Arc::new(MemLog::new()),
        Arc::new(MemLog::new()),
        transport,
        RetryPolicy::immediate(4),
    )
    .unwrap();
    let err = replica.catch_up().unwrap_err();
    match err {
        ReplicaError::Diverged {
            commit,
            expected,
            actual,
        } => {
            assert_ne!(expected, actual);
            assert!(commit >= 1);
        }
        other => panic!("expected divergence, got {other:?}"),
    }
    assert!(replica.is_quarantined());
    assert!(replica.position().quarantined);
    // Applies refuse; the error is stable.
    match replica.poll() {
        Err(ReplicaError::Quarantined) => {}
        other => panic!("expected quarantine refusal, got {other:?}"),
    }
    // The diverged unit was never published: the replica still serves
    // its last verified prefix (possibly empty — commit 1 may be the
    // corrupted one, in which case nothing was replayed).
    let pos = replica.position();
    if pos.commits > 0 {
        let snap = replica.begin_snapshot().unwrap();
        assert!(snap.commits() <= 11);
    }
}

#[test]
fn replica_reopen_resumes_from_position() {
    let rig = mem_primary();
    seed_rows(&rig.db, 12);
    let base = Arc::new(MemPager::new());
    let wal = Arc::new(MemLog::new());
    let posl = Arc::new(MemLog::new());
    {
        let replica = Replica::open(
            base.clone(),
            wal.clone(),
            posl.clone(),
            LocalTransport::new(rig.primary.ship()),
            RetryPolicy::immediate(4),
        )
        .unwrap();
        replica.catch_up().unwrap();
    }
    // More primary traffic while the replica is "down".
    for i in 500..510 {
        let t = rig.db.table("t").unwrap();
        t.insert(vec![Value::Int(i), Value::Str("late".into())])
            .unwrap();
        rig.db.commit().unwrap();
    }
    let replica = Replica::open(
        base,
        wal,
        posl,
        LocalTransport::new(rig.primary.ship()),
        RetryPolicy::immediate(4),
    )
    .unwrap();
    assert!(replica.position().commits > 0, "position survived reopen");
    let caught = replica.catch_up().unwrap();
    assert!(caught >= 10, "only the new commits replay, got {caught}");
    assert_converged(&rig, &replica);
}

#[test]
fn primary_checkpoint_and_restart_reship() {
    let rig = mem_primary();
    seed_rows(&rig.db, 8);
    // Checkpoint truncates the primary WAL; the stream keeps history.
    rig.db.checkpoint().unwrap();
    for i in 200..206 {
        let t = rig.db.table("t").unwrap();
        t.insert(vec![Value::Int(i), Value::Str("post-ckpt".into())])
            .unwrap();
        rig.db.commit().unwrap();
    }
    let head_before = rig.primary.ship().head();

    // Restart the primary over the same devices: reconcile must not
    // re-ship anything already acknowledged (byte-identical stream).
    let Rig {
        primary,
        db,
        wal_log,
        base,
        segs,
    } = rig;
    drop(db);
    drop(primary);
    let primary = Primary::open(
        base.clone(),
        wal_log.clone(),
        segs.clone(),
        WalConfig::with_group_commit(1),
    )
    .unwrap();
    assert_eq!(primary.ship().head(), head_before, "restart re-shipped");
    let pool = Arc::new(BufferPool::new(primary.pager(), 256));
    let db = Database::open_pool(pool).unwrap();
    let rig = Rig {
        primary,
        db,
        wal_log,
        base,
        segs,
    };

    let replica = mem_replica(rig.primary.ship());
    replica.catch_up().unwrap();
    assert_converged(&rig, &replica);
    let snap = replica.begin_snapshot().unwrap();
    assert_eq!(snap.table("t").unwrap().scan().unwrap().len(), 14);
}

#[test]
fn unshipped_wal_tail_reships_on_open() {
    // Simulate a crash window: commits durable in the WAL but never
    // acknowledged into the stream. Build a plain WAL (no tee), then
    // open a Primary over it with an empty stream.
    let base = Arc::new(MemPager::new());
    let wal_log = Arc::new(MemLog::new());
    {
        let pager = Arc::new(
            WalPager::open(
                base.clone(),
                wal_log.clone(),
                WalConfig::with_group_commit(1),
            )
            .unwrap(),
        );
        let db = Database::open_pool(Arc::new(BufferPool::new(pager, 256))).unwrap();
        seed_rows(&db, 6);
    }
    let segs = MemSegments::new();
    let primary = Primary::open(
        base.clone(),
        wal_log.clone(),
        segs.clone(),
        WalConfig::with_group_commit(1),
    )
    .unwrap();
    let (_, commits) = primary.ship().head();
    assert_eq!(commits, 7, "all WAL commits re-shipped");
    let pool = Arc::new(BufferPool::new(primary.pager(), 256));
    let db = Database::open_pool(pool).unwrap();
    let rig = Rig {
        primary,
        db,
        wal_log,
        base,
        segs,
    };
    let replica = mem_replica(rig.primary.ship());
    replica.catch_up().unwrap();
    assert_converged(&rig, &replica);
}

#[test]
fn backoff_is_bounded_and_jittered() {
    let p = RetryPolicy::default();
    for attempt in 1..20 {
        let d = p.backoff(attempt);
        assert!(d <= p.cap, "backoff exceeded cap at attempt {attempt}");
    }
    assert!(p.backoff(1) > std::time::Duration::ZERO);
    assert_eq!(
        RetryPolicy::immediate(3).backoff(5),
        std::time::Duration::ZERO
    );
}
