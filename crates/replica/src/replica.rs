//! The replica: pulls the shipping stream, replays it into its own
//! WAL-backed store, and publishes only at verified commit boundaries.
//!
//! # Replay state machine
//!
//! A commit travels as `PAGE* COMMIT CRC`. The replica stages `PAGE`
//! records into its [`WalPager`] as they arrive (allocating to cover new
//! page ids) and chains each image into its own divergence checksum.
//! Nothing publishes at the `COMMIT` record — the replica waits for the
//! [`SHIP_REC_CRC`] trailer, verifies the primary's chain value against
//! its own, and only then seals + fsyncs the commit and persists its
//! position. Verification *before* publication is the whole point: a
//! silently-corrupted shipment can never become replica state.
//!
//! # Durability and crash windows
//!
//! Three devices, one ordering rule: store WAL durable first, position
//! second. The persisted position is therefore ≤ the store's committed
//! state; after a kill at any write or fsync the store recovers through
//! ordinary WAL replay (uncommitted staging vanishes), the position log
//! yields the last acknowledged boundary, and replay resumes from there.
//! Re-applying commits the store already has is idempotent — full page
//! images converge byte-identically. Losing the position log entirely
//! only means replaying the stream from zero: slow, never wrong.
//!
//! The position log is framed with the same CRC-32 record format as
//! everything else ([`POS_REC`], last valid record wins), so a torn
//! position append is detected and discarded, falling back to the
//! previous record.

use crate::channel::{RetryPolicy, Transport};
use crate::ship::{mix_crc, SHIP_REC_CRC};
use crate::{ReplicaError, Result};
use parking_lot::Mutex;
use relstore::{
    crc32, encode_record, BufferPool, Database, FileLog, FilePager, LogFile, Pager, RecordScan,
    RecoveryStop, SnapshotPager, StoreError, WalConfig, WalPager, WAL_REC_COMMIT, WAL_REC_PAGE,
};
use std::path::Path;
use std::sync::Arc;

/// Position-log record kind: the replica's durable replay cursor.
/// Payload is `pos u64 ++ crc_state u64 ++ flags u64` (little-endian);
/// the record's `page_id` field carries the global commit count.
pub const POS_REC: u8 = 4;

/// Flag bit: the replica has detected divergence and quarantined itself.
const POS_FLAG_QUARANTINED: u64 = 1;

/// Rewrite the position log once it grows past this many bytes (it only
/// ever needs its newest record).
const POS_LOG_REWRITE_BYTES: u64 = 64 * 1024;

/// Default shipment fetch size. Big enough to carry a whole batch-commit
/// unit of page records, small enough that torn-shipment re-fetches are
/// cheap.
const FETCH_BYTES: usize = 512 * 1024;

/// Fold the replica store (checkpoint) every this many published
/// commits, so catch-up from a long stream doesn't grow the replica WAL
/// without bound.
const CHECKPOINT_EVERY: u64 = 256;

/// A replica's durable replay position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// Stream offset of the next unapplied byte (always a commit-unit
    /// boundary).
    pub pos: u64,
    /// Global commits published.
    pub commits: u64,
    /// Divergence checksum chain value at `commits`.
    pub crc_state: u64,
    /// Whether the replica has quarantined itself.
    pub quarantined: bool,
}

impl Position {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut payload = [0u8; 24];
        payload[..8].copy_from_slice(&self.pos.to_le_bytes()); // lint:allow(fixed 24-byte array, constant range)
        payload[8..16].copy_from_slice(&self.crc_state.to_le_bytes()); // lint:allow(fixed 24-byte array, constant range)
        let flags = if self.quarantined {
            POS_FLAG_QUARANTINED
        } else {
            0
        };
        payload[16..].copy_from_slice(&flags.to_le_bytes()); // lint:allow(fixed 24-byte array, constant range)
        encode_record(POS_REC, self.commits, &payload)
    }
}

/// Decode a position log: the last valid [`POS_REC`] record wins; torn
/// or corrupt tails fall back to the previous record. Shared with
/// `archis-fsck`'s cross-store audit.
pub fn read_position(bytes: &[u8]) -> Option<Position> {
    let mut last = None;
    for rec in RecordScan::new(bytes, &[POS_REC]) {
        if rec.payload.len() != 24 {
            continue;
        }
        // lint:allow(payload length is checked == 24 above, so each 8-byte
        // window is in-bounds and the try_into cannot fail)
        let u = |i: usize| u64::from_le_bytes(rec.payload[i * 8..(i + 1) * 8].try_into().unwrap());
        last = Some(Position {
            pos: u(0),
            commits: rec.page_id,
            crc_state: u(1),
            quarantined: u(2) & POS_FLAG_QUARANTINED != 0,
        });
    }
    last
}

/// Staleness of a replica relative to the primary's durable head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lag {
    /// Commits the primary has published that the replica has not.
    pub commits: u64,
    /// Stream bytes not yet applied.
    pub bytes: u64,
}

/// What one [`Replica::poll`] round accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Commits published this round.
    pub commits: u64,
    /// Page images applied this round (including re-staged ones).
    pub pages: u64,
    /// Whether the replica had consumed the primary's entire durable
    /// stream when the round ended.
    pub at_head: bool,
    /// Transient channel faults absorbed (framing damage, mislabelled
    /// or short shipments that forced a re-fetch).
    pub faults: u64,
}

struct RepState {
    /// Durable replay position (mirrors the last position-log record).
    durable: Position,
    /// Volatile cursor: stream offset consumed into the store's staging
    /// area (≥ `durable.pos`, reset to it on reopen).
    cursor: u64,
    /// Checksum chain over staged-but-unpublished page images, seeded
    /// from `durable.crc_state`.
    staged_crc: u64,
    /// Set when the current unit's `WAL_REC_COMMIT` has been seen:
    /// carries the primary's committed page count, awaiting the CRC
    /// trailer.
    staged_commit: Option<u64>,
    /// Bytes received past `cursor` that do not yet form a complete
    /// record.
    tail: Vec<u8>,
    /// Commits published since the last replica checkpoint.
    since_checkpoint: u64,
}

/// A read replica of a shipping primary. See the module docs for the
/// replay state machine and durability contract.
pub struct Replica {
    pager: Arc<WalPager>,
    pos_log: Arc<dyn LogFile>,
    transport: Arc<dyn Transport>,
    retry: RetryPolicy,
    state: Mutex<RepState>,
}

impl Replica {
    /// Open a replica over explicit devices: `base` + `wal_log` form its
    /// store (recovered through ordinary WAL replay), `pos_log` holds
    /// the durable replay position. All three can be fault-wrapped.
    pub fn open(
        base: Arc<dyn Pager>,
        wal_log: Arc<dyn LogFile>,
        pos_log: Arc<dyn LogFile>,
        transport: Arc<dyn Transport>,
        retry: RetryPolicy,
    ) -> Result<Replica> {
        // Publish boundaries must be individually durable — group commit
        // on the replica would let a crash roll back "published" commits
        // past the persisted position.
        let pager = Arc::new(WalPager::open(
            base,
            wal_log,
            WalConfig::with_group_commit(1),
        )?);
        let durable = read_position(&pos_log.read_all()?).unwrap_or_default();
        let staged_crc = durable.crc_state;
        Ok(Replica {
            pager,
            pos_log,
            transport,
            retry,
            state: Mutex::new(RepState {
                durable,
                cursor: durable.pos,
                staged_crc,
                staged_commit: None,
                tail: Vec::new(),
                since_checkpoint: 0,
            }),
        })
    }

    /// Open a file-backed replica: page file at `path`, WAL at
    /// `<path>.wal`, position log at `<path>.pos`.
    pub fn open_file(
        path: impl AsRef<Path>,
        transport: Arc<dyn Transport>,
        retry: RetryPolicy,
    ) -> Result<Replica> {
        let path = path.as_ref();
        let mut wal_path = path.as_os_str().to_os_string();
        wal_path.push(".wal");
        let mut pos_path = path.as_os_str().to_os_string();
        pos_path.push(".pos");
        Replica::open(
            Arc::new(FilePager::open(path)?),
            Arc::new(FileLog::open(wal_path)?),
            Arc::new(FileLog::open(pos_path)?),
            transport,
            retry,
        )
    }

    /// The replica's durable replay position.
    pub fn position(&self) -> Position {
        self.state.lock().durable
    }

    /// Whether the replica is quarantined read-only after a divergence.
    pub fn is_quarantined(&self) -> bool {
        self.state.lock().durable.quarantined
    }

    /// The store pager (for audits and page-level comparison; writes
    /// outside the replay path violate the replica contract).
    pub fn pager(&self) -> Arc<WalPager> {
        self.pager.clone()
    }

    /// Staleness relative to the primary's durable head. Works while
    /// quarantined — lag of a quarantined replica only grows.
    pub fn lag(&self) -> Result<Lag> {
        let head = self.transport.head()?;
        let st = self.state.lock();
        Ok(Lag {
            commits: head.commits.saturating_sub(st.durable.commits),
            bytes: head.pos.saturating_sub(st.durable.pos),
        })
    }

    /// Persist the durable position (store must already be durable).
    fn persist_position(&self, pos: Position) -> Result<()> {
        let rec = pos.encode();
        if self.pos_log.len()? > POS_LOG_REWRITE_BYTES {
            // Compaction note: truncate+append is not atomic. A crash in
            // between loses the position entirely, which replays the
            // stream from zero — slow, never wrong (see module docs).
            self.pos_log.truncate()?;
        }
        self.pos_log.append(&rec)?;
        self.pos_log.sync()?;
        Ok(())
    }

    /// Quarantine durably and report the divergence.
    fn quarantine(
        &self,
        st: &mut RepState,
        commit: u64,
        expected: u64,
        actual: u64,
    ) -> ReplicaError {
        st.durable.quarantined = true;
        // Best-effort persistence: even if the position append crashes,
        // the in-memory flag already refuses further applies, and the
        // diverged unit was never committed to the store.
        if let Err(ReplicaError::Store(e)) = self.persist_position(st.durable) {
            return ReplicaError::Store(e);
        }
        ReplicaError::Diverged {
            commit,
            expected,
            actual,
        }
    }

    /// Apply every complete record currently in the tail. Returns
    /// `(commits, pages, hit_damage)`.
    ///
    /// The volatile cursor advances per fully-processed record, never
    /// past one that failed — so a re-fetch after damage or a store
    /// error resumes exactly at the failed record, and already-staged
    /// page images are neither re-fetched nor re-mixed into the
    /// checksum chain (double-mixing would fake a divergence).
    fn drain_tail(&self, st: &mut RepState) -> Result<(u64, u64, bool)> {
        let mut commits = 0u64;
        let mut pages = 0u64;
        let kinds = [WAL_REC_PAGE, WAL_REC_COMMIT, SHIP_REC_CRC];
        let tail = std::mem::take(&mut st.tail);
        let mut scan = RecordScan::new(&tail, &kinds);
        // Byte offset (into `tail`) of the end of the last record whose
        // side effects fully landed.
        let mut consumed = 0usize;
        let mut damaged = false;
        let mut diverged: Option<(u64, u64, u64)> = None;
        // Restores tail/cursor coherently on every exit path, including
        // `?` store errors (an injected crash mid-apply lands here).
        let settle = |st: &mut RepState, tail: &[u8], consumed: usize, damaged: bool| {
            st.cursor += consumed as u64;
            if damaged {
                // Drop unconsumed damage; a re-fetch from the cursor
                // gets the true stream bytes.
                st.tail.clear();
            } else {
                // lint:allow(consumed is a RecordScan record-end offset,
                // always <= tail.len())
                st.tail = tail[consumed..].to_vec();
            }
        };
        for rec in &mut scan {
            match rec.kind {
                WAL_REC_PAGE => {
                    if rec.payload.len() != relstore::PAGE_SIZE {
                        damaged = true; // framing-valid but impossible
                        break;
                    }
                    let staged = (|| -> relstore::Result<()> {
                        while self.pager.num_pages() <= rec.page_id {
                            self.pager.allocate()?;
                        }
                        // lint:allow(replication replay writes full page
                        // images through the replica's own WalPager, which
                        // stages and WAL-logs them; publication happens at
                        // the verified commit below)
                        self.pager.write_page(rec.page_id, rec.payload)
                    })();
                    if let Err(e) = staged {
                        settle(st, &tail, consumed, false);
                        return Err(e.into());
                    }
                    st.staged_crc = mix_crc(st.staged_crc, rec.page_id, crc32(rec.payload));
                    pages += 1;
                }
                WAL_REC_COMMIT => {
                    st.staged_commit = Some(rec.page_id);
                }
                _ => {
                    // SHIP_REC_CRC: verify the chain, then publish.
                    //
                    // Structural nonsense here (trailer without a commit,
                    // wrong trailer length, commit-number slip) cannot be
                    // transient: a re-fetch re-reads the same immutable
                    // stream bytes and loops forever. It means the stream
                    // content itself is wrong — divergence, quarantine.
                    let want = st.durable.commits + 1;
                    let (Some(target), 16) = (st.staged_commit, rec.payload.len()) else {
                        diverged = Some((want, 0, st.staged_crc));
                        break;
                    };
                    // lint:allow(trailer length matched == 16 in the let-else)
                    let commit = u64::from_le_bytes(rec.payload[..8].try_into().unwrap());
                    // lint:allow(trailer length matched == 16 in the let-else)
                    let expected = u64::from_le_bytes(rec.payload[8..].try_into().unwrap());
                    if commit != want {
                        diverged = Some((want, expected, st.staged_crc));
                        break;
                    }
                    if expected != st.staged_crc {
                        diverged = Some((commit, expected, st.staged_crc));
                        break;
                    }
                    let published = (|| -> relstore::Result<()> {
                        while self.pager.num_pages() < target {
                            self.pager.allocate()?;
                        }
                        self.pager.commit()?;
                        self.pager.sync()
                    })();
                    if let Err(e) = published {
                        settle(st, &tail, consumed, false);
                        return Err(e.into());
                    }
                    // Store durable; now (and only now) acknowledge. A
                    // crash before the position append lands leaves a
                    // stale-low position — idempotent re-apply territory.
                    st.durable = Position {
                        pos: st.cursor + rec.end as u64,
                        commits: commit,
                        crc_state: expected,
                        quarantined: false,
                    };
                    st.staged_commit = None;
                    st.since_checkpoint += 1;
                    commits += 1;
                }
            }
            consumed = rec.end;
        }
        if let Some((commit, expected, actual)) = diverged {
            settle(st, &tail, consumed, true);
            return Err(self.quarantine(st, commit, expected, actual));
        }
        damaged = damaged || scan.stop() != RecoveryStop::CleanEof;
        if consumed < scan.pos() && !damaged {
            // The iterator stopped cleanly past a record we broke on —
            // cannot happen, but never advance past unprocessed records.
            damaged = true;
        }
        settle(st, &tail, consumed, damaged);
        if commits > 0 {
            self.persist_position(st.durable)?;
        }
        // Periodic fold so catch-up doesn't grow the replica WAL without
        // bound. Safe here: we are between units (nothing half-staged —
        // a checkpoint seals staged pages, which must never happen
        // mid-unit).
        if st.since_checkpoint >= CHECKPOINT_EVERY
            && st.staged_commit.is_none()
            && st.staged_crc == st.durable.crc_state
        {
            self.pager.checkpoint()?;
            st.since_checkpoint = 0;
        }
        Ok((commits, pages, damaged))
    }

    /// One pull-and-apply round: fetch from the volatile cursor, apply
    /// complete records, publish verified commits. Returns what happened;
    /// [`Progress::at_head`] signals a fully caught-up replica.
    pub fn poll(&self) -> Result<Progress> {
        let st = &mut *self.state.lock();
        if st.durable.quarantined {
            return Err(ReplicaError::Quarantined);
        }
        let from = st.cursor + st.tail.len() as u64;
        let shipment = self.retry.fetch(&self.transport, from, FETCH_BYTES)?;
        let got = shipment.bytes.len();
        st.tail.extend_from_slice(&shipment.bytes);
        let (commits, pages, damaged) = self.drain_tail(st)?;
        let head = self.transport.head()?;
        Ok(Progress {
            commits,
            pages,
            at_head: !damaged && got == 0 && st.cursor + st.tail.len() as u64 >= head.pos,
            faults: damaged as u64,
        })
    }

    /// Pull until the primary's entire durable stream is applied.
    /// Returns total commits published. Transient faults retry inside;
    /// a fault budget overrun surfaces as [`ReplicaError::Transport`].
    pub fn catch_up(&self) -> Result<u64> {
        let mut total = 0;
        loop {
            let p = self.poll()?;
            total += p.commits;
            if p.at_head {
                return Ok(total);
            }
        }
    }

    /// Fold the replica store into its base file. Only allowed between
    /// units (nothing staged); refused while mid-unit state exists.
    pub fn checkpoint(&self) -> Result<()> {
        let st = &mut *self.state.lock();
        if st.staged_commit.is_some() || st.staged_crc != st.durable.crc_state {
            return Err(ReplicaError::Store(StoreError::Io(
                "replica checkpoint refused: a shipment unit is half-staged".into(),
            )));
        }
        self.pager.checkpoint()?;
        st.since_checkpoint = 0;
        Ok(())
    }

    /// Pin the replica's newest published commit for consistent reads.
    /// Works while quarantined — quarantine stops *applies*, not reads
    /// of the last verified state.
    pub fn begin_snapshot(&self) -> Result<ReplicaSnapshot> {
        let commits = self.state.lock().durable.commits;
        let pager: Arc<dyn Pager> = self.pager.clone();
        let (commit_lsn, num_pages) = pager
            .pin_snapshot()?
            // lint:allow(WalPager::pin_snapshot never returns None; only
            // non-transactional pagers decline snapshots)
            .expect("WalPager is always transactional");
        let snap = Arc::new(SnapshotPager::new(pager, commit_lsn, num_pages));
        if num_pages == 0 {
            return Err(ReplicaError::Store(StoreError::Io(
                "cannot snapshot an empty replica (nothing replayed yet)".into(),
            )));
        }
        let pool = Arc::new(BufferPool::new(snap, 512));
        let db = Database::open_pool(pool)?;
        Ok(ReplicaSnapshot {
            db,
            commit_lsn,
            commits,
        })
    }
}

/// A consistent read view of a replica, frozen at one published commit.
/// Derefs to [`Database`]; stays valid while replay and checkpoints
/// continue underneath (MVCC version retention), and carries its
/// staleness bound so readers know what they are looking at.
pub struct ReplicaSnapshot {
    db: Database,
    commit_lsn: u64,
    commits: u64,
}

impl ReplicaSnapshot {
    /// The replica-local commit LSN this view is frozen at.
    pub fn commit_lsn(&self) -> u64 {
        self.commit_lsn
    }

    /// The global (primary) commit count this view corresponds to — the
    /// explicit staleness bound.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// The frozen database view.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl std::ops::Deref for ReplicaSnapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}
