//! Compressed archived segments (paper §8.2).
//!
//! Archived segments are read-only, so they can be BlockZIPed: for each
//! attribute table, all archived rows — ordered by `sid = (segno, id)`,
//! the paper's "unique sid generated from (segno, id), sorted in the order
//! of segno and id" — are packed into independent ~4000-byte blocks. The
//! blocks are stored as BLOBs in a relational table
//! `<attr>_blob(blockno, part, startseg, startid, endseg, endid, blockblob)`
//! and a range table `<attr>_segrange(segno, startblock, endblock,
//! segstart, segend)` maps each segment to its block range. The live
//! segment stays uncompressed and updatable.
//!
//! Query access decompresses only the touched blocks: a snapshot resolves
//! to one segment and its block range; a single-key lookup binary-searches
//! the block metadata for the `(segno, id)` key.

use crate::archive::{Archiver, SegmentInfo};
use crate::htable::{self, LIVE_SEGNO};
use crate::spec::RelationSpec;
use crate::{ArchError, Result};
use relstore::value::{DataType, Field, Schema, Value};
use relstore::{Database, StorageKind};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use temporal::Date;

/// Decompressed rows of one block, shared between the cache and readers.
type BlockRows = Arc<Vec<Vec<Value>>>;

/// segno → (startblock, endblock inclusive) for one attribute's blob table.
type SegBlockRanges = HashMap<i64, (usize, usize)>;

/// Sharded LRU cache of decompressed blocks, keyed by
/// `(blob_table, blockno)`. Compressed blocks are immutable once written
/// (archived segments never change; incremental compression only appends
/// new block numbers), so entries never need invalidation — only LRU
/// eviction bounds the memory. Sharding keeps the parallel decompression
/// paths from serializing on one lock. The table name is an `Arc<str>`
/// (each `AttrBlocks` owns one) so the hot warm-read path builds its
/// lookup key with a refcount bump, not a per-call `String` allocation.
/// One cache shard: `(blob_table, blockno) -> (lru_tick, decompressed rows)`.
type CacheShard = HashMap<(Arc<str>, usize), (u64, BlockRows)>;

struct BlockCache {
    shards: Vec<parking_lot::Mutex<CacheShard>>,
    per_shard: usize,
    /// Logical clock for LRU ordering.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BlockCache {
    const SHARDS: usize = 8;
    /// Default capacity: 8 shards × 32 blocks ≈ 1 MiB of 4000-byte blocks.
    const PER_SHARD: usize = 32;

    fn new() -> Self {
        BlockCache {
            shards: (0..Self::SHARDS)
                .map(|_| parking_lot::Mutex::new(HashMap::new()))
                .collect(),
            per_shard: Self::PER_SHARD,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, table: &str, blockno: usize) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        table.hash(&mut h);
        blockno.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn get(&self, table: &Arc<str>, blockno: usize) -> Option<BlockRows> {
        let shard = &self.shards[self.shard_of(table, blockno)];
        let mut map = shard.lock();
        match map.get_mut(&(table.clone(), blockno)) {
            Some((stamp, rows)) => {
                *stamp = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rows.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, table: &Arc<str>, blockno: usize, rows: BlockRows) {
        let shard = &self.shards[self.shard_of(table, blockno)];
        let mut map = shard.lock();
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        map.insert((table.clone(), blockno), (stamp, rows));
        while map.len() > self.per_shard {
            // O(per_shard) eviction; capacity is small by design.
            let oldest = map
                .iter()
                .min_by_key(|(_, (s, _))| *s)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => map.remove(&k),
                None => break,
            };
        }
    }

    /// Cold-path allocation reuse: when the shard that will receive
    /// `(table, blockno)` is already full, its LRU entry is doomed the
    /// moment the freshly decoded block is `put`. Evict it *now* instead,
    /// and — if no reader still holds the rows — hand the allocation back
    /// so the decode can fill it in place. Each recycled inner row keeps
    /// its capacity too (values are dropped, buffers are not), which is
    /// what makes single-row cold probes cheap: the steady state is one
    /// block in, one block out, zero net allocation.
    fn take_reusable(&self, table: &Arc<str>, blockno: usize) -> Option<Vec<Vec<Value>>> {
        let shard = &self.shards[self.shard_of(table, blockno)];
        let mut map = shard.lock();
        if map.len() < self.per_shard {
            return None;
        }
        let oldest = map
            .iter()
            .min_by_key(|(_, (s, _))| *s)
            .map(|(k, _)| k.clone())?;
        let (_, rows) = map.remove(&oldest)?;
        let mut rows = Arc::try_unwrap(rows).ok()?;
        for row in rows.iter_mut() {
            row.clear();
        }
        Some(rows)
    }

    fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// Block metadata kept in memory for fast range location (mirrors the
/// `_blob` table's key columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockMeta {
    blockno: usize,
    start_sid: (i64, i64),
    end_sid: (i64, i64),
}

/// How a block read failed (see `CompressedStore::read_block`).
enum BlockFault {
    /// The block's stored bytes are damaged — quarantine and continue.
    Corrupt(String),
    /// Operational failure unrelated to the block's bytes — propagate.
    Fatal(ArchError),
}

/// Per-attribute compressed storage.
struct AttrBlocks {
    blob_table: Arc<str>,
    meta: Vec<BlockMeta>,
    /// segno → (startblock, endblock inclusive).
    segranges: SegBlockRanges,
}

/// The compressed store of one relation's archived history.
pub struct CompressedStore {
    spec: RelationSpec,
    attrs: HashMap<String, AttrBlocks>,
    /// Blocks decompressed since the last reset (benchmark I/O proxy).
    blocks_read: AtomicU64,
    /// LRU of decompressed blocks — warm reruns of Q1–Q6 skip BlockZIP
    /// entirely.
    cache: BlockCache,
    /// Blocks skipped because their stored bytes no longer decode
    /// (checksum-failed pages, truncated BLOB parts, bad BlockZIP frames).
    /// Keyed by `(blob_table, blockno)` so a damaged block warns once per
    /// process while the empty result stays *uncached* — a concurrent MVCC
    /// snapshot reading the same block number resolves its own (possibly
    /// still pristine) pinned bytes instead of inheriting the live view's
    /// damage.
    quarantined: parking_lot::Mutex<HashSet<(Arc<str>, usize)>>,
    /// One human-readable warning per quarantined block, for query-level
    /// loss reporting. Bounded: quarantine is per *corrupt* block, not per
    /// read — each block warns once per process.
    quarantine_log: parking_lot::Mutex<Vec<String>>,
}

impl CompressedStore {
    /// Compress every archived segment of every attribute table of `spec`,
    /// store the blocks as BLOB rows, and **remove the raw archived rows**
    /// (live rows stay). Storage measurements afterwards reflect the
    /// compressed layout.
    pub fn build(
        db: &Database,
        spec: &RelationSpec,
        archiver: &Archiver,
        block_size: usize,
    ) -> Result<CompressedStore> {
        let mut attrs = HashMap::new();
        for (attr, _) in &spec.attrs {
            let tname = htable::attr_table(spec, attr);
            let t = db.table(&tname)?;
            // Archived rows in sid order. After an earlier compression pass
            // the attribute table holds only *newly* archived segments, so
            // repeated calls compress incrementally.
            let mut rows: Vec<Vec<Value>> = t
                .scan()?
                .into_iter()
                .filter(|r| r[0] != Value::Int(LIVE_SEGNO))
                .collect();
            rows.sort_by(|a, b| {
                (a[0].as_int(), a[1].as_int()).cmp(&(b[0].as_int(), b[1].as_int()))
            });
            let records: Vec<Vec<u8>> = rows.iter().map(|r| relstore::encode_row(r)).collect();
            let blocks = blockzip::pack_records(&records, block_size);

            // The BLOB table (paper §8.2). `part` splits oversized blocks
            // across page-sized rows. Reused (appended to) on incremental
            // compression passes.
            let blob_table = format!("{tname}_blob");
            let segrange_table = format!("{tname}_segrange");
            let (mut meta, mut segranges) = if db.has_table(&blob_table) {
                let prev = Self::reattach_inner_attr(db, &blob_table, &segrange_table)?;
                (prev.0, prev.1)
            } else {
                let bt = db.create_table(
                    &blob_table,
                    Schema::new(vec![
                        Field::new("blockno", DataType::Int),
                        Field::new("part", DataType::Int),
                        Field::new("startseg", DataType::Int),
                        Field::new("startid", DataType::Int),
                        Field::new("endseg", DataType::Int),
                        Field::new("endid", DataType::Int),
                        Field::new("blockblob", DataType::Blob),
                    ]),
                    StorageKind::Heap,
                    &[],
                )?;
                bt.create_index(&format!("{blob_table}_by_no"), &["blockno"])?;
                db.create_table(
                    &segrange_table,
                    Schema::new(vec![
                        Field::new("segno", DataType::Int),
                        Field::new("startblock", DataType::Int),
                        Field::new("endblock", DataType::Int),
                        Field::new("segstart", DataType::Date),
                        Field::new("segend", DataType::Date),
                    ]),
                    StorageKind::Heap,
                    &[],
                )?;
                (Vec::new(), HashMap::new())
            };
            let bt = db.table(&blob_table)?;
            let srt = db.table(&segrange_table)?;
            let first_new_block = meta.last().map(|m: &BlockMeta| m.blockno + 1).unwrap_or(0);

            let sid_of = |row: &[Value]| -> (i64, i64) {
                (row[0].as_int().unwrap_or(0), row[1].as_int().unwrap_or(0))
            };
            // One 4000-byte block fits exactly one row on a 4 KiB page
            // (52 bytes of row overhead); only oversized blocks split.
            const PART: usize = 4000;
            let new_meta_start = meta.len();
            let mut blob_rows = Vec::new();
            for (i, b) in blocks.iter().enumerate() {
                let no = first_new_block + i;
                let start_sid = sid_of(&rows[b.first_record]);
                let end_sid = sid_of(&rows[b.last_record]);
                for (part, chunk) in b.data.chunks(PART).enumerate() {
                    blob_rows.push(vec![
                        Value::Int(no as i64),
                        Value::Int(part as i64),
                        Value::Int(start_sid.0),
                        Value::Int(start_sid.1),
                        Value::Int(end_sid.0),
                        Value::Int(end_sid.1),
                        Value::Blob(chunk.to_vec()),
                    ]);
                }
                meta.push(BlockMeta {
                    blockno: no,
                    start_sid,
                    end_sid,
                });
            }
            // One batch: blob pages append heap-sequentially and the
            // blockno index is maintained in a single sorted pass.
            bt.insert_batch(blob_rows)?;

            // Record block ranges for the newly compressed segments.
            let segs = archiver.segments(db, attr)?;
            let new_meta = &meta[new_meta_start..];
            for seg in segs.iter().filter(|s| s.segno != LIVE_SEGNO) {
                if segranges.contains_key(&seg.segno) {
                    continue; // compressed in an earlier pass
                }
                let covering: Vec<usize> = new_meta
                    .iter()
                    .filter(|m| m.start_sid.0 <= seg.segno && m.end_sid.0 >= seg.segno)
                    .map(|m| m.blockno)
                    .collect();
                if let (Some(&lo), Some(&hi)) = (covering.first(), covering.last()) {
                    srt.insert(vec![
                        Value::Int(seg.segno),
                        Value::Int(lo as i64),
                        Value::Int(hi as i64),
                        Value::Date(seg.start),
                        Value::Date(seg.end),
                    ])?;
                    segranges.insert(seg.segno, (lo, hi));
                }
            }

            // Drop the raw archived rows: only the live segment remains
            // uncompressed. A vacuum then reclaims the freed pages so that
            // storage measurements reflect the compressed layout.
            let seg_idx = format!("{tname}_by_seg");
            for seg in segs.iter().filter(|s| s.segno != LIVE_SEGNO) {
                t.delete_via_index(&seg_idx, &[Value::Int(seg.segno)], |_| true)?;
            }
            db.vacuum_table(&tname)?;

            attrs.insert(
                attr.clone(),
                AttrBlocks {
                    blob_table: blob_table.into(),
                    meta,
                    segranges,
                },
            );
        }
        Ok(CompressedStore {
            spec: spec.clone(),
            attrs,
            blocks_read: AtomicU64::new(0),
            cache: BlockCache::new(),
            quarantined: parking_lot::Mutex::new(HashSet::new()),
            quarantine_log: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// Reattach to compressed blob/segrange tables that already exist in a
    /// durable database (the reopen path). Returns `None` when the
    /// relation was never compressed.
    pub fn reattach(db: &Database, spec: &RelationSpec) -> Option<Result<CompressedStore>> {
        let all_present = spec
            .attrs
            .iter()
            .all(|(attr, _)| db.has_table(&format!("{}_blob", htable::attr_table(spec, attr))));
        if !all_present {
            return None;
        }
        Some(Self::reattach_inner(db, spec))
    }

    fn reattach_inner(db: &Database, spec: &RelationSpec) -> Result<CompressedStore> {
        let mut attrs = HashMap::new();
        for (attr, _) in &spec.attrs {
            let tname = htable::attr_table(spec, attr);
            let blob_table = format!("{tname}_blob");
            let segrange_table = format!("{tname}_segrange");
            let (meta, segranges) = Self::reattach_inner_attr(db, &blob_table, &segrange_table)?;
            attrs.insert(
                attr.clone(),
                AttrBlocks {
                    blob_table: blob_table.into(),
                    meta,
                    segranges,
                },
            );
        }
        Ok(CompressedStore {
            spec: spec.clone(),
            attrs,
            blocks_read: AtomicU64::new(0),
            cache: BlockCache::new(),
            quarantined: parking_lot::Mutex::new(HashSet::new()),
            quarantine_log: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// Block metadata + segment ranges of one attribute's existing blob /
    /// segrange tables.
    fn reattach_inner_attr(
        db: &Database,
        blob_table: &str,
        segrange_table: &str,
    ) -> Result<(Vec<BlockMeta>, SegBlockRanges)> {
        let mut by_block: HashMap<usize, BlockMeta> = HashMap::new();
        for r in db.table(blob_table)?.scan()? {
            let (Some(no), Some(ss), Some(si), Some(es), Some(ei)) = (
                r[0].as_int(),
                r[2].as_int(),
                r[3].as_int(),
                r[4].as_int(),
                r[5].as_int(),
            ) else {
                continue;
            };
            by_block.insert(
                no as usize,
                BlockMeta {
                    blockno: no as usize,
                    start_sid: (ss, si),
                    end_sid: (es, ei),
                },
            );
        }
        let mut meta: Vec<BlockMeta> = by_block.into_values().collect();
        meta.sort_by_key(|m| m.blockno);
        let mut segranges = HashMap::new();
        if db.has_table(segrange_table) {
            for r in db.table(segrange_table)?.scan()? {
                if let (Some(segno), Some(lo), Some(hi)) =
                    (r[0].as_int(), r[1].as_int(), r[2].as_int())
                {
                    segranges.insert(segno, (lo as usize, hi as usize));
                }
            }
        }
        Ok((meta, segranges))
    }

    /// Total number of compressed blocks across attributes.
    pub fn block_count(&self) -> usize {
        self.attrs.values().map(|a| a.meta.len()).sum()
    }

    /// Blocks decompressed since the last [`CompressedStore::reset_stats`].
    /// Cache hits do not count — this is the number of real BlockZIP
    /// unpacks.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read.load(Ordering::Relaxed)
    }

    /// Block-cache `(hits, misses)` since the last
    /// [`CompressedStore::reset_stats`].
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Blocks quarantined as unreadable since this store was opened. Any
    /// nonzero value means query results are missing the rows of that many
    /// blocks — real data loss that only a backup can undo.
    pub fn quarantined_blocks(&self) -> u64 {
        self.quarantined.lock().len() as u64
    }

    /// Drain the accumulated quarantine warnings (one per damaged block).
    pub fn take_quarantine_warnings(&self) -> Vec<String> {
        std::mem::take(&mut *self.quarantine_log.lock())
    }

    /// Reset the decompression and cache counters (cached blocks stay
    /// cached).
    pub fn reset_stats(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
        self.cache.reset();
    }

    /// Evict every cached decompressed block (counters are untouched).
    /// Benchmarks call this before a cold run so block decompression is
    /// part of the measurement again.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    fn attr(&self, attr: &str) -> Result<&AttrBlocks> {
        self.attrs
            .get(attr)
            .ok_or_else(|| ArchError::NotFound(format!("compressed attribute {attr}")))
    }

    /// One block's rows: served from the LRU cache when warm, otherwise
    /// decompressed (the paper's "user-defined uncompression table
    /// function") and cached.
    ///
    /// A block whose stored bytes no longer decode is **quarantined**, not
    /// fatal: archived blocks are immutable, so a decode failure means
    /// silent media corruption, and one rotten block must not take down a
    /// whole snapshot query. The block contributes no rows, the loss is
    /// counted ([`CompressedStore::quarantined_blocks`]) and logged
    /// ([`CompressedStore::take_quarantine_warnings`]) — once per damaged
    /// block, not per query. The empty result is deliberately *not*
    /// cached: the same store serves both the live database and pinned
    /// MVCC snapshot views, and a snapshot whose pinned pages predate the
    /// damage must keep decoding its own (pristine) bytes instead of
    /// inheriting the live view's loss from the cache.
    fn read_block(&self, db: &Database, ab: &AttrBlocks, blockno: usize) -> Result<BlockRows> {
        if let Some(rows) = self.cache.get(&ab.blob_table, blockno) {
            return Ok(rows);
        }
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
        let reuse = self.cache.take_reusable(&ab.blob_table, blockno);
        match self.decode_block(db, ab, blockno, reuse) {
            Ok(rows) => {
                self.cache.put(&ab.blob_table, blockno, rows.clone());
                Ok(rows)
            }
            Err(BlockFault::Corrupt(why)) => {
                if self
                    .quarantined
                    .lock()
                    .insert((ab.blob_table.clone(), blockno))
                {
                    self.quarantine_log.lock().push(format!(
                        "{} block {blockno} quarantined: {why}",
                        ab.blob_table
                    ));
                }
                Ok(Arc::new(Vec::new()))
            }
            Err(BlockFault::Fatal(e)) => Err(e),
        }
    }

    /// Decompress one block, classifying failures: data-level rot (bad
    /// page checksum, truncated BLOB, bad BlockZIP frame, undecodable row)
    /// is [`BlockFault::Corrupt`]; everything else (missing table, I/O)
    /// stays fatal.
    ///
    /// `reuse` is a recycled cache entry from [`BlockCache::take_reusable`]
    /// whose row buffers are refilled in place ([`relstore::decode_row_into`]),
    /// so a cold single-row probe replaces — rather than adds — allocations.
    fn decode_block(
        &self,
        db: &Database,
        ab: &AttrBlocks,
        blockno: usize,
        reuse: Option<Vec<Vec<Value>>>,
    ) -> std::result::Result<BlockRows, BlockFault> {
        let store_fault = |e: relstore::StoreError| {
            if e.is_corrupt() {
                BlockFault::Corrupt(e.to_string())
            } else {
                BlockFault::Fatal(e.into())
            }
        };
        let bt = db.table(&ab.blob_table).map_err(store_fault)?;
        let mut parts: Vec<(i64, Vec<u8>)> = bt
            .index_lookup(
                &format!("{}_by_no", ab.blob_table),
                &[Value::Int(blockno as i64)],
            )
            .map_err(store_fault)?
            .into_iter()
            .filter_map(|r| match (&r[1], &r[6]) {
                (Value::Int(p), Value::Blob(b)) => Some((*p, b.clone())),
                _ => None,
            })
            .collect();
        parts.sort_by_key(|(p, _)| *p);
        let data: Vec<u8> = parts.into_iter().flat_map(|(_, b)| b).collect();
        let records =
            blockzip::unpack_records(&data).map_err(|e| BlockFault::Corrupt(e.to_string()))?;
        let mut rows = reuse.unwrap_or_default();
        rows.truncate(records.len());
        rows.resize_with(records.len(), Vec::new);
        for (rec, row) in records.iter().zip(rows.iter_mut()) {
            relstore::decode_row_into(rec, row).map_err(store_fault)?;
        }
        Ok(Arc::new(rows))
    }

    /// Read many blocks, fanning decompression out across threads when
    /// [`relstore::parallel`] scans are enabled (every independent block is
    /// its own unit of work, paper §8.2). Results come back in `blocknos`
    /// order, so callers behave identically with parallelism on or off.
    fn read_blocks(
        &self,
        db: &Database,
        ab: &AttrBlocks,
        blocknos: &[usize],
    ) -> Result<Vec<BlockRows>> {
        const MIN_PARALLEL: usize = 4;
        if blocknos.len() < MIN_PARALLEL || !relstore::parallel::parallel_scans_enabled() {
            return blocknos
                .iter()
                .map(|&no| self.read_block(db, ab, no))
                .collect();
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8)
            .min(blocknos.len());
        let chunk = blocknos.len().div_ceil(threads);
        let results: Vec<Result<Vec<BlockRows>>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = blocknos
                .chunks(chunk)
                .map(|nos| {
                    s.spawn(move |_| nos.iter().map(|&no| self.read_block(db, ab, no)).collect())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("block reader panicked"))
                .collect()
        })
        .expect("crossbeam scope");
        let mut out = Vec::with_capacity(blocknos.len());
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }

    /// All archived rows of one segment of an attribute (decompresses only
    /// that segment's block range).
    pub fn scan_segment(&self, db: &Database, attr: &str, segno: i64) -> Result<Vec<Vec<Value>>> {
        let ab = self.attr(attr)?;
        let Some(&(lo, hi)) = ab.segranges.get(&segno) else {
            return Ok(Vec::new());
        };
        let blocknos: Vec<usize> = (lo..=hi).collect();
        let mut out = Vec::new();
        for rows in self.read_blocks(db, ab, &blocknos)? {
            out.extend(
                rows.iter()
                    .filter(|row| row[0] == Value::Int(segno))
                    .cloned(),
            );
        }
        Ok(out)
    }

    /// The archived rows of one key within one segment (binary search over
    /// the block metadata, then a single block decompression in the common
    /// case).
    pub fn lookup(
        &self,
        db: &Database,
        attr: &str,
        segno: i64,
        id: i64,
    ) -> Result<Vec<Vec<Value>>> {
        let ab = self.attr(attr)?;
        let sid = (segno, id);
        // Blocks are sorted by start_sid; find candidates via partition.
        let start = ab.meta.partition_point(|m| m.end_sid < sid);
        let blocknos: Vec<usize> = ab.meta[start..]
            .iter()
            .take_while(|m| m.start_sid <= sid)
            .map(|m| m.blockno)
            .collect();
        let mut out = Vec::new();
        for rows in self.read_blocks(db, ab, &blocknos)? {
            out.extend(
                rows.iter()
                    .filter(|row| row[0] == Value::Int(segno) && row[1] == Value::Int(id))
                    .cloned(),
            );
        }
        Ok(out)
    }

    /// Every archived row of an attribute (decompresses everything — the
    /// history-query path).
    pub fn scan_all(&self, db: &Database, attr: &str) -> Result<Vec<Vec<Value>>> {
        let ab = self.attr(attr)?;
        let blocknos: Vec<usize> = ab.meta.iter().map(|m| m.blockno).collect();
        let mut out = Vec::new();
        for rows in self.read_blocks(db, ab, &blocknos)? {
            out.extend(rows.iter().cloned());
        }
        Ok(out)
    }

    /// Archived segment infos recorded in the segrange table.
    pub fn segment_ranges(&self, attr: &str) -> Result<Vec<(i64, usize, usize)>> {
        let ab = self.attr(attr)?;
        let mut out: Vec<(i64, usize, usize)> = ab
            .segranges
            .iter()
            .map(|(&s, &(lo, hi))| (s, lo, hi))
            .collect();
        out.sort();
        Ok(out)
    }

    /// The relation this store belongs to.
    pub fn spec(&self) -> &RelationSpec {
        &self.spec
    }

    /// Rows of the (uncompressed) live segment of an attribute.
    pub fn live_rows(&self, db: &Database, attr: &str) -> Result<Vec<Vec<Value>>> {
        let tname = htable::attr_table(&self.spec, attr);
        let t = db.table(&tname)?;
        Ok(t.index_lookup(&format!("{tname}_by_seg"), &[Value::Int(LIVE_SEGNO)])?)
    }

    /// Find the archived segment covering `date`, if any, using the
    /// archiver's segment catalog.
    pub fn covering_segment(segs: &[SegmentInfo], date: Date) -> Option<i64> {
        segs.iter()
            .filter(|s| s.segno != LIVE_SEGNO)
            .find(|s| s.start <= date && date <= s.end)
            .map(|s| s.segno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::SegmentInfo;

    fn seg(segno: i64, s: &str, e: &str) -> SegmentInfo {
        SegmentInfo {
            segno,
            start: Date::parse(s).unwrap(),
            end: Date::parse(e).unwrap(),
        }
    }

    #[test]
    fn covering_segment_picks_the_right_one() {
        let segs = vec![
            seg(1, "1990-01-01", "1992-06-30"),
            seg(2, "1992-07-01", "1995-12-31"),
            seg(LIVE_SEGNO, "1996-01-01", "9999-12-31"),
        ];
        let d = |s: &str| Date::parse(s).unwrap();
        assert_eq!(
            CompressedStore::covering_segment(&segs, d("1991-05-01")),
            Some(1)
        );
        assert_eq!(
            CompressedStore::covering_segment(&segs, d("1992-07-01")),
            Some(2)
        );
        assert_eq!(
            CompressedStore::covering_segment(&segs, d("1995-12-31")),
            Some(2)
        );
        // Live dates are not covered by any archived segment.
        assert_eq!(
            CompressedStore::covering_segment(&segs, d("1997-01-01")),
            None
        );
        assert_eq!(
            CompressedStore::covering_segment(&segs, d("1989-01-01")),
            None
        );
    }

    #[test]
    fn reattach_returns_none_without_blob_tables() {
        let db = Database::in_memory();
        let spec = crate::spec::RelationSpec::employee();
        assert!(CompressedStore::reattach(&db, &spec).is_none());
    }
}
