//! The paper's benchmark queries (Table 3) in every execution form.
//!
//! | id | class | query |
//! |----|-------|-------|
//! | Q1 | snapshot, single object | salary of one employee on a date |
//! | Q2 | snapshot | average salary on a date |
//! | Q3 | history, single object | salary history of one employee |
//! | Q4 | history | total number of salary changes |
//! | Q5 | temporal slicing | employees with salary > K in a window |
//! | Q6 | temporal join | max salary increase in a window |
//!
//! Each query exists as (a) an **XQuery string** — run natively by the
//! `xmldb` crate (the Tamino path) or translated to SQL/XML by
//! [`crate::Translator`] and executed on the H-tables (the ArchIS path) —
//! and (b) a **compressed-path implementation** over
//! [`crate::CompressedStore`] (the paper's §8.3 table-function path; Q6
//! is the hand-optimized single-scan aggregate the paper mentions).

use crate::compressed::CompressedStore;
use crate::planner::{self, SegAccess, SegmentPlan};
use crate::{ArchIS, Result};
use relstore::value::Value;
use std::collections::{HashMap, HashSet};
use temporal::{Date, Interval};

/// Q1: the salary of employee `id` on `date`.
pub fn q1_xquery(id: i64, date: Date) -> String {
    format!(
        r#"for $s in doc("employees.xml")/employees/employee[id = {id}]/salary
               [tstart(.) <= xs:date("{date}") and tend(.) >= xs:date("{date}")]
           return $s"#
    )
}

/// Q2: the average salary of all employees on `date`.
pub fn q2_xquery(date: Date) -> String {
    format!(
        r#"avg(for $s in doc("employees.xml")/employees/employee/salary
               [tstart(.) <= xs:date("{date}") and tend(.) >= xs:date("{date}")]
           return number($s))"#
    )
}

/// Q3: the full salary history of employee `id`.
pub fn q3_xquery(id: i64) -> String {
    format!(
        r#"for $s in doc("employees.xml")/employees/employee[id = {id}]/salary
           return $s"#
    )
}

/// Q4: the total number of salary periods (salary changes).
pub fn q4_xquery() -> String {
    r#"count(for $s in doc("employees.xml")/employees/employee/salary
             return $s)"#
        .to_string()
}

/// Q5: how many employees earned more than `threshold` at some time in
/// `[d1, d2]`.
pub fn q5_xquery(threshold: i64, d1: Date, d2: Date) -> String {
    format!(
        r#"count(distinct-values(
               for $e in doc("employees.xml")/employees/employee
               for $s in $e/salary[. > {threshold} and
                   toverlaps(., telement(xs:date("{d1}"), xs:date("{d2}")))]
               return $e/id))"#
    )
}

/// Q6: the maximum salary increase between consecutive salary periods
/// that start inside `[d1, d2]`.
pub fn q6_xquery(d1: Date, d2: Date) -> String {
    format!(
        r#"max(for $e in doc("employees.xml")/employees/employee
               for $s1 in $e/salary[toverlaps(., telement(xs:date("{d1}"), xs:date("{d2}")))]
               for $s2 in $e/salary[tmeets($s1, .)]
               return number($s2) - number($s1))"#
    )
}

// ---------------------------------------------------------------------------
// Compressed-path implementations (paper §8.3)
// ---------------------------------------------------------------------------

fn decode_salary_row(row: &[Value]) -> Option<(i64, i64, Interval)> {
    let id = row[1].as_int()?;
    let sal = row[2].as_int()?;
    let iv = Interval::new(row[3].as_date()?, row[4].as_date()?).ok()?;
    Some((id, sal, iv))
}

/// Fetch the rows a [`SegmentPlan`] selects: probe or scan each archived
/// segment, then the live segment. The key filter is re-applied to every
/// access path so forced paths return byte-identical row sets.
fn rows_for_plan(
    archis: &ArchIS,
    store: &CompressedStore,
    attr: &str,
    plan: &SegmentPlan,
    key: Option<i64>,
) -> Result<Vec<Vec<Value>>> {
    let db = archis.database();
    let mut out = Vec::new();
    for &segno in &plan.segnos {
        let rows = match (plan.access, key) {
            (SegAccess::Probe, Some(k)) => store.lookup(db, attr, segno, k)?,
            _ => store.scan_segment(db, attr, segno)?,
        };
        out.extend(rows);
    }
    if plan.live {
        out.extend(store.live_rows(db, attr)?);
    }
    if let Some(k) = key {
        out.retain(|r| r[1] == Value::Int(k));
    }
    Ok(out)
}

/// Rows of the salary attribute valid on `date`: one segment's blocks (or
/// the live segment) only — possibly none at all when the statistics
/// prove the covering segment holds no row alive on `date`.
fn salary_rows_at(
    archis: &ArchIS,
    store: &CompressedStore,
    date: Date,
) -> Result<Vec<(i64, i64, Interval)>> {
    let plan = planner::plan_snapshot(archis, "employee", "salary", date, None)?;
    let rows = rows_for_plan(archis, store, "salary", &plan, None)?;
    Ok(rows
        .iter()
        .filter_map(|r| decode_salary_row(r))
        .filter(|(_, _, iv)| iv.contains_date(date))
        .collect())
}

/// Q1 on the compressed store.
pub fn q1_compressed(
    archis: &ArchIS,
    store: &CompressedStore,
    id: i64,
    date: Date,
) -> Result<Option<i64>> {
    let plan = planner::plan_snapshot(archis, "employee", "salary", date, Some(id))?;
    let rows = rows_for_plan(archis, store, "salary", &plan, Some(id))?;
    Ok(rows
        .iter()
        .filter_map(|r| decode_salary_row(r))
        .find(|(rid, _, iv)| *rid == id && iv.contains_date(date))
        .map(|(_, sal, _)| sal))
}

/// Q2 on the compressed store.
pub fn q2_compressed(archis: &ArchIS, store: &CompressedStore, date: Date) -> Result<f64> {
    let rows = salary_rows_at(archis, store, date)?;
    if rows.is_empty() {
        return Ok(0.0);
    }
    Ok(rows.iter().map(|(_, s, _)| *s as f64).sum::<f64>() / rows.len() as f64)
}

/// Q3 on the compressed store: salary history of one employee
/// (deduplicated across segments).
pub fn q3_compressed(
    archis: &ArchIS,
    store: &CompressedStore,
    id: i64,
) -> Result<Vec<(i64, Interval)>> {
    let plan = planner::plan_history(archis, "employee", "salary", Some(id))?;
    let mut dedup: HashMap<Date, (i64, Date)> = HashMap::new();
    for row in rows_for_plan(archis, store, "salary", &plan, Some(id))? {
        if let Some((_, sal, iv)) = decode_salary_row(&row) {
            let e = dedup.entry(iv.start()).or_insert((sal, iv.end()));
            if iv.end() < e.1 {
                *e = (sal, iv.end());
            }
        }
    }
    let mut out: Vec<(i64, Interval)> = dedup
        .into_iter()
        .filter_map(|(s, (sal, e))| Interval::new(s, e).ok().map(|iv| (sal, iv)))
        .collect();
    out.sort_by_key(|(_, iv)| iv.start());
    Ok(out)
}

/// All distinct salary periods `(id, salary, interval)` across segments.
fn all_salary_periods(
    archis: &ArchIS,
    store: &CompressedStore,
) -> Result<Vec<(i64, i64, Interval)>> {
    let db = archis.database();
    // The plan always selects every archived segment (an unbounded
    // history cannot be pruned); `scan_all` reads the identical block
    // range in one pass instead of per-segment.
    let plan = planner::plan_history(archis, "employee", "salary", None)?;
    let live = if plan.live {
        store.live_rows(db, "salary")?
    } else {
        Vec::new()
    };
    let mut dedup: HashMap<(i64, Date), (i64, Date)> = HashMap::new();
    for row in store.scan_all(db, "salary")?.iter().chain(live.iter()) {
        if let Some((id, sal, iv)) = decode_salary_row(row) {
            let e = dedup.entry((id, iv.start())).or_insert((sal, iv.end()));
            if iv.end() < e.1 {
                *e = (sal, iv.end());
            }
        }
    }
    let mut out: Vec<(i64, i64, Interval)> = dedup
        .into_iter()
        .filter_map(|((id, s), (sal, e))| Interval::new(s, e).ok().map(|iv| (id, sal, iv)))
        .collect();
    out.sort_by_key(|(id, _, iv)| (*id, iv.start()));
    Ok(out)
}

/// Q4 on the compressed store.
pub fn q4_compressed(archis: &ArchIS, store: &CompressedStore) -> Result<usize> {
    Ok(all_salary_periods(archis, store)?.len())
}

/// Q5 on the compressed store: touched segments' blocks only.
pub fn q5_compressed(
    archis: &ArchIS,
    store: &CompressedStore,
    threshold: i64,
    d1: Date,
    d2: Date,
) -> Result<usize> {
    let window = Interval::new(d1, d2).map_err(|e| crate::ArchError::BadUpdate(e.to_string()))?;
    // Which segments to decompress — and whether the live segment can
    // contribute at all — is the planner's call (stats-pruned unless
    // `ARCHIS_FORCE_PATH=rule`).
    let plan = planner::plan_window(archis, "employee", "salary", d1, d2)?;
    let db = archis.database();
    let mut ids: HashSet<i64> = HashSet::new();
    let mut consider = |rows: Vec<Vec<Value>>| {
        for row in rows {
            if let Some((id, sal, iv)) = decode_salary_row(&row) {
                if sal > threshold && iv.overlaps(&window) {
                    ids.insert(id);
                }
            }
        }
    };
    // Segments are independent blobs, so selected ones can be unzipped
    // and scanned concurrently; folding the per-segment row sets in segno
    // order keeps the result identical to the sequential loop.
    if plan.segnos.len() >= 2 && relstore::parallel::parallel_scans_enabled() {
        let scans: Vec<Result<Vec<Vec<Value>>>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = plan
                .segnos
                .iter()
                .map(|&segno| s.spawn(move |_| store.scan_segment(db, "salary", segno)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("segment scan thread panicked"))
                .collect()
        })
        .expect("scoped segment scan threads");
        for rows in scans {
            consider(rows?);
        }
    } else {
        for &segno in &plan.segnos {
            consider(store.scan_segment(db, "salary", segno)?);
        }
    }
    if plan.live {
        consider(store.live_rows(db, "salary")?);
    }
    Ok(ids.len())
}

/// Q6 on the compressed store: the paper's one-scan user-defined
/// aggregate — consecutive periods are adjacent after the (id, tstart)
/// sort, so one pass suffices.
pub fn q6_compressed(
    archis: &ArchIS,
    store: &CompressedStore,
    d1: Date,
    d2: Date,
) -> Result<Option<i64>> {
    let window = Interval::new(d1, d2).map_err(|e| crate::ArchError::BadUpdate(e.to_string()))?;
    let periods = all_salary_periods(archis, store)?;
    let mut best: Option<i64> = None;
    for w in periods.windows(2) {
        let (id1, s1, iv1) = &w[0];
        let (id2, s2, iv2) = &w[1];
        if id1 == id2 && iv1.meets(iv2) && iv1.overlaps(&window) {
            let raise = s2 - s1;
            if best.is_none_or(|b| raise > b) {
                best = Some(raise);
            }
        }
    }
    Ok(best)
}

/// The §7.1 baseline: Q2 evaluated directly on the *current* table
/// (the paper reports the history snapshot runs ~27% slower than this).
pub fn q2_current(archis: &ArchIS) -> Result<f64> {
    let out = archis.execute_sql("select avg(e.salary) from employee e")?;
    let rows = out.scalar_rows().map_err(crate::ArchError::from)?;
    Ok(rows[0][0].as_f64().unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArchConfig, RelationSpec};

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    /// Three employees with raises; archived twice, then compressed.
    fn setup() -> ArchIS {
        let mut a = ArchIS::new(ArchConfig::default());
        a.create_relation(RelationSpec::employee()).unwrap();
        for (id, name, start, sal) in [
            (100001i64, "Bob", "1990-01-01", 50_000i64),
            (100002, "Alice", "1990-06-01", 60_000),
            (100003, "Carol", "1991-01-01", 40_000),
        ] {
            a.insert(
                "employee",
                id,
                vec![
                    ("name".into(), Value::Str(name.into())),
                    ("salary".into(), Value::Int(sal)),
                    ("title".into(), Value::Str("Engineer".into())),
                    ("deptno".into(), Value::Str("d01".into())),
                ],
                d(start),
            )
            .unwrap();
        }
        // Yearly raises 1992-1999 for everyone.
        for year in 1992..2000 {
            for (i, id) in [100001i64, 100002, 100003].iter().enumerate() {
                a.update(
                    "employee",
                    *id,
                    vec![(
                        "salary".into(),
                        Value::Int(40_000 + (year - 1990) as i64 * 2_000 + i as i64 * 5_000),
                    )],
                    d(&format!("{year}-02-01")),
                )
                .unwrap();
            }
            if year == 1995 {
                a.force_archive("employee", d("1995-12-31")).unwrap();
            }
        }
        a.force_archive("employee", d("1999-12-31")).unwrap();
        a
    }

    #[test]
    fn sql_and_compressed_paths_agree() {
        let mut a = setup();
        // SQL-path answers first (pre-compression).
        let q1_sql = a.query(&q1_xquery(100001, d("1994-06-01"))).unwrap();
        let q2_sql = a
            .execute_sql(&a.translate(&q2_xquery(d("1994-06-01"))).unwrap())
            .unwrap()
            .scalar_rows()
            .unwrap()[0][0]
            .as_f64()
            .unwrap();
        let q4_sql = a.query(&q4_xquery()).unwrap().scalar_rows().unwrap()[0][0]
            .as_int()
            .unwrap();
        let q5_sql = a
            .query(&q5_xquery(45_000, d("1993-01-01"), d("1995-01-01")))
            .unwrap()
            .scalar_rows()
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        let q6_sql = a
            .query(&q6_xquery(d("1993-01-01"), d("1995-01-01")))
            .unwrap()
            .scalar_rows()
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        // Compress, then compare every compressed-path answer.
        a.compress_archived("employee").unwrap();
        let store = a.compressed_store("employee").unwrap();
        // Q1: 1994 salary of Bob = 40000 + 4*2000 = 48000.
        assert_eq!(
            q1_compressed(&a, store, 100001, d("1994-06-01")).unwrap(),
            Some(48_000)
        );
        assert!(q1_sql.xml_fragments().join("").contains("48000"));
        let q2c = q2_compressed(&a, store, d("1994-06-01")).unwrap();
        assert!((q2c - q2_sql).abs() < 1e-9, "Q2: {q2c} vs {q2_sql}");
        let hist = q3_compressed(&a, store, 100001).unwrap();
        assert_eq!(hist.len(), 9, "initial + 8 raises");
        assert_eq!(q4_compressed(&a, store).unwrap() as i64, q4_sql);
        assert_eq!(
            q5_compressed(&a, store, 45_000, d("1993-01-01"), d("1995-01-01")).unwrap() as i64,
            q5_sql
        );
        assert_eq!(
            q6_compressed(&a, store, d("1993-01-01"), d("1995-01-01")).unwrap(),
            Some(q6_sql)
        );
    }

    #[test]
    fn compressed_snapshot_touches_few_blocks() {
        let mut a = setup();
        a.compress_archived("employee").unwrap();
        let store = a.compressed_store("employee").unwrap();
        // Blocks *touched* = cache hits + misses; `blocks_read` alone only
        // counts real decompressions, which the block cache elides on
        // reruns.
        let touched = |s: &crate::CompressedStore| {
            let (h, m) = s.cache_stats();
            h + m
        };
        store.reset_stats();
        q1_compressed(&a, store, 100001, d("1994-06-01")).unwrap();
        let point = touched(store);
        store.reset_stats();
        q4_compressed(&a, store).unwrap();
        let full = touched(store);
        assert!(
            point <= full,
            "single-object snapshot ({point} blocks) must not exceed a full scan ({full})"
        );
        // A warm rerun of the full scan is served from the cache.
        store.reset_stats();
        q4_compressed(&a, store).unwrap();
        let (hits, misses) = store.cache_stats();
        assert!(hits > 0, "warm rerun must hit the block cache");
        assert_eq!(misses, 0, "warm rerun must not decompress anything");
        assert_eq!(store.blocks_read(), 0);
    }

    #[test]
    fn q2_current_matches_live_average() {
        let a = setup();
        // Last raises in 1999: 58000, 63000, 68000 → avg 63000.
        assert!((q2_current(&a).unwrap() - 63_000.0).abs() < 1e-9);
    }

    /// Fanning segment scans across threads must be invisible in results:
    /// Q2/Q5-class queries (multi-segment SQL range scans and compressed
    /// segment scans) answer identically with parallelism on and off.
    #[test]
    fn parallel_and_serial_scans_agree() {
        let mut a = setup();
        a.compress_archived("employee").unwrap();
        let run = |a: &mut ArchIS| {
            let q2 = a
                .execute_sql(&a.translate(&q2_xquery(d("1994-06-01"))).unwrap())
                .unwrap()
                .scalar_rows()
                .unwrap()[0][0]
                .as_f64()
                .unwrap();
            let q5_sql = a
                .query(&q5_xquery(45_000, d("1993-01-01"), d("1999-06-01")))
                .unwrap()
                .scalar_rows()
                .unwrap()[0][0]
                .as_int()
                .unwrap();
            let store = a.compressed_store("employee").unwrap();
            let q5c = q5_compressed(a, store, 45_000, d("1993-01-01"), d("1999-06-01")).unwrap();
            // Every compressed variant decompresses blocks through the
            // parallel fan-out; all must be invariant under the flag.
            let q1c = q1_compressed(a, store, 100001, d("1994-06-01")).unwrap();
            let q2c = q2_compressed(a, store, d("1994-06-01")).unwrap();
            let q3c = q3_compressed(a, store, 100001).unwrap();
            let q4c = q4_compressed(a, store).unwrap();
            let q6c = q6_compressed(a, store, d("1993-01-01"), d("1995-01-01")).unwrap();
            (q2, q5_sql, q5c, q1c, q2c.to_bits(), q3c, q4c, q6c)
        };
        relstore::parallel::set_parallel_scans(false);
        let serial = run(&mut a);
        relstore::parallel::set_parallel_scans(true);
        let parallel = run(&mut a);
        assert_eq!(serial, parallel, "parallel fan-out changed query answers");
    }
}
