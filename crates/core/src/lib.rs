//! ArchIS — a transaction-time temporal database system on a relational
//! engine, with XML views and XQuery (ICDE 2006).
//!
//! The system stores the full transaction-time history of relational
//! tables and exposes it two ways:
//!
//! * as **H-documents** — temporally grouped XML views ([`publish`]) that
//!   can be queried natively with the [`xquery`] engine (the paper's
//!   "Tamino" path, provided by the `xmldb` crate), and
//! * as **H-tables** on the relational engine ([`htable`]): a key table
//!   plus one attribute-history table per column, each row timestamped
//!   with an inclusive `[tstart, tend]` period, maintained incrementally
//!   by the [`archive`] layer from inserts / updates / deletes on the
//!   current database.
//!
//! XQuery over the H-documents is translated to SQL/XML over the H-tables
//! ([`translate`], the paper's Algorithm 1) and executed by the `sqlxml`
//! engine. Performance features:
//!
//! * **usefulness-based segment clustering** (paper §6): attribute tables
//!   carry a `segno`; when the live segment's usefulness `U = Nlive/Nall`
//!   drops below `Umin`, its tuples are archived into a new time-delimited
//!   segment (sorted by id) and only still-live tuples are carried
//!   forward. Snapshot and slicing queries are rewritten with segment
//!   restrictions (§6.3).
//! * **BlockZIP compression** ([`compressed`], paper §8): archived
//!   segments can be compressed into 4000-byte independent blocks stored
//!   as BLOBs, decompressed block-wise by the query paths.
//!
//! See `DESIGN.md` at the repository root for the full system inventory.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub mod archive;
pub mod compressed;
pub mod htable;
pub mod planner;
pub mod publish;
pub mod queries;
pub mod spec;
pub mod translate;
pub mod udf;

pub use archive::{Change, UpdateLog};
pub use compressed::CompressedStore;
pub use spec::{ArchConfig, RelationSpec};
pub use translate::Translator;

use relstore::expr::FnRegistry;
use relstore::{Database, StorageKind};
use sqlxml::QueryResult;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use temporal::Date;

/// Errors from the ArchIS layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// Unknown relation or attribute.
    NotFound(String),
    /// Storage-engine failure.
    Store(String),
    /// SQL-engine failure.
    Sql(String),
    /// XQuery parse/eval failure.
    XQuery(String),
    /// The translator does not support this query shape.
    Unsupported(String),
    /// Compression failure.
    Compress(String),
    /// Inconsistent update (e.g. updating a key that is not current).
    BadUpdate(String),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::NotFound(m) => write!(f, "not found: {m}"),
            ArchError::Store(m) => write!(f, "storage error: {m}"),
            ArchError::Sql(m) => write!(f, "sql error: {m}"),
            ArchError::XQuery(m) => write!(f, "xquery error: {m}"),
            ArchError::Unsupported(m) => write!(f, "unsupported query shape: {m}"),
            ArchError::Compress(m) => write!(f, "compression error: {m}"),
            ArchError::BadUpdate(m) => write!(f, "bad update: {m}"),
        }
    }
}

impl std::error::Error for ArchError {}

impl From<relstore::StoreError> for ArchError {
    fn from(e: relstore::StoreError) -> Self {
        ArchError::Store(e.to_string())
    }
}

impl From<sqlxml::SqlError> for ArchError {
    fn from(e: sqlxml::SqlError) -> Self {
        ArchError::Sql(e.to_string())
    }
}

impl From<xquery::XQueryError> for ArchError {
    fn from(e: xquery::XQueryError) -> Self {
        ArchError::XQuery(e.to_string())
    }
}

impl From<blockzip::BlockZipError> for ArchError {
    fn from(e: blockzip::BlockZipError) -> Self {
        ArchError::Compress(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ArchError>;

/// Name of the durable meta table holding relation specs.
const META_RELATIONS: &str = "archis_relations";
/// Name of the durable meta table holding archiver live-segment state.
const META_STATE: &str = "archis_state";

fn dtype_tag(t: relstore::value::DataType) -> &'static str {
    use relstore::value::DataType;
    match t {
        DataType::Int => "int",
        DataType::Double => "double",
        DataType::Str => "str",
        DataType::Date => "date",
        DataType::Blob => "blob",
    }
}

fn dtype_of(tag: &str) -> Option<relstore::value::DataType> {
    use relstore::value::DataType;
    Some(match tag {
        "int" => DataType::Int,
        "double" => DataType::Double,
        "str" => DataType::Str,
        "date" => DataType::Date,
        "blob" => DataType::Blob,
        _ => return None,
    })
}

/// The ArchIS system facade: a current + historical database with XML
/// views, query translation, segment clustering and optional compression.
pub struct ArchIS {
    db: Database,
    fns: Arc<FnRegistry>,
    config: ArchConfig,
    relations: HashMap<String, RelationSpec>,
    archivers: HashMap<String, archive::Archiver>,
    compressed: HashMap<String, CompressedStore>,
}

impl ArchIS {
    /// Build an ArchIS instance with the given configuration.
    pub fn new(config: ArchConfig) -> Self {
        let db = Database::with_capacity(config.buffer_pages);
        let mut registry = FnRegistry::new();
        udf::register_temporal_udfs(&mut registry, config.now);
        ArchIS {
            db,
            fns: Arc::new(registry),
            config,
            relations: HashMap::new(),
            archivers: HashMap::new(),
            compressed: HashMap::new(),
        }
    }

    /// Default configuration (heap storage, Umin = 0.4).
    pub fn with_defaults() -> Self {
        Self::new(ArchConfig::default())
    }

    /// Open (or create) a **durable** ArchIS instance: a page file at
    /// `path` plus a write-ahead log at `<path>.wal`. Every archival
    /// operation (apply / archive / compress) commits as an atomic unit,
    /// fsynced per [`ArchConfig::group_commit`]; after a crash, reopening
    /// replays the committed log tail, so the store recovers to the last
    /// durable archival transaction. Relation specs and archiver state are
    /// stored in meta tables and restored on reopen; [`ArchIS::checkpoint`]
    /// folds the log into the page file and truncates it.
    pub fn open_file(path: impl AsRef<std::path::Path>, config: ArchConfig) -> Result<Self> {
        let batch = std::env::var("ARCHIS_GROUP_COMMIT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.group_commit);
        let db = Database::open_wal(
            path,
            config.buffer_pages,
            relstore::WalConfig::with_group_commit(batch),
        )?;
        Self::open_with_database(db, config)
    }

    /// Build an ArchIS instance over a caller-supplied [`Database`] (e.g.
    /// one opened over a fault-injected or custom WAL pager), restoring
    /// relation specs and archiver state from its meta tables if present.
    pub fn open_with_database(db: Database, config: ArchConfig) -> Result<Self> {
        let mut registry = FnRegistry::new();
        udf::register_temporal_udfs(&mut registry, config.now);
        let mut archis = ArchIS {
            db,
            fns: Arc::new(registry),
            config,
            relations: HashMap::new(),
            archivers: HashMap::new(),
            compressed: HashMap::new(),
        };
        archis.restore_meta()?;
        Ok(archis)
    }

    /// Persist relation specs + archiver state and checkpoint the
    /// underlying database (folding and truncating the WAL when present).
    pub fn checkpoint(&self) -> Result<()> {
        self.persist_meta()?;
        self.db.checkpoint()?;
        Ok(())
    }

    /// Commit the current archival transaction on durable WAL-backed
    /// instances: rewrite the meta tables (archiver counters move with
    /// every change) so the committed state is self-describing, then flush
    /// dirty pages to the log and append a commit record. No-op for
    /// in-memory / plain-file instances.
    fn txn_commit(&self) -> Result<()> {
        if !self.db.is_transactional() {
            return Ok(());
        }
        self.persist_meta()?;
        self.db.commit()?;
        Ok(())
    }

    /// Abort the current archival transaction: a mutation failed after it
    /// may have dirtied buffered pages or bumped archiver counters, so the
    /// in-memory state no longer matches any committable boundary. Poisons
    /// the database handle — further commits/checkpoints refuse — and the
    /// caller recovers by reopening, which replays the WAL to the last
    /// commit. No-op for in-memory / plain-file instances.
    fn txn_abort(&self) {
        self.db.abort();
    }

    /// Rewrite the meta tables (relation specs + archiver live-segment
    /// state), creating them on first use.
    fn persist_meta(&self) -> Result<()> {
        use relstore::value::{DataType, Field, Schema};
        if !self.db.has_table(META_RELATIONS) {
            self.db.create_table(
                META_RELATIONS,
                Schema::new(vec![
                    Field::new("name", DataType::Str),
                    Field::new("root", DataType::Str),
                    Field::new("doc", DataType::Str),
                    Field::new("key", DataType::Str),
                    Field::new("attrs", DataType::Str),
                    Field::new("composite", DataType::Str),
                ]),
                StorageKind::Heap,
                &[],
            )?;
            self.db.create_table(
                META_STATE,
                Schema::new(vec![
                    Field::new("relation", DataType::Str),
                    Field::new("attr", DataType::Str),
                    Field::new("nall", DataType::Int),
                    Field::new("nlive", DataType::Int),
                    Field::new("live_start", DataType::Date),
                    Field::new("next_segno", DataType::Int),
                ]),
                StorageKind::Heap,
                &[],
            )?;
        }
        let rel_t = self.db.table(META_RELATIONS)?;
        let state_t = self.db.table(META_STATE)?;
        rel_t.delete_where(|_| true)?;
        state_t.delete_where(|_| true)?;
        use relstore::Value;
        for spec in self.relations.values() {
            let attrs = spec
                .attrs
                .iter()
                .map(|(a, t)| format!("{a}:{}", dtype_tag(*t)))
                .collect::<Vec<_>>()
                .join(",");
            let composite = spec
                .composite
                .iter()
                .map(|(a, t)| format!("{a}:{}", dtype_tag(*t)))
                .collect::<Vec<_>>()
                .join(",");
            rel_t.insert(vec![
                Value::Str(spec.name.clone()),
                Value::Str(spec.root.clone()),
                Value::Str(spec.doc.clone()),
                Value::Str(spec.key.clone()),
                Value::Str(attrs),
                Value::Str(composite),
            ])?;
            let archiver = self.archiver(&spec.name)?;
            for (attr, nall, nlive, live_start, next_segno) in archiver.state_rows() {
                state_t.insert(vec![
                    Value::Str(spec.name.clone()),
                    Value::Str(attr),
                    Value::Int(nall as i64),
                    Value::Int(nlive as i64),
                    Value::Date(live_start),
                    Value::Int(next_segno),
                ])?;
            }
        }
        Ok(())
    }

    fn restore_meta(&mut self) -> Result<()> {
        use relstore::value::DataType;
        if !self.db.has_table(META_RELATIONS) {
            return Ok(()); // fresh database
        }
        let specs: Vec<RelationSpec> = self
            .db
            .table(META_RELATIONS)?
            .scan()?
            .into_iter()
            .filter_map(|r| {
                let attrs: Vec<(String, DataType)> = r[4]
                    .as_str()?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .filter_map(|s| {
                        let (a, t) = s.split_once(':')?;
                        Some((a.to_string(), dtype_of(t)?))
                    })
                    .collect();
                let composite: Vec<(String, DataType)> = r[5]
                    .as_str()?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .filter_map(|s| {
                        let (a, t) = s.split_once(':')?;
                        Some((a.to_string(), dtype_of(t)?))
                    })
                    .collect();
                Some(RelationSpec {
                    name: r[0].as_str()?.to_string(),
                    root: r[1].as_str()?.to_string(),
                    doc: r[2].as_str()?.to_string(),
                    key: r[3].as_str()?.to_string(),
                    attrs,
                    composite,
                })
            })
            .collect();
        let state_rows = self.db.table(META_STATE)?.scan()?;
        for spec in specs {
            let rows: Vec<(String, u64, u64, temporal::Date, i64)> = state_rows
                .iter()
                .filter(|r| r[0].as_str() == Some(spec.name.as_str()))
                .filter_map(|r| {
                    Some((
                        r[1].as_str()?.to_string(),
                        r[2].as_int()? as u64,
                        r[3].as_int()? as u64,
                        r[4].as_date()?,
                        r[5].as_int()?,
                    ))
                })
                .collect();
            let archiver = archive::Archiver::reopen(&spec, self.config.umin, &rows);
            // Reattach compressed stores if their blob tables exist.
            if let Some(store) = CompressedStore::reattach(&self.db, &spec).transpose()? {
                self.compressed.insert(spec.name.clone(), store);
            }
            self.archivers.insert(spec.name.clone(), archiver);
            self.relations.insert(spec.name.clone(), spec);
        }
        Ok(())
    }

    /// The system configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// The underlying relational database (current tables + H-tables).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The UDF registry (temporal built-ins registered).
    pub fn functions(&self) -> &Arc<FnRegistry> {
        &self.fns
    }

    /// Register a relation to be archived: creates the current table and
    /// its H-tables (paper §5.1).
    pub fn create_relation(&mut self, spec: RelationSpec) -> Result<()> {
        if self.relations.contains_key(&spec.name) {
            return Err(ArchError::Store(format!(
                "relation {} already exists",
                spec.name
            )));
        }
        let archiver =
            match archive::Archiver::create(&self.db, &spec, self.config.storage, self.config.umin)
            {
                Ok(a) => a,
                Err(e) => {
                    // Table/index creation may have landed partially;
                    // poison the handle rather than let a later commit
                    // seal a half-created relation.
                    self.txn_abort();
                    return Err(e);
                }
            };
        self.relations.insert(spec.name.clone(), spec.clone());
        self.archivers.insert(spec.name.clone(), archiver);
        self.txn_commit()?;
        Ok(())
    }

    /// The registered relation specs.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSpec> {
        self.relations.values()
    }

    /// Look up a relation spec.
    pub fn relation(&self, name: &str) -> Result<&RelationSpec> {
        self.relations
            .get(name)
            .ok_or_else(|| ArchError::NotFound(format!("relation {name}")))
    }

    fn archiver(&self, name: &str) -> Result<&archive::Archiver> {
        self.archivers
            .get(name)
            .ok_or_else(|| ArchError::NotFound(format!("relation {name}")))
    }

    /// Apply one tracked change (the trigger path of paper §5.2). On
    /// durable instances the change commits as one atomic transaction.
    pub fn apply(&self, change: &Change) -> Result<()> {
        let archiver = self.archiver(&change.relation())?;
        if let Err(e) = archiver.apply(&self.db, change) {
            self.txn_abort();
            return Err(e);
        }
        self.txn_commit()
    }

    /// Apply a batch of changes as **one** WAL transaction: each
    /// relation's consecutive run goes through
    /// [`archive::Archiver::apply_batch`], then the whole batch commits
    /// once (meta rewrite + page images + commit record), riding group
    /// commit instead of paying a transaction per change. On durable
    /// instances the batch is the unit of atomicity — a crash mid-batch
    /// recovers to the previous batch boundary.
    pub fn apply_all(&self, changes: &[Change]) -> Result<()> {
        if changes.is_empty() {
            return Ok(());
        }
        let mut i = 0;
        while i < changes.len() {
            let rel = changes[i].relation();
            let mut j = i;
            while j < changes.len() && changes[j].relation() == rel {
                j += 1;
            }
            let run = self
                .archiver(&rel)
                .and_then(|a| a.apply_batch(&self.db, &changes[i..j]));
            if let Err(e) = run {
                self.txn_abort();
                return Err(e);
            }
            i = j;
        }
        self.txn_commit()
    }

    /// Apply a batch of changes (the update-log path of paper §5.2).
    /// Commits once per log, like [`ArchIS::apply_all`].
    pub fn replay(&self, log: &UpdateLog) -> Result<()> {
        self.apply_all(log.changes())
    }

    /// Insert a new current tuple at `at`.
    pub fn insert(
        &self,
        relation: &str,
        key: i64,
        values: Vec<(String, relstore::Value)>,
        at: Date,
    ) -> Result<()> {
        self.apply(&Change::Insert {
            relation: relation.to_string(),
            key,
            values,
            at,
        })
    }

    /// Update attributes of a current tuple at `at` (only changed
    /// attributes get new history rows — temporal grouping by
    /// construction).
    pub fn update(
        &self,
        relation: &str,
        key: i64,
        changes: Vec<(String, relstore::Value)>,
        at: Date,
    ) -> Result<()> {
        self.apply(&Change::Update {
            relation: relation.to_string(),
            key,
            changes,
            at,
        })
    }

    /// Delete a current tuple at `at` (closes all its open periods).
    pub fn delete(&self, relation: &str, key: i64, at: Date) -> Result<()> {
        self.apply(&Change::Delete {
            relation: relation.to_string(),
            key,
            at,
        })
    }

    /// Check usefulness on every attribute table of `relation` and archive
    /// live segments that dropped below `Umin` (paper §6.1). Returns how
    /// many segments were archived.
    pub fn maybe_archive(&self, relation: &str, at: Date) -> Result<usize> {
        let archived = self.archiver(relation)?.maybe_archive(&self.db, at)?;
        if archived > 0 {
            self.txn_commit()?;
        }
        Ok(archived)
    }

    /// Force-archive the live segment of every attribute table (used when
    /// enabling compression or at end of load).
    pub fn force_archive(&self, relation: &str, at: Date) -> Result<usize> {
        let archived = self.archiver(relation)?.force_archive(&self.db, at)?;
        self.txn_commit()?;
        Ok(archived)
    }

    /// Publish the H-document view of a relation's history (paper §3).
    /// When the relation's archived segments were compressed, their rows
    /// are sourced from the BLOB store so the view stays complete.
    pub fn publish(&self, relation: &str) -> Result<xmldom::Element> {
        let spec = self.relation(relation)?;
        match self.compressed.get(relation) {
            None => publish::publish(&self.db, spec),
            Some(store) => {
                publish::publish_with(&self.db, spec, &|attr| store.scan_all(&self.db, attr))
            }
        }
    }

    /// Translate an XQuery on the H-views into SQL/XML on the H-tables
    /// (paper Algorithm 1 + the §6.3 segment restriction).
    pub fn translate(&self, query: &str) -> Result<String> {
        let translator = Translator::new(self);
        translator.translate(query)
    }

    /// Translate and execute an XQuery against the H-tables.
    pub fn query(&self, query: &str) -> Result<QueryResult> {
        let sql = self.translate(query)?;
        self.execute_sql(&sql)
    }

    /// Execute raw SQL/SQL-XML against the database.
    ///
    /// History tables whose archived segments were BlockZIP-compressed are
    /// served through an uncompression override (paper §8.2's table
    /// functions): the referenced attribute tables are materialized as
    /// live rows + decompressed archived rows before planning.
    pub fn execute_sql(&self, sql: &str) -> Result<QueryResult> {
        self.execute_sql_on(&self.db, sql)
    }

    /// [`ArchIS::execute_sql`] against an explicit database view — the
    /// live database or a frozen snapshot of it (see
    /// [`ArchIS::begin_snapshot`]). Compressed-segment overrides are
    /// materialized from the same view, so a snapshot query decompresses
    /// the blocks as of its pinned commit.
    fn execute_sql_on(&self, db: &Database, sql: &str) -> Result<QueryResult> {
        let stmt = sqlxml::parse_sql(sql).map_err(ArchError::from)?;
        let mut overrides: HashMap<String, Vec<Vec<relstore::Value>>> = HashMap::new();
        for (tname, _alias) in &stmt.from {
            if overrides.contains_key(tname) {
                continue;
            }
            for (rel, store) in &self.compressed {
                let spec = &self.relations[rel];
                for (attr, _) in &spec.attrs {
                    if *tname == htable::attr_table(spec, attr) {
                        let mut rows = db.table(tname)?.scan()?;
                        rows.extend(store.scan_all(db, attr)?);
                        overrides.insert(tname.clone(), rows);
                    }
                }
            }
        }
        Ok(sqlxml::engine::execute_stmt_with(
            db, &stmt, &self.fns, &overrides,
        )?)
    }

    /// Freeze a read-only [`ArchSnapshot`] at the WAL's current durable
    /// commit (requires a WAL-backed instance, e.g. [`ArchIS::open_file`]).
    ///
    /// The snapshot serves Q1–Q6-style temporal queries against exactly
    /// the H-table state as of that commit — a reader at snapshot `S` sees
    /// the timeline as of `S`, coalesced per §6.1 — while `apply` /
    /// `apply_all` ingest keeps committing concurrently on `self`. Readers
    /// never block the writer: the snapshot reads through its own buffer
    /// pool against pinned page versions.
    pub fn begin_snapshot(&self) -> Result<ArchSnapshot<'_>> {
        let snap = self.db.begin_snapshot()?;
        Ok(ArchSnapshot { archis: self, snap })
    }

    /// Compress all *archived* segments of a relation's attribute tables
    /// with BlockZIP (paper §8.2). The live segment stays uncompressed and
    /// updatable. Returns the total number of blocks in the store.
    pub fn compress_archived(&mut self, relation: &str) -> Result<usize> {
        let spec = self.relation(relation)?.clone();
        let archiver = self.archiver(relation)?;
        let store = CompressedStore::build(&self.db, &spec, archiver, self.config.block_size)?;
        let blocks = store.block_count();
        self.compressed.insert(relation.to_string(), store);
        // Compression moved the archived rows into blocks; refresh the
        // stats catalog so per-segment block counts are recorded.
        self.recompute_stats(relation)?;
        self.txn_commit()?;
        Ok(blocks)
    }

    /// The compressed store of a relation, if [`ArchIS::compress_archived`]
    /// ran.
    pub fn compressed_store(&self, relation: &str) -> Option<&CompressedStore> {
        self.compressed.get(relation)
    }

    /// Compressed blocks quarantined as unreadable across all relations.
    /// Nonzero means query answers are missing those blocks' rows.
    pub fn quarantined_blocks(&self) -> u64 {
        self.compressed
            .values()
            .map(|s| s.quarantined_blocks())
            .sum()
    }

    /// Drain the corruption warnings accumulated by all compressed stores
    /// (one line per quarantined block). Callers surface these next to
    /// query results so data loss is reported, never silent.
    pub fn take_corruption_warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        for store in self.compressed.values() {
            out.extend(store.take_quarantine_warnings());
        }
        out
    }

    /// Reachable storage in bytes: H-tables (+ indexes), minus raw
    /// archived rows when a compressed store replaced them.
    pub fn storage_bytes(&self) -> Result<u64> {
        Ok(self.db.reachable_bytes()?)
    }

    /// Rebuild every table of a relation compactly (reclaims tombstoned
    /// records and sparse index pages — REORG before storage
    /// measurements).
    pub fn vacuum_relation(&self, relation: &str) -> Result<()> {
        let spec = self.relation(relation)?.clone();
        let mut tables = vec![spec.name.clone(), htable::key_table(&spec)];
        for (attr, _) in &spec.attrs {
            let t = htable::attr_table(&spec, attr);
            tables.push(t.clone());
            for suffix in ["_blob", "_segrange"] {
                let side = format!("{t}{suffix}");
                if self.db.has_table(&side) {
                    tables.push(side);
                }
            }
        }
        for t in tables {
            self.db.vacuum_table(&t)?;
        }
        // Vacuum rewrote the physical layout; rebuild the stats catalog
        // from the data so estimates stay exact.
        self.recompute_stats(relation)?;
        self.txn_commit()?;
        Ok(())
    }

    /// Recompute the per-segment statistics catalog of a relation's
    /// attribute tables from the data itself — uncompressed archived rows
    /// plus the rows of BlockZIP-compressed segments — including
    /// compressed-block counts per segment. Called after vacuum and
    /// compression, and by `archis-fsck` repair when the catalog drifts.
    pub fn recompute_stats(&self, relation: &str) -> Result<()> {
        use relstore::planner;
        let spec = self.relation(relation)?.clone();
        planner::ensure_stats_table(&self.db)?;
        for (attr, _) in &spec.attrs {
            let tname = htable::attr_table(&spec, attr);
            planner::clear_stats(&self.db, &tname)?;
            for stat in self.expected_stats(relation, attr)? {
                planner::store_stat(&self.db, &stat)?;
            }
        }
        Ok(())
    }

    /// What the statistics catalog *should* contain for one attribute's
    /// H-table, computed from the data itself — uncompressed archived rows
    /// plus the rows of BlockZIP-compressed segments — ordered by segment
    /// number. [`ArchIS::recompute_stats`] persists exactly this;
    /// `archis-fsck check` compares the stored catalog against it.
    pub fn expected_stats(&self, relation: &str, attr: &str) -> Result<Vec<relstore::SegStat>> {
        let spec = self.relation(relation)?;
        let tname = htable::attr_table(spec, attr);
        let mut by_seg: HashMap<i64, Vec<(i64, Date, Date)>> = HashMap::new();
        for r in self.db.table(&tname)?.scan()? {
            let (Some(segno), Some(key), Some(ts), Some(te)) =
                (r[0].as_int(), r[1].as_int(), r[3].as_date(), r[4].as_date())
            else {
                continue;
            };
            if segno == htable::LIVE_SEGNO {
                continue;
            }
            by_seg.entry(segno).or_default().push((key, ts, te));
        }
        // Compressed segments: their raw rows were removed from the
        // attribute table, so source them from the block store. A
        // segment can contribute from both sides (a same-day close
        // after compression moves a row into the table copy of an
        // otherwise-compressed segment); the sources are disjoint.
        let mut blocks: HashMap<i64, i64> = HashMap::new();
        if let Some(store) = self.compressed.get(relation) {
            for (segno, lo, hi) in store.segment_ranges(attr)? {
                blocks.insert(segno, (hi as i64) - (lo as i64) + 1);
                let entry = by_seg.entry(segno).or_default();
                for r in store.scan_segment(&self.db, attr, segno)? {
                    let (Some(key), Some(ts), Some(te)) =
                        (r[1].as_int(), r[3].as_date(), r[4].as_date())
                    else {
                        continue;
                    };
                    entry.push((key, ts, te));
                }
            }
        }
        let mut out: Vec<relstore::SegStat> = by_seg
            .into_iter()
            .map(|(segno, rows)| {
                let mut stat = relstore::SegStat::compute(&tname, segno, &rows);
                stat.blocks = blocks.get(&segno).copied().unwrap_or(0);
                stat
            })
            .collect();
        out.sort_by_key(|s| s.segno);
        Ok(out)
    }

    /// The planner's per-segment statistics rows for one attribute's
    /// H-table, ordered by segment number (empty until something is
    /// archived).
    pub fn segment_stats(&self, relation: &str, attr: &str) -> Result<Vec<relstore::SegStat>> {
        let spec = self.relation(relation)?;
        Ok(relstore::planner::load_stats(
            &self.db,
            &htable::attr_table(spec, attr),
        ))
    }

    /// Per-attribute segment catalog accessor (used by benches and the
    /// translator).
    pub fn segments_of(&self, relation: &str, attr: &str) -> Result<Vec<archive::SegmentInfo>> {
        self.archiver(relation)?.segments(&self.db, attr)
    }

    /// The archiver (exposed for benchmarks; stable API not guaranteed).
    pub fn archiver_of(&self, relation: &str) -> Result<&archive::Archiver> {
        self.archiver(relation)
    }

    /// Storage layout in use.
    pub fn storage_kind(&self) -> StorageKind {
        self.config.storage
    }

    /// The pinned `current-date` used for *now* semantics.
    pub fn now(&self) -> Date {
        self.config.now
    }
}

/// A read-only ArchIS session frozen at one durable commit.
///
/// Minted by [`ArchIS::begin_snapshot`]; holds the WAL pin for its
/// lifetime. Queries (XQuery via [`ArchSnapshot::query`], raw SQL via
/// [`ArchSnapshot::execute_sql`]) resolve every page — catalog, H-table
/// roots, data, compressed blocks — as of the pinned commit, unaffected by
/// concurrent `apply_batch` ingest, archival or checkpoints on the parent
/// instance.
///
/// Translation ([`ArchIS::translate`]) uses the parent's in-memory
/// relation specs and current segment metadata; ingest does not change
/// either, so translated queries are exact under concurrent inserts /
/// updates / deletes. A `maybe_archive` that lands *after* the pin may add
/// segment restrictions referring to rows the snapshot cannot see — those
/// predicates simply match nothing, which keeps results a function of the
/// pinned state.
pub struct ArchSnapshot<'a> {
    archis: &'a ArchIS,
    snap: relstore::Snapshot,
}

impl ArchSnapshot<'_> {
    /// The WAL commit this session is frozen at.
    pub fn commit_lsn(&self) -> u64 {
        self.snap.commit_lsn()
    }

    /// The frozen database view (private buffer pool over pinned pages).
    pub fn database(&self) -> &Database {
        self.snap.database()
    }

    /// Translate and execute an XQuery against the pinned H-table state.
    pub fn query(&self, query: &str) -> Result<QueryResult> {
        let sql = self.archis.translate(query)?;
        self.execute_sql(&sql)
    }

    /// Execute raw SQL/SQL-XML against the pinned H-table state.
    pub fn execute_sql(&self, sql: &str) -> Result<QueryResult> {
        self.archis.execute_sql_on(self.snap.database(), sql)
    }
}
