//! H-table creation and naming (paper §5.1).
//!
//! For relation `employee(id, name, salary, ...)` ArchIS stores:
//!
//! * the **current table** `employee(id, name, salary, ...)`,
//! * the **key table** `employee_id(id, tstart, tend)`,
//! * one **attribute history table** per non-key column:
//!   `employee_salary(segno, id, salary, tstart, tend)` — the leading
//!   `segno` carries the §6 segment clustering (archived segments are
//!   numbered from 1; the live segment uses [`LIVE_SEGNO`]),
//! * the **global relation table** `relations(relationname, tstart, tend)`
//!   recording each table's lifetime, and
//! * the **segment catalog** `segments(tbl, segno, segstart, segend)`.

use crate::spec::RelationSpec;
use crate::Result;
use relstore::value::{DataType, Field, Schema};
use relstore::{Database, StorageKind};
use temporal::Date;

/// The `segno` of the live (still-updated) segment. Chosen above any
/// archived segment number so clustered scans place live rows last.
pub const LIVE_SEGNO: i64 = 1_000_000;

/// Name of the key table.
pub fn key_table(spec: &RelationSpec) -> String {
    format!("{}_{}", spec.name, spec.key)
}

/// Name of an attribute history table.
pub fn attr_table(spec: &RelationSpec, attr: &str) -> String {
    format!("{}_{attr}", spec.name)
}

/// Name of the global relation-history table.
pub const RELATIONS_TABLE: &str = "relations";

/// Name of the global segment catalog.
pub const SEGMENTS_TABLE: &str = "segments";

/// Create the current table, key table, attribute history tables and the
/// global catalogs (if absent) for a relation. Indexes: key table on
/// `id`; attribute tables on `id` and on `(segno, id)`.
pub fn create_htables(
    db: &Database,
    spec: &RelationSpec,
    storage: StorageKind,
    at: Date,
) -> Result<()> {
    // Current table: surrogate key, composite natural-key columns, attrs.
    let mut current_fields = vec![Field::new(spec.key.clone(), DataType::Int)];
    for (c, t) in &spec.composite {
        current_fields.push(Field::new(c.clone(), *t));
    }
    for (a, t) in &spec.attrs {
        current_fields.push(Field::new(a.clone(), *t));
    }
    let current = db.create_table(
        &spec.name,
        Schema::new(current_fields),
        storage,
        &[spec.key.as_str()],
    )?;
    current.create_index(&format!("cur_{}_{}", spec.name, spec.key), &[&spec.key])?;

    // Key table (`lineitem_id(id, supplierno, itemno, tstart, tend)` for
    // composite keys, paper §5.1).
    let mut key_fields = vec![Field::new(spec.key.clone(), DataType::Int)];
    for (c, t) in &spec.composite {
        key_fields.push(Field::new(c.clone(), *t));
    }
    key_fields.push(Field::new("tstart", DataType::Date));
    key_fields.push(Field::new("tend", DataType::Date));
    let kt = db.create_table(
        &key_table(spec),
        Schema::new(key_fields),
        storage,
        &[spec.key.as_str()],
    )?;
    kt.create_index(&format!("{}_by_id", key_table(spec)), &[&spec.key])?;

    // Attribute history tables.
    for (attr, dtype) in &spec.attrs {
        let name = attr_table(spec, attr);
        let t = db.create_table(
            &name,
            Schema::new(vec![
                Field::new("segno", DataType::Int),
                Field::new(spec.key.clone(), DataType::Int),
                Field::new(attr.clone(), *dtype),
                Field::new("tstart", DataType::Date),
                Field::new("tend", DataType::Date),
            ]),
            storage,
            &["segno", spec.key.as_str()],
        )?;
        t.create_index(&format!("{name}_by_id"), &[&spec.key])?;
        t.create_index(&format!("{name}_by_seg"), &["segno", &spec.key])?;
    }

    // Global catalogs.
    if !db.has_table(RELATIONS_TABLE) {
        db.create_table(
            RELATIONS_TABLE,
            Schema::new(vec![
                Field::new("relationname", DataType::Str),
                Field::new("tstart", DataType::Date),
                Field::new("tend", DataType::Date),
            ]),
            StorageKind::Heap,
            &[],
        )?;
    }
    db.table(RELATIONS_TABLE)?.insert(vec![
        relstore::Value::Str(spec.name.clone()),
        relstore::Value::Date(at),
        relstore::Value::Date(temporal::END_OF_TIME),
    ])?;
    if !db.has_table(SEGMENTS_TABLE) {
        let st = db.create_table(
            SEGMENTS_TABLE,
            Schema::new(vec![
                Field::new("tbl", DataType::Str),
                Field::new("segno", DataType::Int),
                Field::new("segstart", DataType::Date),
                Field::new("segend", DataType::Date),
            ]),
            StorageKind::Heap,
            &[],
        )?;
        st.create_index("segments_by_tbl", &["tbl"])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_all_htables() {
        let db = Database::in_memory();
        let spec = RelationSpec::employee();
        create_htables(
            &db,
            &spec,
            StorageKind::Heap,
            Date::parse("1985-01-01").unwrap(),
        )
        .unwrap();
        for t in [
            "employee",
            "employee_id",
            "employee_name",
            "employee_salary",
            "employee_title",
            "employee_deptno",
            RELATIONS_TABLE,
            SEGMENTS_TABLE,
        ] {
            assert!(db.has_table(t), "missing table {t}");
        }
        // Attribute tables carry segno + id + value + period.
        let t = db.table("employee_salary").unwrap();
        assert_eq!(t.schema().arity(), 5);
        assert_eq!(t.schema().fields[0].name, "segno");
        assert!(t.index_on("segno").is_some());
        assert!(t.index_on("id").is_some());
        // The relations catalog records the table lifetime.
        let rels = db.table(RELATIONS_TABLE).unwrap().scan().unwrap();
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0][0], relstore::Value::Str("employee".into()));
    }

    #[test]
    fn naming_scheme_matches_paper() {
        let spec = RelationSpec::employee();
        assert_eq!(key_table(&spec), "employee_id");
        assert_eq!(attr_table(&spec, "salary"), "employee_salary");
    }

    #[test]
    fn two_relations_share_catalogs() {
        let db = Database::in_memory();
        let d = Date::parse("1985-01-01").unwrap();
        create_htables(&db, &RelationSpec::employee(), StorageKind::Heap, d).unwrap();
        create_htables(&db, &RelationSpec::dept(), StorageKind::Heap, d).unwrap();
        assert_eq!(db.table(RELATIONS_TABLE).unwrap().scan().unwrap().len(), 2);
    }
}
