//! Publishing H-documents from H-tables (paper §3).
//!
//! The H-document of a relation groups, under one element per key value,
//! the timestamped history of every attribute — the temporally grouped
//! representation of Figures 3–4. Publication is used to feed the native
//! XML database (the Tamino path) and as the oracle side of the
//! translator-equivalence tests.
//!
//! Segment clustering stores a still-open tuple in *every* segment it was
//! live in (its closed version supersedes the `9999-12-31` copies), so
//! publication deduplicates per `(id, tstart)` keeping the earliest end.

use crate::htable;
use crate::spec::RelationSpec;
use crate::Result;
use relstore::value::Value;
use relstore::Database;
use std::collections::BTreeMap;
use temporal::{Date, Interval, END_OF_TIME};
use xmldom::Element;

/// One attribute's deduplicated history: `(id, tstart) -> (value, tend)`.
type AttrHistory = BTreeMap<(i64, Date), (Value, Date)>;

/// Build the H-document of a relation from its H-tables.
pub fn publish(db: &Database, spec: &RelationSpec) -> Result<Element> {
    publish_with(db, spec, &|_| Ok(Vec::new()))
}

/// [`publish`] with a supplement source per attribute — used when archived
/// rows live in a compressed store rather than in the attribute tables.
pub fn publish_with(
    db: &Database,
    spec: &RelationSpec,
    supplement: &dyn Fn(&str) -> Result<Vec<Vec<Value>>>,
) -> Result<Element> {
    // Root element and its lifetime from the relations catalog.
    let mut root = Element::new(spec.root.clone());
    let rels = db.table(htable::RELATIONS_TABLE)?.scan()?;
    let lifetime = rels
        .iter()
        .find(|r| r[0] == Value::Str(spec.name.clone()))
        .map(|r| {
            Interval::new(
                r[1].as_date().unwrap_or(END_OF_TIME),
                r[2].as_date().unwrap_or(END_OF_TIME),
            )
            .unwrap_or_else(|_| Interval::at(END_OF_TIME))
        })
        .unwrap_or_else(|| Interval::at(END_OF_TIME));
    root.set_interval(lifetime);

    // Key table: one tuple element per key, ordered by key. tstart/tend
    // sit after any composite natural-key columns.
    let nc = spec.composite.len();
    let mut keys: Vec<(i64, Vec<Value>, Interval)> = db
        .table(&htable::key_table(spec))?
        .scan()?
        .into_iter()
        .filter_map(|r| {
            let id = r[0].as_int()?;
            let composite = r[1..1 + nc].to_vec();
            let iv = Interval::new(r[1 + nc].as_date()?, r[2 + nc].as_date()?).ok()?;
            Some((id, composite, iv))
        })
        .collect();
    keys.sort_by_key(|(id, _, iv)| (*id, iv.start()));

    // Attribute histories, deduplicated across segments.
    let mut attr_rows: Vec<(String, AttrHistory)> = Vec::new();
    for (attr, _) in &spec.attrs {
        let mut rows = db.table(&htable::attr_table(spec, attr))?.scan()?;
        rows.extend(supplement(attr)?);
        let mut dedup = AttrHistory::new();
        for r in rows {
            let (Some(id), Some(ts), Some(te)) = (r[1].as_int(), r[3].as_date(), r[4].as_date())
            else {
                continue;
            };
            let entry = dedup.entry((id, ts)).or_insert_with(|| (r[2].clone(), te));
            // Closed copies supersede the still-open ones from earlier
            // segments.
            if te < entry.1 {
                *entry = (r[2].clone(), te);
            }
        }
        attr_rows.push((attr.clone(), dedup));
    }

    for (id, composite, key_iv) in keys {
        let mut tuple = Element::new(spec.name.clone());
        tuple.set_interval(key_iv);
        let id_elem = Element::new(spec.key.clone())
            .with_interval(key_iv)
            .with_text(id.to_string());
        tuple.push(id_elem);
        for ((cname, _), cval) in spec.composite.iter().zip(&composite) {
            tuple.push(
                Element::new(cname.clone())
                    .with_interval(key_iv)
                    .with_text(cval.to_string()),
            );
        }
        for (attr, dedup) in &attr_rows {
            for ((rid, ts), (value, te)) in dedup.range((id, Date::from_day_number(i32::MIN))..) {
                if *rid != id {
                    break;
                }
                let Ok(iv) = Interval::new(*ts, *te) else {
                    continue;
                };
                let e = Element::new(attr.clone())
                    .with_interval(iv)
                    .with_text(value.to_string());
                tuple.push(e);
            }
        }
        root.push(tuple);
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{Archiver, Change};
    use relstore::StorageKind;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn bob_history(db: &Database, umin: f64) -> Archiver {
        let spec = RelationSpec::employee();
        let a = Archiver::create(db, &spec, StorageKind::Heap, umin).unwrap();
        a.apply(
            db,
            &Change::Insert {
                relation: "employee".into(),
                key: 1001,
                values: vec![
                    ("name".into(), Value::Str("Bob".into())),
                    ("salary".into(), Value::Int(60000)),
                    ("title".into(), Value::Str("Engineer".into())),
                    ("deptno".into(), Value::Str("d01".into())),
                ],
                at: d("1995-01-01"),
            },
        )
        .unwrap();
        a.apply(
            db,
            &Change::Update {
                relation: "employee".into(),
                key: 1001,
                changes: vec![("salary".into(), Value::Int(70000))],
                at: d("1995-06-01"),
            },
        )
        .unwrap();
        a.apply(
            db,
            &Change::Update {
                relation: "employee".into(),
                key: 1001,
                changes: vec![
                    ("title".into(), Value::Str("Sr Engineer".into())),
                    ("deptno".into(), Value::Str("d02".into())),
                ],
                at: d("1995-10-01"),
            },
        )
        .unwrap();
        a
    }

    #[test]
    fn publishes_temporally_grouped_document() {
        let db = Database::in_memory();
        let spec = RelationSpec::employee();
        bob_history(&db, 0.0);
        let doc = publish(&db, &spec).unwrap();
        assert_eq!(doc.name, "employees");
        let emp = doc.first_child("employee").unwrap();
        // Grouped: salary has exactly 2 periods, name exactly 1.
        assert_eq!(emp.children_named("salary").count(), 2);
        assert_eq!(emp.children_named("name").count(), 1);
        let salaries: Vec<&Element> = emp.children_named("salary").collect();
        assert_eq!(salaries[0].text_content(), "60000");
        assert_eq!(salaries[0].attr("tend"), Some("1995-05-31"));
        assert_eq!(salaries[1].attr("tend"), Some("9999-12-31"));
        // The temporal covering constraint: tuple interval covers children.
        let tuple_iv = emp.interval().unwrap();
        for c in emp.child_elements() {
            assert!(
                tuple_iv.contains(&c.interval().unwrap()),
                "covering constraint"
            );
        }
    }

    #[test]
    fn segment_duplicates_do_not_leak_into_the_view() {
        let db = Database::in_memory();
        let spec = RelationSpec::employee();
        let a = bob_history(&db, 0.0);
        // Archive twice: the open salary period is copied into both
        // segments; publication must still show exactly 2 salary periods.
        a.force_archive(&db, d("1996-01-01")).unwrap();
        a.apply(
            &db,
            &Change::Update {
                relation: "employee".into(),
                key: 1001,
                changes: vec![("salary".into(), Value::Int(80000))],
                at: d("1996-06-01"),
            },
        )
        .unwrap();
        a.force_archive(&db, d("1997-01-01")).unwrap();
        let doc = publish(&db, &spec).unwrap();
        let emp = doc.first_child("employee").unwrap();
        let salaries: Vec<&Element> = emp.children_named("salary").collect();
        assert_eq!(salaries.len(), 3, "three real periods, duplicates merged");
        assert_eq!(
            salaries[1].attr("tend"),
            Some("1996-05-31"),
            "closed copy wins"
        );
        assert_eq!(salaries[2].text_content(), "80000");
    }

    #[test]
    fn multiple_employees_ordered_by_key() {
        let db = Database::in_memory();
        let spec = RelationSpec::employee();
        let a = Archiver::create(&db, &spec, StorageKind::Heap, 0.0).unwrap();
        for (key, name, date) in [
            (1002i64, "Alice", "1994-03-01"),
            (1001, "Bob", "1995-01-01"),
        ] {
            a.apply(
                &db,
                &Change::Insert {
                    relation: "employee".into(),
                    key,
                    values: vec![("name".into(), Value::Str(name.into()))],
                    at: d(date),
                },
            )
            .unwrap();
        }
        let doc = publish(&db, &spec).unwrap();
        let names: Vec<String> = doc
            .children_named("employee")
            .map(|e| e.first_child("name").unwrap().text_content())
            .collect();
        assert_eq!(
            names,
            vec!["Bob".to_string(), "Alice".to_string()],
            "ordered by id"
        );
    }
}
