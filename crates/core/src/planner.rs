//! Cost-based segment planning for the compressed-store query paths
//! (paper §8.3 + the PR 8 statistics catalog).
//!
//! The SQL engine plans its scans in [`relstore::planner`]; this module is
//! the H-table-aware twin for the table-function paths over
//! [`crate::CompressedStore`]: given a snapshot date, a slicing window or
//! a full-history request, decide **which archived segments to
//! decompress** and **how** (single-key block probe vs whole-segment block
//! scan), using the same per-segment statistics catalog the archiver
//! maintains.
//!
//! The statistics earn their keep on pruning: a segment's catalog
//! *interval* `[start, end]` says a window may overlap, but the stats know
//! the actual `tstart`/`tend` extremes of the rows stored inside. A
//! segment whose stats prove no row can match is dropped before a single
//! block is decompressed. The extremes are maintained exactly (recomputed
//! at archival, absorbed on row moves, rebuilt by vacuum), so the pruning
//! is loss-free.
//!
//! `ARCHIS_FORCE_PATH` is honored for A/B benchmarking:
//! `rule` reproduces the pre-statistics behavior end to end (no pruning,
//! hand-wired probe-when-keyed access); `seq` forces whole-segment scans;
//! `index` forces key probes where a key exists; `cluster` reads the
//! segment's block range in sid order, which for the compressed store *is*
//! the clustered layout, i.e. a segment scan. Every decision is recorded
//! in the thread-local plan log ([`relstore::planner::take_plan_log`]) for
//! EXPLAIN-style dumps.

use crate::htable::LIVE_SEGNO;
use crate::{ArchIS, Result};
use relstore::planner::{forced_path, record_plan, ForcedPath, PlanEntry, SegStat};
use temporal::{Date, END_OF_TIME};

/// How to read one archived segment of a compressed attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegAccess {
    /// Binary-search the block metadata for one key's covering block(s)
    /// ([`crate::CompressedStore::lookup`]).
    Probe,
    /// Decompress the segment's whole block range
    /// ([`crate::CompressedStore::scan_segment`]).
    Scan,
}

/// The plan for one query over a compressed attribute's history.
#[derive(Debug, Clone)]
pub struct SegmentPlan {
    /// Archived segments to touch, ascending segno order.
    pub segnos: Vec<i64>,
    /// Whether the live (uncompressed) segment must be read too.
    pub live: bool,
    /// Access method for the archived segments.
    pub access: SegAccess,
}

/// Resolve the access method: a key probe when a key is known (the
/// hand-wired rule and the cost model agree — a probe never touches more
/// blocks than a scan), a segment scan otherwise, overridden by
/// `ARCHIS_FORCE_PATH`.
fn access_for(key: Option<i64>, forced: Option<ForcedPath>) -> (SegAccess, String) {
    match (forced, key) {
        (Some(ForcedPath::Seq | ForcedPath::Cluster), _) => {
            (SegAccess::Scan, format!("forced:{}", forced.unwrap()))
        }
        (Some(ForcedPath::Index), Some(_)) => (SegAccess::Probe, "forced:index".into()),
        (Some(ForcedPath::Index), None) => (SegAccess::Scan, "forced:index".into()),
        (Some(ForcedPath::Rule), Some(_)) => (SegAccess::Probe, "rule".into()),
        (Some(ForcedPath::Rule), None) => (SegAccess::Scan, "rule".into()),
        (None, Some(_)) => (SegAccess::Probe, "cost".into()),
        (None, None) => (SegAccess::Scan, "cost".into()),
    }
}

/// Estimated rows a segment contributes to a window, from its stats.
fn seg_est_rows(stat: Option<&SegStat>, lo: Date, hi: Date, key: Option<i64>) -> f64 {
    let Some(s) = stat else { return 0.0 };
    let mut est = s.rows as f64 * s.overlap_fraction(lo, hi);
    if key.is_some() {
        est /= (s.distinct_keys.max(1)) as f64;
    }
    est
}

/// Record one compressed-path decision in the EXPLAIN plan log.
fn log_plan(
    table: &str,
    plan: &SegmentPlan,
    stats: &[SegStat],
    lo: Date,
    hi: Date,
    key: Option<i64>,
    chosen_by: &str,
) {
    let stat_of = |segno: i64| stats.iter().find(|s| s.segno == segno);
    let est_rows: f64 = plan
        .segnos
        .iter()
        .map(|&s| seg_est_rows(stat_of(s), lo, hi, key))
        .sum();
    let est_blocks: f64 = plan
        .segnos
        .iter()
        .map(|&s| match plan.access {
            SegAccess::Probe => 1.0,
            SegAccess::Scan => stat_of(s).map(|st| st.blocks.max(1) as f64).unwrap_or(1.0),
        })
        .sum();
    let path = match plan.access {
        SegAccess::Probe => format!("blocks:probe(segs={})", plan.segnos.len()),
        SegAccess::Scan => format!("blocks:scan(segs={})", plan.segnos.len()),
    };
    let path = if plan.live {
        format!("{path}+live")
    } else {
        path
    };
    record_plan(PlanEntry {
        table: table.to_string(),
        path,
        est_rows,
        est_pages: est_blocks,
        cost: est_blocks,
        chosen_by: chosen_by.to_string(),
    });
}

/// Plan a **snapshot** query at `date` (Q1/Q2 shape): at most one archived
/// segment covers any date (paper §6.3); stats may prove even that one
/// holds no matching row.
pub fn plan_snapshot(
    archis: &ArchIS,
    relation: &str,
    attr: &str,
    date: Date,
    key: Option<i64>,
) -> Result<SegmentPlan> {
    let segs = archis.segments_of(relation, attr)?;
    let stats = archis.segment_stats(relation, attr)?;
    let forced = forced_path();
    let covering = segs
        .iter()
        .filter(|s| s.segno != LIVE_SEGNO)
        .find(|s| s.start <= date && date <= s.end)
        .map(|s| s.segno);
    let (mut segnos, live) = match covering {
        Some(segno) => (vec![segno], false),
        None => (Vec::new(), true),
    };
    if forced != Some(ForcedPath::Rule) {
        segnos.retain(|&segno| {
            stats
                .iter()
                .find(|s| s.segno == segno)
                .is_none_or(|s| s.overlap_fraction(date, date) > 0.0)
        });
    }
    let (access, chosen_by) = access_for(key, forced);
    let plan = SegmentPlan {
        segnos,
        live,
        access,
    };
    let table = crate::htable::attr_table(archis.relation(relation)?, attr);
    log_plan(&table, &plan, &stats, date, date, key, &chosen_by);
    Ok(plan)
}

/// Plan a **slicing window** query over `[d1, d2]` (Q5 shape): every
/// interval-overlapping archived segment, stats-pruned, plus the live
/// segment when the window reaches past the last archival (or nothing was
/// ever archived).
pub fn plan_window(
    archis: &ArchIS,
    relation: &str,
    attr: &str,
    d1: Date,
    d2: Date,
) -> Result<SegmentPlan> {
    let segs = archis.segments_of(relation, attr)?;
    let stats = archis.segment_stats(relation, attr)?;
    let forced = forced_path();
    let overlapping: Vec<i64> = segs
        .iter()
        .filter(|s| s.segno != LIVE_SEGNO && s.start <= d2 && s.end >= d1)
        .map(|s| s.segno)
        .collect();
    let touched_archive = !overlapping.is_empty();
    let mut segnos = overlapping;
    if forced != Some(ForcedPath::Rule) {
        segnos.retain(|&segno| {
            stats
                .iter()
                .find(|s| s.segno == segno)
                .is_none_or(|s| s.overlap_fraction(d1, d2) > 0.0)
        });
    }
    let live_start = segs.last().map(|s| s.start).unwrap_or(END_OF_TIME);
    let live = d2 >= live_start || !touched_archive;
    let (access, chosen_by) = access_for(None, forced);
    let plan = SegmentPlan {
        segnos,
        live,
        access,
    };
    let table = crate::htable::attr_table(archis.relation(relation)?, attr);
    log_plan(&table, &plan, &stats, d1, d2, None, &chosen_by);
    Ok(plan)
}

/// Plan a **full-history** query (Q3/Q4/Q6 shape): every archived segment
/// plus the live one. With a key, archived segments are probed; stats
/// cannot prune an unbounded history.
pub fn plan_history(
    archis: &ArchIS,
    relation: &str,
    attr: &str,
    key: Option<i64>,
) -> Result<SegmentPlan> {
    let segs = archis.segments_of(relation, attr)?;
    let stats = archis.segment_stats(relation, attr)?;
    let forced = forced_path();
    let segnos: Vec<i64> = segs
        .iter()
        .filter(|s| s.segno != LIVE_SEGNO)
        .map(|s| s.segno)
        .collect();
    let (access, chosen_by) = access_for(key, forced);
    let plan = SegmentPlan {
        segnos,
        live: true,
        access,
    };
    let table = crate::htable::attr_table(archis.relation(relation)?, attr);
    log_plan(
        &table,
        &plan,
        &stats,
        temporal::DAWN_OF_TIME,
        END_OF_TIME,
        key,
        &chosen_by,
    );
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArchConfig, RelationSpec};
    use relstore::value::Value;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn archis_with_dead_era() -> ArchIS {
        let mut a = ArchIS::new(ArchConfig::default());
        a.create_relation(RelationSpec::employee()).unwrap();
        a.insert(
            "employee",
            1,
            vec![
                ("name".into(), Value::Str("Bob".into())),
                ("salary".into(), Value::Int(50_000)),
            ],
            d("1990-01-01"),
        )
        .unwrap();
        a.delete("employee", 1, d("1991-01-01")).unwrap();
        // Segment 1's interval stretches to 1999-12-31 even though every
        // row inside ended by 1990-12-31.
        a.force_archive("employee", d("1999-12-31")).unwrap();
        a
    }

    #[test]
    fn snapshot_in_dead_era_is_pruned_to_nothing() {
        let a = archis_with_dead_era();
        let plan = plan_snapshot(&a, "employee", "salary", d("1995-06-01"), None).unwrap();
        assert!(plan.segnos.is_empty(), "stats prove the era is dead");
        assert!(!plan.live, "snapshot inside the archived interval");
        // Rule mode reproduces the interval-only decision.
        relstore::planner::set_forced_path(Some(ForcedPath::Rule));
        let rule = plan_snapshot(&a, "employee", "salary", d("1995-06-01"), None).unwrap();
        relstore::planner::set_forced_path(None);
        assert_eq!(rule.segnos, vec![1], "rule mode scans the covering segment");
    }

    #[test]
    fn live_snapshot_and_probe_access() {
        let a = archis_with_dead_era();
        let plan = plan_snapshot(&a, "employee", "salary", d("2001-06-01"), Some(1)).unwrap();
        assert!(plan.segnos.is_empty());
        assert!(plan.live);
        assert_eq!(plan.access, SegAccess::Probe);
        let hist = plan_history(&a, "employee", "salary", Some(1)).unwrap();
        assert_eq!(hist.segnos, vec![1]);
        assert!(hist.live);
        assert_eq!(hist.access, SegAccess::Probe);
        let drained = relstore::planner::take_plan_log();
        assert!(
            drained.iter().any(|e| e.table == "employee_salary"),
            "plans are logged for EXPLAIN: {drained:?}"
        );
    }

    #[test]
    fn window_prunes_dead_segments_but_keeps_reachable_live() {
        let a = archis_with_dead_era();
        // Window inside the dead era: pruned, and live is unreachable.
        let w = plan_window(&a, "employee", "salary", d("1994-01-01"), d("1996-01-01")).unwrap();
        assert!(w.segnos.is_empty());
        assert!(!w.live, "window ends before the live segment starts");
        // Window reaching past the archival touches live.
        let w2 = plan_window(&a, "employee", "salary", d("1994-01-01"), d("2005-01-01")).unwrap();
        assert!(w2.live);
    }
}
