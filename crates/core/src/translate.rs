//! XQuery → SQL/XML translation (paper §5.3, Algorithm 1) with the §6.3
//! segment restriction.
//!
//! The five steps of Algorithm 1:
//!
//! 1. **Identification of variable range** — every `for`/`let` variable is
//!    classified as a tuple variable over a key table, a tuple variable
//!    over an attribute history table, or an attribute variable, and gets
//!    its own alias in the SQL FROM clause;
//! 2. **Generation of join conditions** — `X.id = Y.id` for every pair of
//!    related tuple variables;
//! 3. **Generation of WHERE conditions** — path predicates
//!    (`[name="Bob"]`) and the XQuery `where` clause;
//! 4. **Translation of built-in functions** — `tstart(.)`/`tend(.)`
//!    become the `tstart`/`tend` columns in comparison contexts (as the
//!    paper's own QUERY 2 translation shows); interval predicates
//!    (`toverlaps`, ...) map to the registered SQL UDFs over
//!    `(tstart, tend)` pairs;
//! 5. **Output generation** — `XMLElement` / `XMLAttributes` / `XMLAgg`
//!    (or plain scalars for aggregate-wrapped queries).
//!
//! §6.3: when step 3 discovers a snapshot date or a slicing window on a
//! segment-clustered attribute table, the translator consults the segment
//! catalog and adds `segno` restrictions. A snapshot always falls in a
//! single segment (every tuple live inside a segment's interval is stored
//! in it), so the rewrite is loss-free; a multi-segment slicing range is
//! only added when the surrounding aggregate is duplicate-insensitive
//! (`count(distinct ...)`), because a tuple can be stored in several
//! consecutive segments.
//!
//! The supported XQuery subset is the paper's query corpus: FLWOR over
//! `doc(...)` paths and variable-relative paths, path predicates, the
//! temporal function library, element constructors, and aggregate-wrapped
//! queries. Shapes outside the subset return
//! [`ArchError::Unsupported`] — the caller can always fall back to the
//! native XQuery engine over the published H-document.

use crate::archive::SegmentInfo;
use crate::htable::{self, LIVE_SEGNO};
use crate::spec::RelationSpec;
use crate::{ArchError, ArchIS, Result};
use relstore::planner;
use temporal::{Date, END_OF_TIME};
use xquery::ast::{Binding, CmpOp, DirectContent, Expr, Step};

/// The translator. Borrow an [`ArchIS`] for schema and segment metadata.
pub struct Translator<'a> {
    archis: &'a ArchIS,
}

#[derive(Debug, Clone, PartialEq)]
enum VarKind {
    /// Ranges over the key table (an H-document tuple element).
    Tuple,
    /// Ranges over one attribute history table.
    Attr(String),
}

#[derive(Debug, Clone)]
struct VarInfo {
    relation: String,
    kind: VarKind,
    alias: String,
}

/// Time constraints detected on an attribute variable (for §6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
enum TimeBound {
    StartLe(Date),
    EndGe(Date),
    Overlaps(Date, Date),
}

#[derive(Default)]
struct Ctx {
    vars: std::collections::HashMap<String, VarInfo>,
    from: Vec<(String, String)>,
    conds: Vec<String>,
    bounds: Vec<(String, TimeBound)>, // (alias, bound)
    alias_tables: std::collections::HashMap<String, (String, Option<String>)>, // alias -> (relation, attr)
    next_alias: usize,
}

impl Ctx {
    fn fresh_alias(&mut self) -> String {
        self.next_alias += 1;
        format!("t{}", self.next_alias)
    }

    fn add_table(&mut self, table: String, relation: &str, attr: Option<&str>) -> String {
        let alias = self.fresh_alias();
        self.from.push((table, alias.clone()));
        self.alias_tables.insert(
            alias.clone(),
            (relation.to_string(), attr.map(|s| s.to_string())),
        );
        alias
    }
}

impl<'a> Translator<'a> {
    /// A translator over an ArchIS instance.
    pub fn new(archis: &'a ArchIS) -> Self {
        Translator { archis }
    }

    /// Translate an XQuery string to SQL/XML.
    pub fn translate(&self, query: &str) -> Result<String> {
        let module = xquery::parse_query(query)?;
        if !module.functions.is_empty() {
            return Err(ArchError::Unsupported(
                "declare function is not supported by the translator".into(),
            ));
        }
        self.translate_expr(&module.body)
    }

    fn translate_expr(&self, expr: &Expr) -> Result<String> {
        match expr {
            // agg( FLWOR ) / count(distinct-values( FLWOR )).
            Expr::Call(name, args) if is_aggregate(name) && args.len() == 1 => {
                let (inner, distinct) = match &args[0] {
                    Expr::Call(n2, a2) if n2 == "distinct-values" && a2.len() == 1 => {
                        (&a2[0], true)
                    }
                    other => (other, false),
                };
                self.translate_flwor(
                    inner,
                    OutputMode::Aggregate {
                        func: normalize_agg(name),
                        distinct,
                    },
                )
            }
            Expr::ElementCtor {
                name,
                content: Some(content),
            } => self.translate_flwor(content, OutputMode::WrappedElement { name: name.clone() }),
            Expr::Flwor { .. } => self.translate_flwor(expr, OutputMode::Rows),
            other => Err(ArchError::Unsupported(format!(
                "top-level expression {other:?} is not translatable"
            ))),
        }
    }

    fn translate_flwor(&self, expr: &Expr, mode: OutputMode) -> Result<String> {
        // A bare path also counts as a degenerate FLWOR: `count(doc(...)/...)`.
        let (bindings, where_clause, order_by, ret): (
            Vec<Binding>,
            Option<Expr>,
            Vec<xquery::ast::OrderSpec>,
            Expr,
        ) = match expr {
            Expr::Flwor {
                bindings,
                where_clause,
                order_by,
                ret,
            } => (
                bindings.clone(),
                where_clause.as_deref().cloned(),
                order_by.clone(),
                (**ret).clone(),
            ),
            Expr::Path { .. } => (
                vec![Binding::For {
                    var: "__p".to_string(),
                    seq: expr.clone(),
                }],
                None,
                Vec::new(),
                Expr::Var("__p".to_string()),
            ),
            other => {
                return Err(ArchError::Unsupported(format!(
                    "expected FLWOR, got {other:?}"
                )))
            }
        };

        let mut ctx = Ctx::default();
        // Step 1 + 2 + 3: bind variables, joins, predicate conditions.
        for b in &bindings {
            match b {
                Binding::For { var, seq } | Binding::Let { var, seq } => {
                    self.bind_variable(&mut ctx, var, seq)?;
                }
            }
        }
        if let Some(w) = &where_clause {
            self.where_to_sql(&mut ctx, w)?;
        }
        // Step 5: output generation. A `table(...)` constructor in the
        // return clause bypasses the SQL/XML transformation so results come
        // back as plain relational rows (paper §5.3: "users have the option
        // to specify a table construct in the return clause").
        let distinct_mode = matches!(mode, OutputMode::Aggregate { distinct: true, .. });
        let table_bypass = match (&mode, &ret) {
            (OutputMode::Rows, Expr::Call(f, args)) if f == "table" && !args.is_empty() => {
                Some(args.clone())
            }
            _ => None,
        };
        let select = if let Some(cols) = &table_bypass {
            let mut items = Vec::with_capacity(cols.len());
            for c in cols {
                items.push(self.value_operand(&mut ctx, None, c)?.sql);
            }
            format!("select {}", items.join(", "))
        } else {
            match &mode {
                OutputMode::Aggregate { func, distinct } => {
                    let scalar = self.scalar_output(&mut ctx, &ret)?;
                    if *distinct {
                        format!("select {func}(distinct {scalar})")
                    } else {
                        format!("select {func}({scalar})")
                    }
                }
                OutputMode::WrappedElement { name } => {
                    let content = self.xml_output(&mut ctx, &ret)?;
                    format!("select XMLElement(Name \"{name}\", XMLAgg({content}))")
                }
                OutputMode::Rows => {
                    let content = self.xml_output(&mut ctx, &ret)?;
                    format!("select {content}")
                }
            }
        };
        // ORDER BY: keys must be scalar operands over bound variables.
        let mut order_sql: Vec<String> = Vec::new();
        for spec in &order_by {
            let key = self.value_operand(&mut ctx, None, &spec.key)?;
            order_sql.push(format!(
                "{}{}",
                key.sql,
                if spec.ascending { "" } else { " desc" }
            ));
        }

        // §6.3 segment restriction.
        self.add_segment_conditions(&mut ctx, distinct_mode)?;

        if ctx.from.is_empty() {
            return Err(ArchError::Unsupported(
                "query binds no H-table variables".into(),
            ));
        }
        let from = ctx
            .from
            .iter()
            .map(|(t, a)| format!("{t} as {a}"))
            .collect::<Vec<_>>()
            .join(", ");
        let mut sql = format!("{select} from {from}");
        if !ctx.conds.is_empty() {
            sql.push_str(" where ");
            sql.push_str(&ctx.conds.join(" and "));
        }
        if !order_sql.is_empty() {
            sql.push_str(" order by ");
            sql.push_str(&order_sql.join(", "));
        }
        Ok(sql)
    }

    /// Step 1: classify a `for`/`let` binding and create its alias(es).
    fn bind_variable(&self, ctx: &mut Ctx, var: &str, seq: &Expr) -> Result<()> {
        let Expr::Path { base, steps } = seq else {
            return Err(ArchError::Unsupported(format!(
                "binding of ${var} must be a path expression"
            )));
        };
        match &**base {
            // doc("employees.xml")/employees/employee[...]/attr[...]
            Expr::Call(f, args) if (f == "doc" || f == "document") && args.len() == 1 => {
                let Expr::StrLit(uri) = &args[0] else {
                    return Err(ArchError::Unsupported(
                        "doc() needs a string literal".into(),
                    ));
                };
                let spec = self
                    .archis
                    .relations()
                    .find(|s| s.doc == *uri)
                    .ok_or_else(|| ArchError::NotFound(format!("document {uri}")))?
                    .clone();
                let mut steps = steps.as_slice();
                // Root step.
                match steps.first() {
                    Some((Step::Child(root), preds)) if *root == spec.root => {
                        if !preds.is_empty() {
                            return Err(ArchError::Unsupported(
                                "predicates on the root element".into(),
                            ));
                        }
                        steps = &steps[1..];
                    }
                    _ => {
                        return Err(ArchError::Unsupported(format!(
                            "path must start at /{}",
                            spec.root
                        )))
                    }
                }
                // Tuple step.
                let (tuple_preds, rest) = match steps.first() {
                    Some((Step::Child(t), preds)) if *t == spec.name => {
                        (preds.clone(), &steps[1..])
                    }
                    _ => {
                        return Err(ArchError::Unsupported(format!(
                            "path must select {} elements",
                            spec.name
                        )))
                    }
                };
                let tuple_alias = ctx.add_table(htable::key_table(&spec), &spec.name, None);
                let tuple_var = VarInfo {
                    relation: spec.name.clone(),
                    kind: VarKind::Tuple,
                    alias: tuple_alias.clone(),
                };
                for p in &tuple_preds {
                    self.predicate_to_sql(ctx, &tuple_var, p)?;
                }
                match rest {
                    [] => {
                        ctx.vars.insert(var.to_string(), tuple_var);
                    }
                    [(Step::Child(attr), attr_preds)] => {
                        let attr_var = self.join_attribute(ctx, &spec, &tuple_var, attr)?;
                        for p in attr_preds {
                            self.predicate_to_sql(ctx, &attr_var, p)?;
                        }
                        ctx.vars.insert(var.to_string(), attr_var);
                    }
                    _ => {
                        return Err(ArchError::Unsupported(
                            "paths deeper than tuple/attribute".into(),
                        ))
                    }
                }
                Ok(())
            }
            // $e/attr[...]
            Expr::Var(parent) => {
                let parent_var = ctx
                    .vars
                    .get(parent)
                    .cloned()
                    .ok_or_else(|| ArchError::Unsupported(format!("unbound ${parent}")))?;
                if parent_var.kind != VarKind::Tuple {
                    return Err(ArchError::Unsupported(format!(
                        "${parent} must be a tuple variable"
                    )));
                }
                let spec = self.archis.relation(&parent_var.relation)?.clone();
                let [(Step::Child(attr), attr_preds)] = steps.as_slice() else {
                    return Err(ArchError::Unsupported(
                        "variable-relative path must select one attribute".into(),
                    ));
                };
                let attr_var = self.join_attribute(ctx, &spec, &parent_var, attr)?;
                for p in attr_preds {
                    self.predicate_to_sql(ctx, &attr_var, p)?;
                }
                ctx.vars.insert(var.to_string(), attr_var);
                Ok(())
            }
            other => Err(ArchError::Unsupported(format!(
                "binding base {other:?} is not translatable"
            ))),
        }
    }

    /// Step 2: attribute table + `id` join against its tuple variable.
    fn join_attribute(
        &self,
        ctx: &mut Ctx,
        spec: &RelationSpec,
        tuple_var: &VarInfo,
        attr: &str,
    ) -> Result<VarInfo> {
        if !spec.has_attr(attr) {
            return Err(ArchError::NotFound(format!(
                "attribute {attr} of {}",
                spec.name
            )));
        }
        let alias = ctx.add_table(htable::attr_table(spec, attr), &spec.name, Some(attr));
        ctx.conds.push(format!(
            "{}.{} = {}.{}",
            tuple_var.alias, spec.key, alias, spec.key
        ));
        Ok(VarInfo {
            relation: spec.name.clone(),
            kind: VarKind::Attr(attr.to_string()),
            alias,
        })
    }

    /// Step 3 + 4: one path predicate on `var`.
    fn predicate_to_sql(&self, ctx: &mut Ctx, var: &VarInfo, pred: &Expr) -> Result<()> {
        let sql = self.bool_expr(ctx, Some(var), pred)?;
        ctx.conds.push(sql);
        Ok(())
    }

    /// Translate the `where` clause.
    fn where_to_sql(&self, ctx: &mut Ctx, w: &Expr) -> Result<()> {
        let sql = self.bool_expr(ctx, None, w)?;
        ctx.conds.push(sql);
        Ok(())
    }

    /// A boolean expression in predicate/where position. `ctx_var` is the
    /// variable `.` refers to (path predicates), if any.
    fn bool_expr(&self, ctx: &mut Ctx, ctx_var: Option<&VarInfo>, e: &Expr) -> Result<String> {
        match e {
            Expr::And(l, r) => Ok(format!(
                "({} and {})",
                self.bool_expr(ctx, ctx_var, l)?,
                self.bool_expr(ctx, ctx_var, r)?
            )),
            Expr::Or(l, r) => Ok(format!(
                "({} or {})",
                self.bool_expr(ctx, ctx_var, l)?,
                self.bool_expr(ctx, ctx_var, r)?
            )),
            Expr::Cmp(op, l, r) => self.comparison(ctx, ctx_var, *op, l, r),
            // not(empty($x)) — $x is already an inner join; always true.
            Expr::Call(name, args) if name == "not" && args.len() == 1 => match &args[0] {
                Expr::Call(n2, a2) if n2 == "empty" && a2.len() == 1 => {
                    self.require_joined(ctx, ctx_var, &a2[0])?;
                    Ok("1 = 1".to_string())
                }
                inner => Ok(format!("not ({})", self.bool_expr(ctx, ctx_var, inner)?)),
            },
            Expr::Call(name, args) if is_interval_pred(name) && args.len() == 2 => {
                let a = self.interval_operand(ctx, ctx_var, &args[0])?;
                let b = self.interval_operand(ctx, ctx_var, &args[1])?;
                Ok(format!("{name}({}, {}, {}, {})", a.0, a.1, b.0, b.1))
            }
            Expr::Call(name, args) if name == "empty" && args.len() == 1 => {
                // `empty(overlapinterval($a,$b))` — no overlap.
                match &args[0] {
                    Expr::Call(n2, a2) if n2 == "overlapinterval" && a2.len() == 2 => {
                        let a = self.interval_operand(ctx, ctx_var, &a2[0])?;
                        let b = self.interval_operand(ctx, ctx_var, &a2[1])?;
                        Ok(format!(
                            "overlapdays({}, {}, {}, {}) is null",
                            a.0, a.1, b.0, b.1
                        ))
                    }
                    other => Err(ArchError::Unsupported(format!(
                        "empty({other:?}) is not translatable"
                    ))),
                }
            }
            other => Err(ArchError::Unsupported(format!(
                "boolean expression {other:?} is not translatable"
            ))),
        }
    }

    /// A `(tstart, tend)` pair of SQL expressions for an interval operand.
    fn interval_operand(
        &self,
        ctx: &mut Ctx,
        ctx_var: Option<&VarInfo>,
        e: &Expr,
    ) -> Result<(String, String)> {
        match e {
            Expr::ContextItem => {
                let v = ctx_var
                    .ok_or_else(|| ArchError::Unsupported("'.' outside a predicate".into()))?;
                Ok((format!("{}.tstart", v.alias), format!("{}.tend", v.alias)))
            }
            Expr::Var(name) => {
                let v = ctx
                    .vars
                    .get(name)
                    .ok_or_else(|| ArchError::Unsupported(format!("unbound ${name}")))?;
                Ok((format!("{}.tstart", v.alias), format!("{}.tend", v.alias)))
            }
            Expr::Call(f, args) if f == "telement" && args.len() == 2 => {
                let d1 = date_literal(&args[0])?;
                let d2 = date_literal(&args[1])?;
                // Record a slicing window on the context variable.
                if let Some(v) = ctx_var {
                    ctx.bounds
                        .push((v.alias.clone(), TimeBound::Overlaps(d1, d2)));
                }
                Ok((format!("'{d1}'"), format!("'{d2}'")))
            }
            // $e/attr used as an interval — join the attribute table.
            Expr::Path { base: b, steps } => {
                if let (Expr::Var(parent), [(Step::Child(attr), preds)]) = (&**b, steps.as_slice())
                {
                    let parent_var = ctx
                        .vars
                        .get(parent)
                        .cloned()
                        .ok_or_else(|| ArchError::Unsupported(format!("unbound ${parent}")))?;
                    let spec = self.archis.relation(&parent_var.relation)?.clone();
                    let v = self.join_attribute(ctx, &spec, &parent_var, attr)?;
                    for p in preds {
                        self.predicate_to_sql(ctx, &v, p)?;
                    }
                    return Ok((format!("{}.tstart", v.alias), format!("{}.tend", v.alias)));
                }
                Err(ArchError::Unsupported(format!("interval operand {e:?}")))
            }
            other => Err(ArchError::Unsupported(format!(
                "interval operand {other:?}"
            ))),
        }
    }

    /// Require that `$x` (or a var path) is joined in — used by
    /// `not(empty(...))`.
    fn require_joined(&self, ctx: &mut Ctx, ctx_var: Option<&VarInfo>, e: &Expr) -> Result<()> {
        match e {
            Expr::Var(name) if ctx.vars.contains_key(name) => Ok(()),
            Expr::Path { .. } => {
                self.interval_operand(ctx, ctx_var, e)?;
                Ok(())
            }
            other => Err(ArchError::Unsupported(format!(
                "not(empty({other:?})) is not translatable"
            ))),
        }
    }

    /// A comparison; handles temporal accessors (step 4) and value paths.
    fn comparison(
        &self,
        ctx: &mut Ctx,
        ctx_var: Option<&VarInfo>,
        op: CmpOp,
        l: &Expr,
        r: &Expr,
    ) -> Result<String> {
        let ls = self.value_operand(ctx, ctx_var, l)?;
        let rs = self.value_operand(ctx, ctx_var, r)?;
        // §6.3 bookkeeping: tstart <= D / tend >= D patterns.
        self.record_bound(ctx, &ls, op, &rs);
        self.record_bound(ctx, &rs, flip_cmp(op), &ls);
        Ok(format!("{} {} {}", ls.sql, cmp_sql(op), rs.sql))
    }

    fn record_bound(&self, ctx: &mut Ctx, l: &Operand, op: CmpOp, r: &Operand) {
        if let (Some((alias, which)), Some(d)) = (&l.time_col, r.date) {
            match (which.as_str(), op) {
                ("tstart", CmpOp::Le) => ctx.bounds.push((alias.clone(), TimeBound::StartLe(d))),
                ("tend", CmpOp::Ge) => ctx.bounds.push((alias.clone(), TimeBound::EndGe(d))),
                _ => {}
            }
        }
    }

    /// A scalar operand: literal, temporal accessor, value path, ...
    fn value_operand(&self, ctx: &mut Ctx, ctx_var: Option<&VarInfo>, e: &Expr) -> Result<Operand> {
        match e {
            Expr::StrLit(s) => Ok(Operand {
                sql: format!("'{}'", s.replace('\'', "''")),
                time_col: None,
                date: Date::parse(s).ok(),
            }),
            Expr::IntLit(i) => Ok(Operand {
                sql: i.to_string(),
                time_col: None,
                date: None,
            }),
            Expr::DecLit(d) => Ok(Operand {
                sql: d.to_string(),
                time_col: None,
                date: None,
            }),
            Expr::Call(f, args) if f == "xs:date" || f == "date" => {
                let d = date_literal(&args[0])?;
                Ok(Operand {
                    sql: format!("'{d}'"),
                    time_col: None,
                    date: Some(d),
                })
            }
            Expr::Call(f, args) if (f == "tstart" || f == "tend") && args.len() == 1 => {
                let v = self.var_of(ctx, ctx_var, &args[0])?;
                Ok(Operand {
                    sql: format!("{}.{}", v.alias, f),
                    time_col: Some((v.alias.clone(), f.clone())),
                    date: None,
                })
            }
            Expr::Call(f, args)
                if (f == "current-date" || f == "current-dateTime") && args.is_empty() =>
            {
                // In comparison position the still-current check
                // `tend(.) = current-date()` means tend = 9999-12-31.
                Ok(Operand {
                    sql: format!("'{END_OF_TIME}'"),
                    time_col: None,
                    date: Some(END_OF_TIME),
                })
            }
            Expr::Call(f, args) if (f == "string" || f == "number") && args.len() == 1 => {
                self.value_operand(ctx, ctx_var, &args[0])
            }
            Expr::ContextItem => {
                let v = ctx_var
                    .ok_or_else(|| ArchError::Unsupported("'.' outside a predicate".into()))?;
                let VarKind::Attr(attr) = &v.kind else {
                    return Err(ArchError::Unsupported(
                        "'.' compared as a value on a tuple variable".into(),
                    ));
                };
                Ok(Operand {
                    sql: format!("{}.{}", v.alias, attr),
                    time_col: None,
                    date: None,
                })
            }
            Expr::Var(name) => {
                let v = ctx
                    .vars
                    .get(name)
                    .ok_or_else(|| ArchError::Unsupported(format!("unbound ${name}")))?
                    .clone();
                match &v.kind {
                    VarKind::Attr(attr) => Ok(Operand {
                        sql: format!("{}.{}", v.alias, attr),
                        time_col: None,
                        date: None,
                    }),
                    VarKind::Tuple => {
                        let spec = self.archis.relation(&v.relation)?;
                        Ok(Operand {
                            sql: format!("{}.{}", v.alias, spec.key),
                            time_col: None,
                            date: None,
                        })
                    }
                }
            }
            // Path predicates on implicit attributes: [name = "Bob"],
            // [id = "100002"], or $e/salary in a where clause.
            Expr::Path { base, steps } => {
                let (parent_var, attr, preds) = match (&**base, steps.as_slice()) {
                    (Expr::ContextItem, [(Step::Child(attr), preds)]) => {
                        let v = ctx_var.ok_or_else(|| {
                            ArchError::Unsupported("relative path outside a predicate".into())
                        })?;
                        (v.clone(), attr.clone(), preds.clone())
                    }
                    (Expr::Var(parent), [(Step::Child(attr), preds)]) => {
                        let v =
                            ctx.vars.get(parent).cloned().ok_or_else(|| {
                                ArchError::Unsupported(format!("unbound ${parent}"))
                            })?;
                        (v, attr.clone(), preds.clone())
                    }
                    _ => {
                        return Err(ArchError::Unsupported(format!(
                            "value path {e:?} is not translatable"
                        )))
                    }
                };
                let spec = self.archis.relation(&parent_var.relation)?.clone();
                if attr == spec.key {
                    // The key column lives on whichever table the parent
                    // variable already ranges over — no extra join.
                    return Ok(Operand {
                        sql: format!("{}.{}", parent_var.alias, spec.key),
                        time_col: None,
                        date: None,
                    });
                }
                if spec.is_composite_col(&attr) {
                    // Composite natural-key columns live on the key table
                    // (paper §5.1), i.e. on the tuple variable's alias.
                    if parent_var.kind != VarKind::Tuple {
                        return Err(ArchError::Unsupported(format!(
                            "composite key column {attr} through an attribute variable"
                        )));
                    }
                    return Ok(Operand {
                        sql: format!("{}.{attr}", parent_var.alias),
                        time_col: None,
                        date: None,
                    });
                }
                let v = self.join_attribute(ctx, &spec, &parent_var, &attr)?;
                for p in &preds {
                    self.predicate_to_sql(ctx, &v, p)?;
                }
                Ok(Operand {
                    sql: format!("{}.{attr}", v.alias),
                    time_col: None,
                    date: None,
                })
            }
            Expr::Arith(op, l, r) => {
                let ls = self.value_operand(ctx, ctx_var, l)?;
                let rs = self.value_operand(ctx, ctx_var, r)?;
                let sym = match op {
                    xquery::ast::ArithOp::Add => "+",
                    xquery::ast::ArithOp::Sub => "-",
                    xquery::ast::ArithOp::Mul => "*",
                    xquery::ast::ArithOp::Div => "/",
                    xquery::ast::ArithOp::Mod => {
                        return Err(ArchError::Unsupported("mod in SQL output".into()))
                    }
                };
                Ok(Operand {
                    sql: format!("({} {} {})", ls.sql, sym, rs.sql),
                    time_col: None,
                    date: None,
                })
            }
            other => Err(ArchError::Unsupported(format!(
                "operand {other:?} is not translatable"
            ))),
        }
    }

    /// The variable an accessor argument refers to (`.` or `$x`).
    fn var_of(&self, ctx: &Ctx, ctx_var: Option<&VarInfo>, e: &Expr) -> Result<VarInfo> {
        match e {
            Expr::ContextItem => ctx_var
                .cloned()
                .ok_or_else(|| ArchError::Unsupported("'.' outside a predicate".into())),
            Expr::Var(name) => ctx
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| ArchError::Unsupported(format!("unbound ${name}"))),
            other => Err(ArchError::Unsupported(format!(
                "accessor argument {other:?}"
            ))),
        }
    }

    /// Step 5 for aggregate mode: a scalar output expression.
    fn scalar_output(&self, ctx: &mut Ctx, ret: &Expr) -> Result<String> {
        Ok(self.value_operand(ctx, None, ret)?.sql)
    }

    /// Step 5 for XML modes: an XMLElement expression for the return
    /// clause.
    fn xml_output(&self, ctx: &mut Ctx, ret: &Expr) -> Result<String> {
        match ret {
            Expr::Var(_) | Expr::Path { .. } => {
                // An attribute (or tuple-key) element with its period.
                self.attr_element(ctx, ret)
            }
            Expr::ElementCtor { name, content } => {
                let mut parts = vec![format!("Name \"{name}\"")];
                if let Some(c) = content {
                    for item in sequence_items(c) {
                        parts.push(self.xml_output(ctx, &item)?);
                    }
                }
                Ok(format!("XMLElement({})", parts.join(", ")))
            }
            Expr::DirectCtor {
                name,
                attrs,
                content,
            } => {
                let mut parts = vec![format!("Name \"{name}\"")];
                if !attrs.is_empty() {
                    let mut attr_parts = Vec::new();
                    for (aname, aparts) in attrs {
                        let [xquery::ast::AttrPart::Text(t)] = aparts.as_slice() else {
                            return Err(ArchError::Unsupported(
                                "computed attributes in direct constructors".into(),
                            ));
                        };
                        attr_parts.push(format!("'{}' as \"{aname}\"", t.replace('\'', "''")));
                    }
                    parts.push(format!("XMLAttributes({})", attr_parts.join(", ")));
                }
                for item in content {
                    match item {
                        DirectContent::Text(t) => {
                            parts.push(format!("'{}'", t.replace('\'', "''")))
                        }
                        DirectContent::Expr(e) => {
                            for sub in sequence_items(e) {
                                parts.push(self.xml_output(ctx, &sub)?);
                            }
                        }
                        DirectContent::Child(e) => parts.push(self.xml_output(ctx, e)?),
                    }
                }
                Ok(format!("XMLElement({})", parts.join(", ")))
            }
            Expr::Call(f, args) if f == "overlapinterval" && args.len() == 2 => {
                let a = self.interval_operand(ctx, None, &args[0])?;
                let b = self.interval_operand(ctx, None, &args[1])?;
                Ok(format!(
                    "XMLElement(Name \"interval\", XMLAttributes(\
                     overlapstart({a0}, {a1}, {b0}, {b1}) as \"tstart\", \
                     overlapend({a0}, {a1}, {b0}, {b1}) as \"tend\"))",
                    a0 = a.0,
                    a1 = a.1,
                    b0 = b.0,
                    b1 = b.1
                ))
            }
            Expr::Call(f, args) if (f == "string" || f == "number") && args.len() == 1 => {
                // Scalar content inside an element.
                Ok(self.value_operand(ctx, None, &args[0])?.sql)
            }
            // Presentation forms of *now* (paper §4.3): rewrite the tend
            // attribute through the corresponding SQL UDF.
            Expr::Call(f, args) if (f == "rtend" || f == "externalnow") && args.len() == 1 => {
                let inner = self.attr_element(ctx, &args[0])?;
                // attr_element emits `<alias>.tend as "tend"`; route it
                // through the UDF instead.
                let rewritten = rewrite_tend_through_udf(&inner, f);
                Ok(rewritten)
            }
            Expr::StrLit(s) => Ok(format!("'{}'", s.replace('\'', "''"))),
            Expr::IntLit(i) => Ok(i.to_string()),
            other => Err(ArchError::Unsupported(format!(
                "return expression {other:?} is not translatable"
            ))),
        }
    }

    /// An `XMLElement(Name attr, XMLAttributes(tstart, tend), value)` for a
    /// variable or variable path.
    fn attr_element(&self, ctx: &mut Ctx, e: &Expr) -> Result<String> {
        // Resolve to a VarInfo (joining if it's a fresh path).
        let v: VarInfo = match e {
            Expr::Var(name) => ctx
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| ArchError::Unsupported(format!("unbound ${name}")))?,
            Expr::Path { base, steps } => {
                if let (Expr::Var(parent), [(Step::Child(attr), preds)]) =
                    (&**base, steps.as_slice())
                {
                    let parent_var = ctx
                        .vars
                        .get(parent)
                        .cloned()
                        .ok_or_else(|| ArchError::Unsupported(format!("unbound ${parent}")))?;
                    let spec = self.archis.relation(&parent_var.relation)?.clone();
                    if *attr == spec.key {
                        // `$e/id`: the key element carries the tuple period.
                        return Ok(format!(
                            "XMLElement(Name \"{key}\", XMLAttributes({a}.tstart as \"tstart\", \
                             {a}.tend as \"tend\"), {a}.{key})",
                            key = spec.key,
                            a = parent_var.alias
                        ));
                    }
                    let v = self.join_attribute(ctx, &spec, &parent_var, attr)?;
                    for p in preds {
                        self.predicate_to_sql(ctx, &v, p)?;
                    }
                    v
                } else {
                    return Err(ArchError::Unsupported(format!(
                        "return path {e:?} is not translatable"
                    )));
                }
            }
            _ => unreachable!("caller matched Var/Path"),
        };
        match &v.kind {
            VarKind::Attr(attr) => Ok(format!(
                "XMLElement(Name \"{attr}\", XMLAttributes({a}.tstart as \"tstart\", \
                 {a}.tend as \"tend\"), {a}.{attr})",
                a = v.alias
            )),
            VarKind::Tuple => {
                let spec = self.archis.relation(&v.relation)?;
                Ok(format!(
                    "XMLElement(Name \"{key}\", XMLAttributes({a}.tstart as \"tstart\", \
                     {a}.tend as \"tend\"), {a}.{key})",
                    key = spec.key,
                    a = v.alias
                ))
            }
        }
    }

    /// §6.3: rewrite snapshot / slicing queries with `segno` restrictions.
    ///
    /// Aliases that get *no* time restriction receive the **canonical-row
    /// condition** instead: segment archival stores a still-open tuple in
    /// every segment it was live in, so without it history queries would
    /// double-count. A row is canonical iff it is closed (its closed copy
    /// exists in exactly one segment) or it sits in the live segment (the
    /// only place open periods are unique).
    fn add_segment_conditions(&self, ctx: &mut Ctx, distinct: bool) -> Result<()> {
        // Collapse bounds per alias.
        let mut per_alias: std::collections::HashMap<String, (Option<Date>, Option<Date>)> =
            std::collections::HashMap::new();
        for (alias, b) in &ctx.bounds {
            let entry = per_alias.entry(alias.clone()).or_default();
            match b {
                // tstart <= D: the window cannot start after D.
                TimeBound::StartLe(d) => entry.1 = Some(entry.1.map_or(*d, |x: Date| x.min(*d))),
                // tend >= D: the window cannot end before D.
                TimeBound::EndGe(d) => entry.0 = Some(entry.0.map_or(*d, |x: Date| x.max(*d))),
                TimeBound::Overlaps(d1, d2) => {
                    entry.0 = Some(entry.0.map_or(*d1, |x: Date| x.max(*d1)));
                    entry.1 = Some(entry.1.map_or(*d2, |x: Date| x.min(*d2)));
                }
            }
        }
        let mut restricted: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (alias, (lo, hi)) in per_alias {
            let (Some(lo), Some(hi)) = (lo, hi) else {
                continue;
            };
            if hi < lo {
                continue;
            }
            let Some((relation, Some(attr))) = ctx.alias_tables.get(&alias).cloned() else {
                continue;
            };
            let segs = self.archis.segments_of(&relation, &attr)?;
            let archived: Vec<&SegmentInfo> =
                segs.iter().filter(|s| s.segno != LIVE_SEGNO).collect();
            if archived.is_empty() {
                continue; // unsegmented table — nothing to restrict
            }
            let covering: Vec<i64> = archived
                .iter()
                .filter(|s| s.start <= hi && s.end >= lo)
                .map(|s| s.segno)
                .collect();
            // Statistics-based pruning: a segment's *interval* only says
            // the window may overlap; the stats catalog records the actual
            // tstart/tend extremes of the rows stored there. Segments whose
            // stats prove no row can match (`tsmin > hi` or `temax < lo`)
            // are dropped before any I/O. The extremes are maintained
            // exactly (recomputed at archival, absorbed on row moves), so
            // the rewrite is loss-free. `ARCHIS_FORCE_PATH=rule` bypasses
            // it to reproduce the pre-stats behavior end to end.
            let covering: Vec<i64> = if planner::forced_path() == Some(planner::ForcedPath::Rule) {
                covering
            } else {
                let stats = self.archis.segment_stats(&relation, &attr)?;
                covering
                    .into_iter()
                    .filter(|segno| {
                        stats
                            .iter()
                            .find(|s| s.segno == *segno)
                            .is_none_or(|s| s.overlap_fraction(lo, hi) > 0.0)
                    })
                    .collect()
            };
            let live_start = segs.last().map(|s| s.start).unwrap_or(END_OF_TIME);
            let needs_live = hi >= live_start;
            match (covering.as_slice(), needs_live) {
                ([], true) => {
                    ctx.conds.push(format!("{alias}.segno = {LIVE_SEGNO}"));
                    restricted.insert(alias.clone());
                }
                ([], false) => {
                    // The window precedes all data; restrict to an
                    // impossible segment so the scan is empty-fast.
                    ctx.conds.push(format!("{alias}.segno = -1"));
                    restricted.insert(alias.clone());
                }
                ([one], false) => {
                    ctx.conds.push(format!("{alias}.segno = {one}"));
                    restricted.insert(alias.clone());
                }
                (many, false) if distinct => {
                    let lo_s = many.first().unwrap();
                    let hi_s = many.last().unwrap();
                    ctx.conds.push(format!(
                        "{alias}.segno >= {lo_s} and {alias}.segno <= {hi_s}"
                    ));
                    restricted.insert(alias.clone());
                }
                (many, true) if distinct => {
                    let lo_s = many.first().unwrap();
                    ctx.conds.push(format!(
                        "({alias}.segno >= {lo_s} or {alias}.segno = {LIVE_SEGNO})"
                    ));
                    restricted.insert(alias.clone());
                }
                _ => {
                    // Multi-segment without a duplicate-insensitive
                    // aggregate: duplicates across segments would be
                    // observable, so fall through to the canonical-row
                    // condition below (correctness first; the paper's
                    // slicing benchmarks count distinct employees).
                }
            }
        }
        // Canonical-row condition for every other attribute alias.
        for (alias, (_, attr)) in &ctx.alias_tables {
            if attr.is_some() && !restricted.contains(alias) {
                ctx.conds.push(format!(
                    "({alias}.tend != '{END_OF_TIME}' or {alias}.segno = {LIVE_SEGNO})",
                    END_OF_TIME = END_OF_TIME
                ));
            }
        }
        Ok(())
    }
}

#[derive(Debug)]
struct Operand {
    sql: String,
    /// `(alias, "tstart"|"tend")` when this operand is a period column.
    time_col: Option<(String, String)>,
    /// The date value when this operand is a date literal.
    date: Option<Date>,
}

enum OutputMode {
    Rows,
    WrappedElement { name: String },
    Aggregate { func: String, distinct: bool },
}

fn is_aggregate(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "max" | "min")
}

fn normalize_agg(name: &str) -> String {
    name.to_string()
}

fn is_interval_pred(name: &str) -> bool {
    matches!(
        name,
        "toverlaps" | "tcontains" | "tequals" | "tmeets" | "tprecedes"
    )
}

fn cmp_sql(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn date_literal(e: &Expr) -> Result<Date> {
    match e {
        Expr::StrLit(s) => {
            Date::parse(s).map_err(|err| ArchError::Unsupported(format!("bad date: {err}")))
        }
        Expr::Call(f, args) if (f == "xs:date" || f == "date") && args.len() == 1 => {
            date_literal(&args[0])
        }
        other => Err(ArchError::Unsupported(format!(
            "expected a date literal, got {other:?}"
        ))),
    }
}

/// Rewrite the `X.tend as "tend"` attribute of an XMLElement string to go
/// through the `rtend`/`externalnow` UDF.
fn rewrite_tend_through_udf(xml_element_sql: &str, udf: &str) -> String {
    // The tend attribute emitted by attr_element is `<alias>.tend as "tend"`.
    if let Some(pos) = xml_element_sql.find(".tend as \"tend\"") {
        // Find the alias start (the preceding delimiter).
        let head = &xml_element_sql[..pos];
        let alias_start = head
            .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map(|i| i + 1)
            .unwrap_or(0);
        let alias = &head[alias_start..];
        xml_element_sql.replace(
            &format!("{alias}.tend as \"tend\""),
            &format!("{udf}({alias}.tend) as \"tend\""),
        )
    } else {
        xml_element_sql.to_string()
    }
}

fn sequence_items(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Seq(items) => items.clone(),
        other => vec![other.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArchConfig, RelationSpec};
    use relstore::value::Value;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    /// ArchIS with Bob + Alice loaded (paper Table 1 shape).
    fn archis() -> ArchIS {
        let mut a = ArchIS::new(ArchConfig::default());
        a.create_relation(RelationSpec::employee()).unwrap();
        a.insert(
            "employee",
            1001,
            vec![
                ("name".into(), Value::Str("Bob".into())),
                ("salary".into(), Value::Int(60000)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str("d01".into())),
            ],
            d("1995-01-01"),
        )
        .unwrap();
        a.update(
            "employee",
            1001,
            vec![("salary".into(), Value::Int(70000))],
            d("1995-06-01"),
        )
        .unwrap();
        a.update(
            "employee",
            1001,
            vec![
                ("title".into(), Value::Str("Sr Engineer".into())),
                ("deptno".into(), Value::Str("d02".into())),
            ],
            d("1995-10-01"),
        )
        .unwrap();
        a.insert(
            "employee",
            1002,
            vec![
                ("name".into(), Value::Str("Alice".into())),
                ("salary".into(), Value::Int(80000)),
                ("title".into(), Value::Str("Manager".into())),
                ("deptno".into(), Value::Str("d01".into())),
            ],
            d("1994-03-01"),
        )
        .unwrap();
        a
    }

    #[test]
    fn translates_paper_query1_shape() {
        let a = archis();
        let sql = a
            .translate(
                r#"element title_history {
                    for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
                    return $t }"#,
            )
            .unwrap();
        assert!(sql.contains("XMLElement(Name \"title_history\""), "{sql}");
        assert!(sql.contains("XMLAgg("), "{sql}");
        assert!(sql.contains("employee_title"), "{sql}");
        assert!(sql.contains("employee_name"), "{sql}");
        // Step 2: the id join.
        assert!(sql.contains(".id = "), "{sql}");
        // Executes and produces the grouped history.
        let out = a.execute_sql(&sql).unwrap();
        let xml = out.xml_fragments().join("");
        assert!(xml.starts_with("<title_history>"), "{xml}");
        assert!(
            xml.contains(">Engineer<") && xml.contains(">Sr Engineer<"),
            "{xml}"
        );
        assert!(!xml.contains("Manager"), "{xml}");
    }

    #[test]
    fn translated_query1_matches_native_xquery() {
        let a = archis();
        // Native evaluation over the published H-document.
        let doc = a.publish("employee").unwrap();
        let mut resolver = xquery::MapResolver::new();
        resolver.insert("employees.xml", doc);
        let engine = xquery::Engine::new(resolver);
        let q = r#"for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
                   return $t"#;
        let native = engine.eval_to_xml(q).unwrap().replace('\n', "");
        let translated = a.query(q).unwrap().xml_fragments().join("");
        assert_eq!(native, translated);
    }

    #[test]
    fn translates_snapshot_predicates_to_columns() {
        let a = archis();
        let sql = a
            .translate(
                r#"for $s in doc("employees.xml")/employees/employee/salary
                       [tstart(.) <= xs:date("1995-03-01") and tend(.) >= xs:date("1995-03-01")]
                   return $s"#,
            )
            .unwrap();
        assert!(sql.contains(".tstart <= '1995-03-01'"), "{sql}");
        assert!(sql.contains(".tend >= '1995-03-01'"), "{sql}");
        let out = a.execute_sql(&sql).unwrap().xml_fragments().join("");
        assert!(out.contains("60000") && out.contains("80000"), "{out}");
        assert!(!out.contains("70000"), "{out}");
    }

    #[test]
    fn snapshot_gets_segment_restriction_after_archival() {
        let a = archis();
        a.force_archive("employee", d("1995-12-31")).unwrap();
        let sql = a
            .translate(
                r#"for $s in doc("employees.xml")/employees/employee/salary
                       [tstart(.) <= xs:date("1995-03-01") and tend(.) >= xs:date("1995-03-01")]
                   return $s"#,
            )
            .unwrap();
        assert!(
            sql.contains(".segno = 1"),
            "snapshot must hit segment 1: {sql}"
        );
        let out = a.execute_sql(&sql).unwrap().xml_fragments().join("");
        assert!(out.contains("60000") && out.contains("80000"), "{out}");
    }

    #[test]
    fn stats_prune_snapshot_into_dead_era() {
        // All history closed by 1995-12-31, archived into segment 1 whose
        // *interval* stretches to 1997-12-31. A snapshot inside the dead
        // era is interval-covered but statistics-pruned: no row in the
        // segment can match, so the translator emits the empty-fast
        // `segno = -1` restriction instead of scanning segment 1.
        let a = archis();
        a.delete("employee", 1001, d("1996-01-01")).unwrap();
        a.delete("employee", 1002, d("1996-01-01")).unwrap();
        a.force_archive("employee", d("1997-12-31")).unwrap();
        let q = r#"for $s in doc("employees.xml")/employees/employee/salary
                       [tstart(.) <= xs:date("1997-06-01") and tend(.) >= xs:date("1997-06-01")]
                   return $s"#;
        let sql = a.translate(q).unwrap();
        assert!(sql.contains(".segno = -1"), "stats must prune: {sql}");
        assert!(
            a.execute_sql(&sql).unwrap().xml_fragments().is_empty(),
            "nothing was alive in the dead era"
        );
        // Rule mode reproduces the pre-stats translation: interval-covered
        // segment 1 is scanned.
        planner::set_forced_path(Some(planner::ForcedPath::Rule));
        let sql_rule = a.translate(q).unwrap();
        planner::set_forced_path(None);
        assert!(sql_rule.contains(".segno = 1"), "{sql_rule}");
        assert!(
            a.execute_sql(&sql_rule).unwrap().xml_fragments().is_empty(),
            "same (empty) answer either way"
        );
    }

    #[test]
    fn snapshot_after_archive_window_goes_to_live() {
        let a = archis();
        a.force_archive("employee", d("1995-12-31")).unwrap();
        let sql = a
            .translate(
                r#"for $s in doc("employees.xml")/employees/employee/salary
                       [tstart(.) <= xs:date("1996-06-01") and tend(.) >= xs:date("1996-06-01")]
                   return $s"#,
            )
            .unwrap();
        assert!(sql.contains(&format!(".segno = {LIVE_SEGNO}")), "{sql}");
    }

    #[test]
    fn history_queries_get_canonical_condition() {
        let a = archis();
        let sql = a
            .translate(
                r#"count(for $s in doc("employees.xml")/employees/employee/salary return $s)"#,
            )
            .unwrap();
        assert!(sql.contains("9999-12-31"), "canonical-row condition: {sql}");
        let n = a.execute_sql(&sql).unwrap().scalar_rows().unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(n, 3, "Bob's two salary periods + Alice's one");
        // Stays correct after archival introduces duplicates.
        a.force_archive("employee", d("1995-12-31")).unwrap();
        let sql2 = a
            .translate(
                r#"count(for $s in doc("employees.xml")/employees/employee/salary return $s)"#,
            )
            .unwrap();
        let n2 = a.execute_sql(&sql2).unwrap().scalar_rows().unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(n2, 3, "duplicates across segments must not be counted");
    }

    #[test]
    fn slicing_with_distinct_count() {
        let a = archis();
        let q = r#"count(distinct-values(
            for $e in doc("employees.xml")/employees/employee
            for $s in $e/salary[. > 65000 and
                toverlaps(., telement(xs:date("1995-01-01"), xs:date("1996-01-01")))]
            return $e/id))"#;
        let sql = a.translate(q).unwrap();
        assert!(sql.contains("count(distinct"), "{sql}");
        assert!(sql.contains("toverlaps("), "{sql}");
        let n = a.execute_sql(&sql).unwrap().scalar_rows().unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(n, 2, "Bob (70000) and Alice (80000)");
    }

    #[test]
    fn temporal_join_with_tmeets() {
        let a = archis();
        let q = r#"max(for $e in doc("employees.xml")/employees/employee
                       for $s1 in $e/salary[toverlaps(., telement(xs:date("1995-01-01"), xs:date("1996-01-01")))]
                       for $s2 in $e/salary[tmeets($s1, .)]
                       return number($s2) - number($s1))"#;
        let sql = a.translate(q).unwrap();
        assert!(sql.contains("tmeets("), "{sql}");
        let raise = a.execute_sql(&sql).unwrap().scalar_rows().unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(raise, 10000, "Bob's 60000 → 70000 raise");
    }

    #[test]
    fn since_query7_shape_translates() {
        let a = archis();
        let q = r#"for $e in doc("employees.xml")/employees/employee
                   let $m := $e/title[. = "Sr Engineer" and tend(.) = current-date()]
                   let $d := $e/deptno[. = "d02" and tcontains($m, .)]
                   where not(empty($d)) and not(empty($m))
                   return <employee>{$e/id}</employee>"#;
        let sql = a.translate(q).unwrap();
        assert!(sql.contains("tcontains("), "{sql}");
        assert!(
            sql.contains("= '9999-12-31'"),
            "current-date() comparison: {sql}"
        );
        let xml = a.execute_sql(&sql).unwrap().xml_fragments().join("");
        assert!(xml.contains("1001"), "Bob qualifies: {xml}");
        assert!(!xml.contains("1002"), "{xml}");
    }

    #[test]
    fn unsupported_shapes_report_cleanly() {
        let a = archis();
        for q in [
            "1 + 1",
            r#"doc("nope.xml")/x/y"#,
            r#"for $s in doc("employees.xml")//salary return $s"#,
            r#"declare function local:f($x) { $x }; local:f(1)"#,
            r#"for $e in doc("employees.xml")/wrong/employee return $e/name"#,
        ] {
            let err = a.translate(q).unwrap_err();
            assert!(
                matches!(err, ArchError::Unsupported(_) | ArchError::NotFound(_)),
                "query {q:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn order_by_translates_to_sql() {
        let a = archis();
        let q = r#"for $s in doc("employees.xml")/employees/employee/salary
                   order by $s descending
                   return $s"#;
        let sql = a.translate(q).unwrap();
        assert!(sql.contains("order by"), "{sql}");
        assert!(sql.contains("desc"), "{sql}");
        let out = a.execute_sql(&sql).unwrap().xml_fragments();
        let values: Vec<i64> = out
            .iter()
            .map(|f| {
                xmldom::parse(f)
                    .unwrap()
                    .text_content()
                    .parse::<i64>()
                    .unwrap()
            })
            .collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(values, sorted, "descending salary order");
        assert_eq!(values.len(), 3);
    }

    #[test]
    fn rtend_and_externalnow_in_output() {
        let a = archis();
        let q = r#"for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
                   return externalnow($s)"#;
        let sql = a.translate(q).unwrap();
        assert!(sql.contains("externalnow("), "{sql}");
        let xml = a.execute_sql(&sql).unwrap().xml_fragments().join("");
        assert!(
            xml.contains("tend=\"now\""),
            "current period shown as now: {xml}"
        );
        assert!(
            xml.contains("tend=\"1995-05-31\""),
            "closed period untouched: {xml}"
        );

        let q2 = r#"for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
                    return rtend($s)"#;
        let xml2 = a.query(q2).unwrap().xml_fragments().join("");
        assert!(
            xml2.contains("tend=\"2005-01-01\""),
            "now instantiated: {xml2}"
        );
        assert!(!xml2.contains("9999-12-31"), "{xml2}");
    }

    #[test]
    fn table_construct_bypasses_xml_output() {
        // Paper §5.3: a table(...) return produces relational rows.
        let a = archis();
        let q = r#"for $e in doc("employees.xml")/employees/employee
                   for $s in $e/salary
                   return table($e/id, $s)"#;
        let sql = a.translate(q).unwrap();
        assert!(!sql.contains("XMLElement"), "{sql}");
        let rows = a.query(q).unwrap().scalar_rows().unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn translation_is_fast() {
        // §7.1: "for each of the 6 example queries ... less than 0.1ms".
        // Generous CI bound: 2ms per translation in debug builds.
        let a = archis();
        let q = r#"for $s in doc("employees.xml")/employees/employee[id = 1001]/salary
                   return $s"#;
        let start = std::time::Instant::now();
        for _ in 0..100 {
            a.translate(q).unwrap();
        }
        let per = start.elapsed() / 100;
        assert!(per.as_millis() < 2, "translation took {per:?}");
    }
}
