//! Relation specifications and system configuration.

use relstore::value::DataType;
use relstore::StorageKind;
use temporal::Date;

/// Description of one archived relation — enough to derive the current
/// table, the H-tables and the H-document view.
///
/// The paper's running example is
/// `employee(id, name, salary, title, deptno)` with key `id`, viewed as
/// `employees.xml` with root element `employees` and one `employee`
/// element per key.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSpec {
    /// Relation name; also the H-document tuple element name
    /// (`employee`).
    pub name: String,
    /// Root element of the H-document (`employees`).
    pub root: String,
    /// Document URI the XQuery views use (`employees.xml`).
    pub doc: String,
    /// Key attribute (integer; composite keys use a surrogate, §5.1).
    pub key: String,
    /// Non-key attributes with their types, in declaration order.
    pub attrs: Vec<(String, DataType)>,
    /// Composite natural-key columns stored alongside the surrogate in the
    /// key table (paper §5.1: `lineitem_id(id, supplierno, itemno,
    /// tstart, tend)`). Immutable over the tuple's history.
    pub composite: Vec<(String, DataType)>,
}

impl RelationSpec {
    /// Build a spec with the usual naming conventions
    /// (`name` → root `names` + `names.xml` is *not* assumed; callers pass
    /// the plural explicitly, matching the paper's `employee`/`employees`).
    pub fn new(name: &str, root: &str, key: &str, attrs: Vec<(&str, DataType)>) -> Self {
        RelationSpec {
            name: name.to_string(),
            root: root.to_string(),
            doc: format!("{root}.xml"),
            key: key.to_string(),
            attrs: attrs.into_iter().map(|(n, t)| (n.to_string(), t)).collect(),
            composite: Vec::new(),
        }
    }

    /// Builder: declare composite natural-key columns (stored in the key
    /// table next to the surrogate; immutable over a tuple's history).
    pub fn with_composite_key(mut self, cols: Vec<(&str, DataType)>) -> Self {
        self.composite = cols.into_iter().map(|(n, t)| (n.to_string(), t)).collect();
        self
    }

    /// Is this column part of the composite natural key?
    pub fn is_composite_col(&self, col: &str) -> bool {
        self.composite.iter().any(|(n, _)| n == col)
    }

    /// The paper's employee relation.
    pub fn employee() -> Self {
        RelationSpec::new(
            "employee",
            "employees",
            "id",
            vec![
                ("name", DataType::Str),
                ("salary", DataType::Int),
                ("title", DataType::Str),
                ("deptno", DataType::Str),
            ],
        )
    }

    /// The paper's department relation (`dept(deptno, deptname, mgrno)`,
    /// with the key surrogated to an integer id as §5.1 prescribes for
    /// non-integer keys).
    pub fn dept() -> Self {
        RelationSpec::new(
            "dept",
            "depts",
            "id",
            vec![
                ("deptno", DataType::Str),
                ("deptname", DataType::Str),
                ("mgrno", DataType::Int),
            ],
        )
    }

    /// Does the relation have this attribute?
    pub fn has_attr(&self, attr: &str) -> bool {
        self.attrs.iter().any(|(n, _)| n == attr)
    }

    /// Type of an attribute.
    pub fn attr_type(&self, attr: &str) -> Option<DataType> {
        self.attrs.iter().find(|(n, _)| n == attr).map(|(_, t)| *t)
    }
}

/// ArchIS configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// H-table layout: heap + indexes ("ArchIS-DB2") or clustered B+trees
    /// ("ArchIS-ATLaS").
    pub storage: StorageKind,
    /// Minimum tolerable usefulness `Umin` (paper §6.1). The paper's
    /// benchmarks use 0.4 (9 segments on their data set).
    pub umin: f64,
    /// BlockZIP block size in bytes (paper §8.2 uses 4000).
    pub block_size: usize,
    /// Buffer-pool capacity in pages.
    pub buffer_pages: usize,
    /// Pinned `current-date` for *now* semantics (determinism).
    pub now: Date,
    /// WAL group-commit batch size for durable ([`crate::ArchIS::open_file`])
    /// instances: commits per log fsync. 1 = fsync-per-commit durability;
    /// larger batches amortize the fsync across a window of archival
    /// transactions. Ignored by in-memory instances. Overridable at open
    /// time via the `ARCHIS_GROUP_COMMIT` environment variable.
    pub group_commit: usize,
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig {
            storage: StorageKind::Heap,
            umin: 0.4,
            block_size: 4000,
            buffer_pages: 4096,
            now: Date::from_ymd(2005, 1, 1).expect("valid"),
            group_commit: 8,
        }
    }
}

impl ArchConfig {
    /// The DB2-style configuration (heap tables + secondary indexes).
    pub fn db2_like() -> Self {
        ArchConfig {
            storage: StorageKind::Heap,
            ..Default::default()
        }
    }

    /// The ATLaS/BerkeleyDB-style configuration (clustered B+trees).
    pub fn atlas_like() -> Self {
        ArchConfig {
            storage: StorageKind::Clustered,
            ..Default::default()
        }
    }

    /// Builder: set Umin.
    pub fn with_umin(mut self, umin: f64) -> Self {
        self.umin = umin;
        self
    }

    /// Builder: set the pinned now.
    pub fn with_now(mut self, now: Date) -> Self {
        self.now = now;
        self
    }

    /// Builder: set buffer pool pages.
    pub fn with_buffer_pages(mut self, pages: usize) -> Self {
        self.buffer_pages = pages;
        self
    }

    /// Builder: set the WAL group-commit batch size (clamped to ≥ 1).
    pub fn with_group_commit(mut self, batch: usize) -> Self {
        self.group_commit = batch.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn employee_spec_matches_paper() {
        let e = RelationSpec::employee();
        assert_eq!(e.name, "employee");
        assert_eq!(e.root, "employees");
        assert_eq!(e.doc, "employees.xml");
        assert_eq!(e.key, "id");
        assert!(e.has_attr("salary"));
        assert!(!e.has_attr("mgrno"));
        assert_eq!(e.attr_type("salary"), Some(DataType::Int));
        assert_eq!(e.attr_type("name"), Some(DataType::Str));
    }

    #[test]
    fn composite_key_builder() {
        let li = RelationSpec::new("lineitem", "lineitems", "id", vec![("qty", DataType::Int)])
            .with_composite_key(vec![
                ("supplierno", DataType::Str),
                ("itemno", DataType::Int),
            ]);
        assert!(li.is_composite_col("supplierno"));
        assert!(!li.is_composite_col("qty"));
        assert_eq!(li.composite.len(), 2);
    }

    #[test]
    fn config_builders() {
        let c = ArchConfig::atlas_like().with_umin(0.26);
        assert_eq!(c.storage, StorageKind::Clustered);
        assert_eq!(c.umin, 0.26);
        assert_eq!(ArchConfig::default().block_size, 4000);
        assert_eq!(ArchConfig::default().group_commit, 8);
        assert_eq!(ArchConfig::default().with_group_commit(0).group_commit, 1);
        assert_eq!(ArchConfig::default().with_group_commit(64).group_commit, 64);
    }
}
