//! The relational-side temporal function library.
//!
//! Paper §5.4: "user-defined temporal functions discussed in Section 4.2
//! are implemented as equivalent functions in ArchIS" — XQuery-side
//! builtins like `toverlaps($a, $b)` map to SQL UDFs that take the
//! `tstart`/`tend` columns of the involved tuple variables. These are the
//! UDFs the translator emits and the `sqlxml` engine resolves.

use relstore::expr::FnRegistry;
use relstore::value::Value;
use relstore::{Result as StoreResult, StoreError};
use temporal::{Date, Interval, END_OF_TIME};

fn to_date(v: &Value) -> StoreResult<Date> {
    match v {
        Value::Date(d) => Ok(*d),
        Value::Str(s) => {
            Date::parse(s).map_err(|e| StoreError::Eval(format!("bad date literal: {e}")))
        }
        other => Err(StoreError::Eval(format!("expected a date, got {other}"))),
    }
}

fn interval(args: &[Value], at: usize) -> StoreResult<Interval> {
    let s = to_date(&args[at])?;
    let e = to_date(&args[at + 1])?;
    Interval::new(s, e).map_err(|e| StoreError::Eval(e.to_string()))
}

fn boolean(b: bool) -> Value {
    Value::Int(b as i64)
}

/// Register the temporal UDFs with *now* pinned to `now` (instantiation of
/// the `9999-12-31` internal encoding, paper §4.3).
pub fn register_temporal_udfs(reg: &mut FnRegistry, now: Date) {
    reg.register("toverlaps", |args| {
        Ok(boolean(interval(args, 0)?.overlaps(&interval(args, 2)?)))
    });
    reg.register("tcontains", |args| {
        Ok(boolean(interval(args, 0)?.contains(&interval(args, 2)?)))
    });
    reg.register("tequals", |args| {
        Ok(boolean(interval(args, 0)?.equals(&interval(args, 2)?)))
    });
    reg.register("tmeets", |args| {
        Ok(boolean(interval(args, 0)?.meets(&interval(args, 2)?)))
    });
    reg.register("tprecedes", |args| {
        Ok(boolean(interval(args, 0)?.precedes(&interval(args, 2)?)))
    });
    reg.register("overlapstart", |args| {
        Ok(match interval(args, 0)?.intersect(&interval(args, 2)?) {
            Some(iv) => Value::Date(iv.start()),
            None => Value::Null,
        })
    });
    reg.register("overlapend", |args| {
        Ok(match interval(args, 0)?.intersect(&interval(args, 2)?) {
            Some(iv) => Value::Date(iv.end()),
            None => Value::Null,
        })
    });
    reg.register("overlapdays", |args| {
        Ok(match interval(args, 0)?.intersect(&interval(args, 2)?) {
            Some(iv) => Value::Int(iv.timespan(END_OF_TIME) as i64),
            None => Value::Null,
        })
    });
    // tend(d): the user-facing end — current date for still-open periods.
    reg.register("tend", move |args| {
        let d = to_date(&args[0])?;
        Ok(Value::Date(if d == END_OF_TIME { now } else { d }))
    });
    reg.register("timespan", move |args| {
        let iv = interval(args, 0)?;
        Ok(Value::Int(iv.timespan(now) as i64))
    });
    // rtend(d): presentation form of one date value.
    reg.register("rtend", move |args| {
        let d = to_date(&args[0])?;
        Ok(Value::Date(if d == END_OF_TIME { now } else { d }))
    });
    reg.register("externalnow", move |args| {
        let d = to_date(&args[0])?;
        Ok(if d == END_OF_TIME {
            Value::Str("now".into())
        } else {
            Value::Str(d.to_string())
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> FnRegistry {
        let mut r = FnRegistry::new();
        register_temporal_udfs(&mut r, Date::parse("2005-01-01").unwrap());
        r
    }

    fn dv(s: &str) -> Value {
        Value::Date(Date::parse(s).unwrap())
    }

    fn call(name: &str, args: &[Value]) -> Value {
        reg().get(name).unwrap()(args).unwrap()
    }

    #[test]
    fn overlap_predicates() {
        let args = [
            dv("1995-01-01"),
            dv("1995-06-30"),
            dv("1995-06-01"),
            dv("1995-12-31"),
        ];
        assert_eq!(call("toverlaps", &args), Value::Int(1));
        assert_eq!(call("tprecedes", &args), Value::Int(0));
        assert_eq!(call("overlapstart", &args), dv("1995-06-01"));
        assert_eq!(call("overlapend", &args), dv("1995-06-30"));
        assert_eq!(call("overlapdays", &args), Value::Int(30));
        let disjoint = [
            dv("1995-01-01"),
            dv("1995-01-31"),
            dv("1995-06-01"),
            dv("1995-12-31"),
        ];
        assert_eq!(call("toverlaps", &disjoint), Value::Int(0));
        assert_eq!(call("overlapstart", &disjoint), Value::Null);
        assert_eq!(call("tprecedes", &disjoint), Value::Int(1));
    }

    #[test]
    fn containment_equality_adjacency() {
        let a = [
            dv("1995-01-01"),
            dv("1995-12-31"),
            dv("1995-03-01"),
            dv("1995-04-30"),
        ];
        assert_eq!(call("tcontains", &a), Value::Int(1));
        let e = [
            dv("1995-01-01"),
            dv("1995-12-31"),
            dv("1995-01-01"),
            dv("1995-12-31"),
        ];
        assert_eq!(call("tequals", &e), Value::Int(1));
        let m = [
            dv("1995-01-01"),
            dv("1995-05-31"),
            dv("1995-06-01"),
            dv("1995-12-31"),
        ];
        assert_eq!(call("tmeets", &m), Value::Int(1));
    }

    #[test]
    fn tend_substitutes_now() {
        assert_eq!(call("tend", &[dv("9999-12-31")]), dv("2005-01-01"));
        assert_eq!(call("tend", &[dv("1995-05-31")]), dv("1995-05-31"));
        assert_eq!(
            call("externalnow", &[dv("9999-12-31")]),
            Value::Str("now".into())
        );
    }

    #[test]
    fn accepts_string_dates() {
        // The translator may emit string literals; UDFs coerce them.
        let args = [
            Value::Str("1995-01-01".into()),
            Value::Str("1995-06-30".into()),
            dv("1995-06-01"),
            dv("1995-12-31"),
        ];
        assert_eq!(call("toverlaps", &args), Value::Int(1));
        let ints = vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)];
        assert!(reg().get("toverlaps").unwrap()(&ints).is_err());
    }

    #[test]
    fn timespan_clamps_open_periods_to_now() {
        assert_eq!(
            call("timespan", &[dv("2004-12-01"), dv("9999-12-31")]),
            Value::Int(32),
            "open period measured to pinned now"
        );
    }
}
