//! Update tracking and usefulness-based segment clustering
//! (paper §5.2 and §6).
//!
//! Changes to the current database arrive as [`Change`]s — either applied
//! immediately (the trigger path used on ArchIS-DB2) or buffered in an
//! [`UpdateLog`] and replayed (the log path used on ArchIS-ATLaS). Each
//! change maintains the current table *and* the H-tables:
//!
//! * insert ⇒ open periods (`[at, ∞]`) in the key table and in every
//!   attribute table,
//! * update ⇒ for **changed attributes only**, close the open period at
//!   `at − 1` and open a new one — unchanged attributes keep their period
//!   growing, which is exactly the temporal grouping that removes
//!   coalescing from query results (paper §3),
//! * delete ⇒ close every open period.
//!
//! Attribute tables are segment-clustered: live rows sit in the segment
//! [`LIVE_SEGNO`]; when usefulness `U = Nlive/Nall` of the live segment
//! drops below `Umin`, [`Archiver::maybe_archive`] runs the paper's
//! archival procedure (copy everything into a new numbered segment sorted
//! by id, carry only live rows forward, record the segment's interval).
//!
//! Segment scans here go through [`relstore::Table::index_lookup`] /
//! index range streams, which derive page runs from the B+tree leaf chain
//! and hand them to the buffer pool's prefetcher when it is enabled
//! (`ARCHIS_PREFETCH`): copying a whole live segment during archival, or
//! walking an archived segment's rows, overlaps the next leaf/heap pages'
//! I/O with processing the current ones.

use crate::htable::{self, LIVE_SEGNO};
use crate::spec::RelationSpec;
use crate::{ArchError, Result};
use parking_lot::Mutex;
use relstore::planner::{self, SegStat};
use relstore::value::Value;
use relstore::{Database, StorageKind};
use std::collections::HashMap;
use temporal::{Date, END_OF_TIME};

/// Fold one row that just moved into archived segment `segno` of `tname`
/// into that segment's statistics entry, keeping the exact fields (row
/// count, live count, tstart/tend min-max) in sync with the data. Rows
/// only move into archived segments on the rare same-day-as-archival
/// close paths, so a read-modify-write per moved row is fine.
fn absorb_into_stat(
    db: &Database,
    tname: &str,
    segno: i64,
    key: i64,
    ts: Date,
    te: Date,
) -> Result<()> {
    planner::ensure_stats_table(db)?;
    let mut stat = planner::load_stats(db, tname)
        .into_iter()
        .find(|s| s.segno == segno)
        .unwrap_or_else(|| SegStat::compute(tname, segno, &[]));
    stat.absorb(key, ts, te);
    planner::store_stat(db, &stat)?;
    Ok(())
}

/// One tracked change to the current database.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// A new tuple.
    Insert {
        /// Relation name.
        relation: String,
        /// Key value.
        key: i64,
        /// Attribute values (missing attributes stay NULL).
        values: Vec<(String, Value)>,
        /// Transaction date.
        at: Date,
    },
    /// Attribute updates on a current tuple.
    Update {
        /// Relation name.
        relation: String,
        /// Key value.
        key: i64,
        /// Changed attributes (NULL = attribute removed).
        changes: Vec<(String, Value)>,
        /// Transaction date.
        at: Date,
    },
    /// Removal of a current tuple.
    Delete {
        /// Relation name.
        relation: String,
        /// Key value.
        key: i64,
        /// Transaction date.
        at: Date,
    },
}

impl Change {
    /// The relation this change targets.
    pub fn relation(&self) -> String {
        match self {
            Change::Insert { relation, .. }
            | Change::Update { relation, .. }
            | Change::Delete { relation, .. } => relation.clone(),
        }
    }

    /// The transaction date.
    pub fn at(&self) -> Date {
        match self {
            Change::Insert { at, .. } | Change::Update { at, .. } | Change::Delete { at, .. } => {
                *at
            }
        }
    }
}

/// A buffered change stream (the paper's update-log tracking mode).
#[derive(Debug, Default, Clone)]
pub struct UpdateLog {
    changes: Vec<Change>,
}

impl UpdateLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a change.
    pub fn push(&mut self, change: Change) {
        self.changes.push(change);
    }

    /// The buffered changes in arrival order.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Number of buffered changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Drop all buffered changes.
    pub fn clear(&mut self) {
        self.changes.clear();
    }
}

/// A segment's catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment number (archived segments count from 1; the live segment is
    /// [`LIVE_SEGNO`]).
    pub segno: i64,
    /// First day covered.
    pub start: Date,
    /// Last day covered ([`END_OF_TIME`] for the live segment).
    pub end: Date,
}

/// Fetch one attribute's archival state. Attributes are seeded at
/// [`Archiver::create`] / reattach, so a miss means the caller named an
/// attribute outside the relation spec — surfaced as an error rather than
/// a panic so a bad request can never abort a commit in flight.
fn attr_state<'a>(
    state: &'a mut HashMap<String, AttrState>,
    attr: &str,
) -> Result<&'a mut AttrState> {
    state
        .get_mut(attr)
        .ok_or_else(|| ArchError::NotFound(format!("attribute state {attr}")))
}

#[derive(Debug, Clone)]
struct AttrState {
    /// Rows in the live segment.
    nall: u64,
    /// Rows in the live segment whose period is still open.
    nlive: u64,
    /// First day the live segment covers.
    live_start: Date,
    /// Next archived segment number.
    next_segno: i64,
}

/// The paper's equation (4): the expected length of a segment in days,
/// given the tuple count at its start `n0` (usefulness 100%), the
/// usefulness threshold `umin`, and per-day insertion / deletion / update
/// rates.
///
/// `Tseg = N0 (1 − Umin) / (Umin·Rupd − (1 − Umin)·Rins + Rdel)` — a
/// higher update or deletion rate shortens segments; a higher insertion
/// rate lengthens them. Returns `None` when the denominator is ≤ 0 (the
/// live segment's usefulness never drops below the threshold).
pub fn expected_segment_days(
    n0: f64,
    umin: f64,
    r_ins: f64,
    r_del: f64,
    r_upd: f64,
) -> Option<f64> {
    let denom = umin * r_upd - (1.0 - umin) * r_ins + r_del;
    (denom > 0.0).then(|| n0 * (1.0 - umin) / denom)
}

/// Per-relation history maintenance.
pub struct Archiver {
    spec: RelationSpec,
    umin: f64,
    state: Mutex<HashMap<String, AttrState>>,
}

impl Archiver {
    /// Create the H-tables for `spec` and an archiver over them.
    pub fn create(
        db: &Database,
        spec: &RelationSpec,
        storage: StorageKind,
        umin: f64,
    ) -> Result<Archiver> {
        htable::create_htables(db, spec, storage, temporal::DAWN_OF_TIME)?;
        let mut state = HashMap::new();
        for (attr, _) in &spec.attrs {
            state.insert(
                attr.clone(),
                AttrState {
                    nall: 0,
                    nlive: 0,
                    live_start: temporal::DAWN_OF_TIME,
                    next_segno: 1,
                },
            );
        }
        Ok(Archiver {
            spec: spec.clone(),
            umin,
            state: Mutex::new(state),
        })
    }

    /// The relation spec.
    pub fn spec(&self) -> &RelationSpec {
        &self.spec
    }

    /// Snapshot the per-attribute live-segment state for the durable
    /// catalog: `(attr, nall, nlive, live_start, next_segno)` rows.
    pub fn state_rows(&self) -> Vec<(String, u64, u64, Date, i64)> {
        let state = self.state.lock();
        let mut out: Vec<(String, u64, u64, Date, i64)> = state
            .iter()
            .map(|(attr, s)| (attr.clone(), s.nall, s.nlive, s.live_start, s.next_segno))
            .collect();
        out.sort();
        out
    }

    /// Reattach to already-persisted H-tables (they exist in `db`),
    /// restoring the live-segment state saved by [`Archiver::state_rows`].
    pub fn reopen(
        spec: &RelationSpec,
        umin: f64,
        rows: &[(String, u64, u64, Date, i64)],
    ) -> Archiver {
        let mut state = HashMap::new();
        for (attr, _) in &spec.attrs {
            let saved = rows.iter().find(|(a, ..)| a == attr);
            let (nall, nlive, live_start, next_segno) = match saved {
                Some((_, nall, nlive, ls, ns)) => (*nall, *nlive, *ls, *ns),
                None => (0, 0, temporal::DAWN_OF_TIME, 1),
            };
            state.insert(
                attr.clone(),
                AttrState {
                    nall,
                    nlive,
                    live_start,
                    next_segno,
                },
            );
        }
        Archiver {
            spec: spec.clone(),
            umin,
            state: Mutex::new(state),
        }
    }

    /// Usefulness of an attribute's live segment (1.0 when empty).
    pub fn usefulness(&self, attr: &str) -> f64 {
        let state = self.state.lock();
        match state.get(attr) {
            Some(s) if s.nall > 0 => s.nlive as f64 / s.nall as f64,
            _ => 1.0,
        }
    }

    /// Apply one change to the current table and the H-tables.
    pub fn apply(&self, db: &Database, change: &Change) -> Result<()> {
        match change {
            Change::Insert {
                key, values, at, ..
            } => self.insert(db, *key, values, *at),
            Change::Update {
                key, changes, at, ..
            } => self.update(db, *key, changes, *at),
            Change::Delete { key, at, .. } => self.delete(db, *key, *at),
        }
    }

    /// Apply a batch of changes, in order — semantically identical to
    /// calling [`Archiver::apply`] per change, but maximal runs of inserts
    /// with distinct keys go through one [`relstore::Table::insert_batch`]
    /// per touched table, amortizing B+tree descents and page pins.
    /// [`crate::ArchIS::apply_all`] wraps the whole batch in a single WAL
    /// transaction; the batch is the unit of atomicity there.
    pub fn apply_batch(&self, db: &Database, changes: &[Change]) -> Result<()> {
        let mut i = 0;
        while i < changes.len() {
            if matches!(changes[i], Change::Insert { .. }) {
                let mut seen = std::collections::HashSet::new();
                let mut j = i;
                while j < changes.len() {
                    let Change::Insert { key, .. } = &changes[j] else {
                        break;
                    };
                    if !seen.insert(*key) {
                        break; // re-insert of a batch key must take the checked path
                    }
                    j += 1;
                }
                if j - i > 1 {
                    self.insert_run(db, &changes[i..j])?;
                    i = j;
                    continue;
                }
            }
            self.apply(db, &changes[i])?;
            i += 1;
        }
        Ok(())
    }

    /// Batched variant of [`Archiver::insert`] for a run of inserts with
    /// distinct keys: validate every key up front, then write the current
    /// table, the key table, and each attribute H-table with one batch
    /// insert apiece.
    fn insert_run(&self, db: &Database, run: &[Change]) -> Result<()> {
        let current = db.table(&self.spec.name)?;
        let cur_idx = format!("cur_{}_{}", self.spec.name, self.spec.key);
        let mut cur_rows = Vec::with_capacity(run.len());
        let mut key_rows = Vec::with_capacity(run.len());
        let mut attr_rows: std::collections::HashMap<&str, Vec<Vec<Value>>> =
            std::collections::HashMap::new();
        for change in run {
            let Change::Insert {
                key, values, at, ..
            } = change
            else {
                unreachable!()
            };
            if !current
                .index_lookup(&cur_idx, &[Value::Int(*key)])?
                .is_empty()
            {
                return Err(ArchError::BadUpdate(format!(
                    "insert: key {key} already current in {}",
                    self.spec.name
                )));
            }
            let lookup = |name: &str| -> Value {
                values
                    .iter()
                    .find(|(a, _)| a == name)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(Value::Null)
            };
            let mut row = vec![Value::Int(*key)];
            for (c, _) in &self.spec.composite {
                row.push(lookup(c));
            }
            for (attr, _) in &self.spec.attrs {
                row.push(lookup(attr));
            }
            cur_rows.push(row);
            let mut key_row = vec![Value::Int(*key)];
            for (c, _) in &self.spec.composite {
                key_row.push(lookup(c));
            }
            key_row.push(Value::Date(*at));
            key_row.push(Value::Date(END_OF_TIME));
            key_rows.push(key_row);
            for (attr, value) in values {
                if value.is_null() || self.spec.is_composite_col(attr) {
                    continue;
                }
                if !self.spec.has_attr(attr) {
                    return Err(ArchError::NotFound(format!("attribute {attr}")));
                }
                attr_rows.entry(attr.as_str()).or_default().push(vec![
                    Value::Int(LIVE_SEGNO),
                    Value::Int(*key),
                    value.clone(),
                    Value::Date(*at),
                    Value::Date(END_OF_TIME),
                ]);
            }
        }
        current.insert_batch(cur_rows)?;
        db.table(&htable::key_table(&self.spec))?
            .insert_batch(key_rows)?;
        let mut state = self.state.lock();
        for (attr, rows) in attr_rows {
            let n = rows.len() as u64;
            db.table(&htable::attr_table(&self.spec, attr))?
                .insert_batch(rows)?;
            let s = attr_state(&mut state, attr)?;
            s.nall += n;
            s.nlive += n;
        }
        Ok(())
    }

    fn insert(&self, db: &Database, key: i64, values: &[(String, Value)], at: Date) -> Result<()> {
        let current = db.table(&self.spec.name)?;
        let cur_idx = format!("cur_{}_{}", self.spec.name, self.spec.key);
        if !current
            .index_lookup(&cur_idx, &[Value::Int(key)])?
            .is_empty()
        {
            return Err(ArchError::BadUpdate(format!(
                "insert: key {key} already current in {}",
                self.spec.name
            )));
        }
        let lookup = |name: &str| -> Value {
            values
                .iter()
                .find(|(a, _)| a == name)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null)
        };
        // Current table row in schema order (key, composite cols, attrs).
        let mut row = vec![Value::Int(key)];
        for (c, _) in &self.spec.composite {
            row.push(lookup(c));
        }
        for (attr, _) in &self.spec.attrs {
            row.push(lookup(attr));
        }
        current.insert(row)?;
        // Key table (with the composite natural-key columns, §5.1).
        let mut key_row = vec![Value::Int(key)];
        for (c, _) in &self.spec.composite {
            key_row.push(lookup(c));
        }
        key_row.push(Value::Date(at));
        key_row.push(Value::Date(END_OF_TIME));
        db.table(&htable::key_table(&self.spec))?.insert(key_row)?;
        // Attribute histories.
        let mut state = self.state.lock();
        for (attr, value) in values {
            if value.is_null() {
                continue;
            }
            if self.spec.is_composite_col(attr) {
                continue; // lives in the key table
            }
            if !self.spec.has_attr(attr) {
                return Err(ArchError::NotFound(format!("attribute {attr}")));
            }
            let t = db.table(&htable::attr_table(&self.spec, attr))?;
            t.insert(vec![
                Value::Int(LIVE_SEGNO),
                Value::Int(key),
                value.clone(),
                Value::Date(at),
                Value::Date(END_OF_TIME),
            ])?;
            let s = attr_state(&mut state, attr)?;
            s.nall += 1;
            s.nlive += 1;
        }
        Ok(())
    }

    fn update(&self, db: &Database, key: i64, changes: &[(String, Value)], at: Date) -> Result<()> {
        let current = db.table(&self.spec.name)?;
        let cur_idx = format!("cur_{}_{}", self.spec.name, self.spec.key);
        if current
            .index_lookup(&cur_idx, &[Value::Int(key)])?
            .is_empty()
        {
            return Err(ArchError::BadUpdate(format!(
                "update: key {key} is not current in {}",
                self.spec.name
            )));
        }
        let mut state = self.state.lock();
        let ncomposite = self.spec.composite.len();
        for (attr, new_value) in changes {
            if self.spec.is_composite_col(attr) {
                return Err(ArchError::BadUpdate(format!(
                    "composite key column {attr} is immutable over a tuple's history"
                )));
            }
            let Some(pos) = self.spec.attrs.iter().position(|(a, _)| a == attr) else {
                return Err(ArchError::NotFound(format!("attribute {attr}")));
            };
            // Current table: overwrite the attribute.
            let nv = new_value.clone();
            current.update_via_index(
                &cur_idx,
                &[Value::Int(key)],
                |_| true,
                move |row| row[pos + 1 + ncomposite] = nv.clone(),
            )?;
            // History table.
            let t = db.table(&htable::attr_table(&self.spec, attr))?;
            let idx = format!("{}_by_id", htable::attr_table(&self.spec, attr));
            let open: Vec<Vec<Value>> = t
                .index_lookup(&idx, &[Value::Int(key)])?
                .into_iter()
                .filter(|r| r[0] == Value::Int(LIVE_SEGNO) && r[4] == Value::Date(END_OF_TIME))
                .collect();
            let s = attr_state(&mut state, attr)?;
            match open.first() {
                Some(row) if &row[2] == new_value => {
                    // Value-equivalent: the open period simply continues
                    // (temporal grouping — no new history tuple).
                }
                Some(row) if row[3] == Value::Date(at) => {
                    // Same-day correction: replace the value in place.
                    let nv = new_value.clone();
                    let closed = nv.is_null();
                    t.update_via_index(
                        &idx,
                        &[Value::Int(key)],
                        |r| r[0] == Value::Int(LIVE_SEGNO) && r[4] == Value::Date(END_OF_TIME),
                        move |r| r[2] = nv.clone(),
                    )?;
                    if closed {
                        // NULLing an attribute on its start day removes it.
                        t.delete_via_index(&idx, &[Value::Int(key)], |r| {
                            r[0] == Value::Int(LIVE_SEGNO)
                                && r[4] == Value::Date(END_OF_TIME)
                                && r[2].is_null()
                        })?;
                        s.nall -= 1;
                        s.nlive -= 1;
                    }
                }
                Some(_) => {
                    // Close the open period at `at - 1`. When several
                    // changes share a date an archival may already have run
                    // *today*, making `at - 1 < live_start`: the closed
                    // period then lies entirely inside an archived segment,
                    // so the row moves there to keep the §6.1 invariants
                    // (an archived copy with `tend = ∞` exists but is
                    // superseded by this closed copy under the translator's
                    // duplicate-elimination rule).
                    let end = at.pred();
                    let seg = if end < s.live_start {
                        self.covering_segment(db, &htable::attr_table(&self.spec, attr), end)?
                    } else {
                        LIVE_SEGNO
                    };
                    t.update_via_index(
                        &idx,
                        &[Value::Int(key)],
                        |r| r[0] == Value::Int(LIVE_SEGNO) && r[4] == Value::Date(END_OF_TIME),
                        move |r| {
                            r[4] = Value::Date(end);
                            r[0] = Value::Int(seg);
                        },
                    )?;
                    s.nlive -= 1;
                    if seg != LIVE_SEGNO {
                        s.nall -= 1;
                        if let Some(ts) = open[0][3].as_date() {
                            absorb_into_stat(
                                db,
                                &htable::attr_table(&self.spec, attr),
                                seg,
                                key,
                                ts,
                                end,
                            )?;
                        }
                    }
                    // ... and open a new one unless the attribute was NULLed.
                    if !new_value.is_null() {
                        t.insert(vec![
                            Value::Int(LIVE_SEGNO),
                            Value::Int(key),
                            new_value.clone(),
                            Value::Date(at),
                            Value::Date(END_OF_TIME),
                        ])?;
                        s.nall += 1;
                        s.nlive += 1;
                    }
                }
                None => {
                    // Attribute previously NULL: open its first period.
                    if !new_value.is_null() {
                        t.insert(vec![
                            Value::Int(LIVE_SEGNO),
                            Value::Int(key),
                            new_value.clone(),
                            Value::Date(at),
                            Value::Date(END_OF_TIME),
                        ])?;
                        s.nall += 1;
                        s.nlive += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn delete(&self, db: &Database, key: i64, at: Date) -> Result<()> {
        let current = db.table(&self.spec.name)?;
        let cur_idx = format!("cur_{}_{}", self.spec.name, self.spec.key);
        let n = current.delete_via_index(&cur_idx, &[Value::Int(key)], |_| true)?;
        if n == 0 {
            return Err(ArchError::BadUpdate(format!(
                "delete: key {key} is not current in {}",
                self.spec.name
            )));
        }
        // Close the key-table period (tstart/tend sit after the composite
        // columns).
        let kt = db.table(&htable::key_table(&self.spec))?;
        let kidx = format!("{}_by_id", htable::key_table(&self.spec));
        let ts_at = 1 + self.spec.composite.len();
        kt.update_via_index(
            &kidx,
            &[Value::Int(key)],
            move |r| r[ts_at + 1] == Value::Date(END_OF_TIME),
            move |r| {
                // A tuple deleted the day it was created keeps a one-day life.
                let end = if r[ts_at] == Value::Date(at) {
                    at
                } else {
                    at.pred()
                };
                r[ts_at + 1] = Value::Date(end);
            },
        )?;
        // Close every open attribute period. As in `update`, a close date
        // that falls before the live segment's start (same-day changes
        // after an archival) moves the row into the archived segment that
        // covers it.
        let mut state = self.state.lock();
        for (attr, _) in &self.spec.attrs {
            let tname = htable::attr_table(&self.spec, attr);
            let t = db.table(&tname)?;
            let idx = format!("{tname}_by_id");
            let live_start = attr_state(&mut state, attr)?.live_start;
            let seg_of = |end: Date| -> Result<i64> {
                if end < live_start {
                    self.covering_segment(db, &tname, end)
                } else {
                    Ok(LIVE_SEGNO)
                }
            };
            let seg_at = seg_of(at)?;
            let seg_pred = seg_of(at.pred())?;
            let moved: std::cell::RefCell<Vec<(i64, Date, Date)>> =
                std::cell::RefCell::new(Vec::new());
            let n = t.update_via_index(
                &idx,
                &[Value::Int(key)],
                |r| r[0] == Value::Int(LIVE_SEGNO) && r[4] == Value::Date(END_OF_TIME),
                |r| {
                    // A tuple deleted the day it was created keeps a
                    // one-day life.
                    let (end, seg) = if r[3] == Value::Date(at) {
                        (at, seg_at)
                    } else {
                        (at.pred(), seg_pred)
                    };
                    r[4] = Value::Date(end);
                    if seg != LIVE_SEGNO {
                        r[0] = Value::Int(seg);
                        let ts = r[3].as_date().unwrap_or(end);
                        moved.borrow_mut().push((seg, ts, end));
                    }
                },
            )?;
            let moved = moved.into_inner();
            let s = attr_state(&mut state, attr)?;
            s.nlive -= n as u64;
            s.nall -= moved.len() as u64;
            for (seg, ts, end) in moved {
                absorb_into_stat(db, &tname, seg, key, ts, end)?;
            }
        }
        Ok(())
    }

    /// Archive every attribute whose live-segment usefulness fell below
    /// `Umin`. Returns the number of segments created.
    pub fn maybe_archive(&self, db: &Database, at: Date) -> Result<usize> {
        let mut archived = 0;
        for (attr, _) in &self.spec.attrs.clone() {
            let (nall, nlive) = {
                let state = self.state.lock();
                let s = &state[attr];
                (s.nall, s.nlive)
            };
            if nall > 0 && (nlive as f64 / nall as f64) < self.umin {
                self.archive_attr(db, attr, at)?;
                archived += 1;
            }
        }
        Ok(archived)
    }

    /// Archive the live segment of every non-empty attribute table
    /// regardless of usefulness.
    pub fn force_archive(&self, db: &Database, at: Date) -> Result<usize> {
        let mut archived = 0;
        for (attr, _) in &self.spec.attrs.clone() {
            let nall = self.state.lock()[attr].nall;
            if nall > 0 {
                self.archive_attr(db, attr, at)?;
                archived += 1;
            }
        }
        Ok(archived)
    }

    /// The archived segment of `tname` whose interval contains `end`:
    /// the one with the greatest start ≤ `end` (segments tile time).
    /// Falls back to the live segment if none is recorded yet.
    fn covering_segment(&self, db: &Database, tname: &str, end: Date) -> Result<i64> {
        let st = db.table(htable::SEGMENTS_TABLE)?;
        let mut best: Option<(Date, i64)> = None;
        for row in st.index_lookup("segments_by_tbl", &[Value::Str(tname.to_string())])? {
            let (Some(segno), Some(start)) = (row[1].as_int(), row[2].as_date()) else {
                continue;
            };
            if start <= end && best.is_none_or(|(bs, _)| start > bs) {
                best = Some((start, segno));
            }
        }
        Ok(best.map_or(LIVE_SEGNO, |(_, segno)| segno))
    }

    /// The paper's §6.1 archival procedure for one attribute table.
    fn archive_attr(&self, db: &Database, attr: &str, at: Date) -> Result<()> {
        let tname = htable::attr_table(&self.spec, attr);
        let t = db.table(&tname)?;
        let seg_idx = format!("{tname}_by_seg");
        let (segno, live_start) = {
            let mut state = self.state.lock();
            let s = attr_state(&mut state, attr)?;
            let segno = s.next_segno;
            s.next_segno += 1;
            (segno, s.live_start)
        };
        // 1-2. Record the segment interval [live_start, at].
        db.table(htable::SEGMENTS_TABLE)?.insert(vec![
            Value::Str(tname.clone()),
            Value::Int(segno),
            Value::Date(live_start),
            Value::Date(at),
        ])?;
        // 3. Copy ALL live-segment tuples into the new segment, sorted by id.
        let mut rows = t.index_lookup(&seg_idx, &[Value::Int(LIVE_SEGNO)])?;
        rows.sort_by(|a, b| a[1].total_cmp(&b[1]));
        let mut copies = Vec::with_capacity(rows.len());
        let mut live_rows = Vec::new();
        for row in &rows {
            let mut copy = row.clone();
            copy[0] = Value::Int(segno);
            copies.push(copy);
            if row[4] == Value::Date(END_OF_TIME) {
                live_rows.push(row.clone());
            }
        }
        // Fresh per-segment statistics for the cost-based planner, computed
        // from the copies already in hand (no extra scan).
        let stat_rows: Vec<(i64, Date, Date)> = copies
            .iter()
            .filter_map(|r| Some((r[1].as_int()?, r[3].as_date()?, r[4].as_date()?)))
            .collect();
        planner::ensure_stats_table(db)?;
        planner::store_stat(db, &SegStat::compute(&tname, segno, &stat_rows))?;
        // Already id-sorted, so the batch path appends in tree order.
        t.insert_batch(copies)?;
        // 4. Replace the live segment with only the still-live tuples.
        t.delete_via_index(&seg_idx, &[Value::Int(LIVE_SEGNO)], |_| true)?;
        t.insert_batch(live_rows.clone())?;
        let mut state = self.state.lock();
        let s = attr_state(&mut state, attr)?;
        s.nall = live_rows.len() as u64;
        s.nlive = live_rows.len() as u64;
        s.live_start = at.succ();
        Ok(())
    }

    /// Audit every structural invariant of this relation's H-tables and
    /// return a human-readable description of each violation (empty =
    /// consistent). Used by the crash-recovery torture tests: whatever
    /// prefix of history a recovery restores, it must be *internally*
    /// consistent — the §6.1 segment invariants, period sanity, coalesced
    /// per-key timelines, and archiver counters that match the data.
    pub fn verify_invariants(&self, db: &Database) -> Result<Vec<String>> {
        let mut bad = Vec::new();
        let state = self.state.lock();
        for (attr, _) in &self.spec.attrs {
            let tname = htable::attr_table(&self.spec, attr);
            let rows = db.table(&tname)?.scan()?;
            let segs = {
                // Inline `segments` to avoid re-locking state.
                let st = db.table(htable::SEGMENTS_TABLE)?;
                let mut out = Vec::new();
                for row in st.index_lookup("segments_by_tbl", &[Value::Str(tname.clone())])? {
                    out.push(SegmentInfo {
                        segno: row[1].as_int().unwrap_or(0),
                        start: row[2].as_date().unwrap_or(END_OF_TIME),
                        end: row[3].as_date().unwrap_or(END_OF_TIME),
                    });
                }
                out.sort_by_key(|s| s.segno);
                out
            };
            let by_segno: HashMap<i64, &SegmentInfo> = segs.iter().map(|s| (s.segno, s)).collect();

            // Per-row checks: period sanity + the §6.1 segment invariants.
            for r in &rows {
                let (Some(segno), Some(key), Some(ts), Some(te)) =
                    (r[0].as_int(), r[1].as_int(), r[3].as_date(), r[4].as_date())
                else {
                    bad.push(format!("{tname}: malformed history row {r:?}"));
                    continue;
                };
                if ts > te {
                    bad.push(format!("{tname} key {key}: tstart {ts} > tend {te}"));
                }
                if segno == LIVE_SEGNO {
                    continue;
                }
                match by_segno.get(&segno) {
                    None => bad.push(format!(
                        "{tname} key {key}: row in segment {segno} missing from the catalog"
                    )),
                    Some(seg) => {
                        if ts > seg.end {
                            bad.push(format!(
                                "{tname} key {key}: tstart {ts} > segment {segno} end {}",
                                seg.end
                            ));
                        }
                        if te < seg.start {
                            bad.push(format!(
                                "{tname} key {key}: tend {te} < segment {segno} start {}",
                                seg.start
                            ));
                        }
                    }
                }
            }

            // Per-key timeline checks. Archival copies duplicate rows
            // across segments; an open archived copy is superseded by its
            // closed counterpart (same key + tstart), so dedupe to the
            // earliest tend before checking coalescing.
            let mut timeline: HashMap<i64, HashMap<Date, Date>> = HashMap::new();
            for r in &rows {
                let (Some(key), Some(ts), Some(te)) =
                    (r[1].as_int(), r[3].as_date(), r[4].as_date())
                else {
                    continue;
                };
                let periods = timeline.entry(key).or_default();
                match periods.get_mut(&ts) {
                    Some(end) => *end = (*end).min(te),
                    None => {
                        periods.insert(ts, te);
                    }
                }
            }
            for (key, periods) in &timeline {
                let mut sorted: Vec<(Date, Date)> = periods.iter().map(|(a, b)| (*a, *b)).collect();
                sorted.sort();
                let mut open = 0;
                for w in sorted.windows(2) {
                    if w[1].0 <= w[0].1 {
                        bad.push(format!(
                            "{tname} key {key}: periods [{}, {}] and [{}, {}] overlap",
                            w[0].0, w[0].1, w[1].0, w[1].1
                        ));
                    }
                }
                for (_, te) in &sorted {
                    if *te == END_OF_TIME {
                        open += 1;
                    }
                }
                if open > 1 {
                    bad.push(format!("{tname} key {key}: {open} open periods"));
                }
            }

            // Archiver counters must describe the data they claim to.
            if let Some(s) = state.get(attr) {
                let nall = rows
                    .iter()
                    .filter(|r| r[0] == Value::Int(LIVE_SEGNO))
                    .count() as u64;
                let nlive = rows
                    .iter()
                    .filter(|r| r[0] == Value::Int(LIVE_SEGNO) && r[4] == Value::Date(END_OF_TIME))
                    .count() as u64;
                if s.nall != nall {
                    bad.push(format!(
                        "{tname}: state says nall={} but live segment holds {nall} rows",
                        s.nall
                    ));
                }
                if s.nlive != nlive {
                    bad.push(format!(
                        "{tname}: state says nlive={} but live segment holds {nlive} open rows",
                        s.nlive
                    ));
                }
            }
        }

        // Key table: period sanity + at most one open period per key.
        let kt = db.table(&htable::key_table(&self.spec))?;
        let ts_at = 1 + self.spec.composite.len();
        let mut open_per_key: HashMap<i64, usize> = HashMap::new();
        for r in kt.scan()? {
            let (Some(key), Some(ts), Some(te)) =
                (r[0].as_int(), r[ts_at].as_date(), r[ts_at + 1].as_date())
            else {
                bad.push(format!(
                    "{}: malformed key row {r:?}",
                    htable::key_table(&self.spec)
                ));
                continue;
            };
            if ts > te {
                bad.push(format!("key table key {key}: tstart {ts} > tend {te}"));
            }
            if te == END_OF_TIME {
                *open_per_key.entry(key).or_default() += 1;
            }
        }
        for (key, n) in open_per_key {
            if n > 1 {
                bad.push(format!("key table key {key}: {n} open periods"));
            }
        }
        Ok(bad)
    }

    /// Segment catalog for an attribute: archived segments in order, then
    /// the live segment.
    pub fn segments(&self, db: &Database, attr: &str) -> Result<Vec<SegmentInfo>> {
        let tname = htable::attr_table(&self.spec, attr);
        let st = db.table(htable::SEGMENTS_TABLE)?;
        let mut out = Vec::new();
        for row in st.index_lookup("segments_by_tbl", &[Value::Str(tname.clone())])? {
            out.push(SegmentInfo {
                segno: row[1].as_int().unwrap_or(0),
                start: row[2].as_date().unwrap_or(END_OF_TIME),
                end: row[3].as_date().unwrap_or(END_OF_TIME),
            });
        }
        out.sort_by_key(|s| s.segno);
        let live_start = self
            .state
            .lock()
            .get(attr)
            .map(|s| s.live_start)
            .unwrap_or(temporal::DAWN_OF_TIME);
        out.push(SegmentInfo {
            segno: LIVE_SEGNO,
            start: live_start,
            end: END_OF_TIME,
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::value::DataType;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn setup(umin: f64) -> (Database, Archiver) {
        let db = Database::in_memory();
        let spec = RelationSpec::employee();
        let a = Archiver::create(&db, &spec, StorageKind::Heap, umin).unwrap();
        (db, a)
    }

    fn bob_insert() -> Change {
        Change::Insert {
            relation: "employee".into(),
            key: 1001,
            values: vec![
                ("name".into(), Value::Str("Bob".into())),
                ("salary".into(), Value::Int(60000)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str("d01".into())),
            ],
            at: d("1995-01-01"),
        }
    }

    #[test]
    fn insert_opens_periods_everywhere() {
        let (db, a) = setup(0.0);
        a.apply(&db, &bob_insert()).unwrap();
        assert_eq!(db.table("employee").unwrap().row_count(), 1);
        let kt = db.table("employee_id").unwrap().scan().unwrap();
        assert_eq!(
            kt,
            vec![vec![
                Value::Int(1001),
                Value::Date(d("1995-01-01")),
                Value::Date(END_OF_TIME)
            ]]
        );
        let sal = db.table("employee_salary").unwrap().scan().unwrap();
        assert_eq!(sal.len(), 1);
        assert_eq!(sal[0][0], Value::Int(LIVE_SEGNO));
        assert_eq!(sal[0][2], Value::Int(60000));
    }

    #[test]
    fn update_changes_only_touched_attributes() {
        // Bob's history from paper Table 1.
        let (db, a) = setup(0.0);
        a.apply(&db, &bob_insert()).unwrap();
        a.apply(
            &db,
            &Change::Update {
                relation: "employee".into(),
                key: 1001,
                changes: vec![("salary".into(), Value::Int(70000))],
                at: d("1995-06-01"),
            },
        )
        .unwrap();
        // salary has two periods.
        let mut sal = db.table("employee_salary").unwrap().scan().unwrap();
        sal.sort_by(|x, y| x[3].total_cmp(&y[3]));
        assert_eq!(sal.len(), 2);
        assert_eq!(
            sal[0][4],
            Value::Date(d("1995-05-31")),
            "old period closed at day-1"
        );
        assert_eq!(sal[1][3], Value::Date(d("1995-06-01")));
        assert_eq!(sal[1][4], Value::Date(END_OF_TIME));
        // name has ONE period (unchanged attribute keeps growing).
        assert_eq!(db.table("employee_name").unwrap().scan().unwrap().len(), 1);
        // Current table reflects the new salary.
        let cur = db.table("employee").unwrap().scan().unwrap();
        assert_eq!(cur[0][2], Value::Int(70000));
    }

    #[test]
    fn value_equivalent_update_extends_not_duplicates() {
        let (db, a) = setup(0.0);
        a.apply(&db, &bob_insert()).unwrap();
        a.apply(
            &db,
            &Change::Update {
                relation: "employee".into(),
                key: 1001,
                changes: vec![("salary".into(), Value::Int(60000))],
                at: d("1995-06-01"),
            },
        )
        .unwrap();
        assert_eq!(
            db.table("employee_salary").unwrap().scan().unwrap().len(),
            1,
            "same value must not create a new history tuple"
        );
    }

    #[test]
    fn delete_closes_all_open_periods() {
        let (db, a) = setup(0.0);
        a.apply(&db, &bob_insert()).unwrap();
        a.apply(
            &db,
            &Change::Delete {
                relation: "employee".into(),
                key: 1001,
                at: d("1996-12-31"),
            },
        )
        .unwrap();
        assert_eq!(db.table("employee").unwrap().row_count(), 0);
        let kt = db.table("employee_id").unwrap().scan().unwrap();
        assert_eq!(kt[0][2], Value::Date(d("1996-12-30")));
        for t in [
            "employee_salary",
            "employee_name",
            "employee_title",
            "employee_deptno",
        ] {
            for row in db.table(t).unwrap().scan().unwrap() {
                assert_ne!(row[4], Value::Date(END_OF_TIME), "{t} period still open");
            }
        }
    }

    #[test]
    fn bad_updates_are_rejected() {
        let (db, a) = setup(0.0);
        assert!(matches!(
            a.apply(
                &db,
                &Change::Update {
                    relation: "employee".into(),
                    key: 1,
                    changes: vec![],
                    at: d("1995-01-01")
                }
            ),
            Err(ArchError::BadUpdate(_))
        ));
        a.apply(&db, &bob_insert()).unwrap();
        assert!(a.apply(&db, &bob_insert()).is_err(), "double insert");
        assert!(a
            .apply(
                &db,
                &Change::Delete {
                    relation: "employee".into(),
                    key: 9,
                    at: d("1995-01-01")
                }
            )
            .is_err());
        assert!(a
            .apply(
                &db,
                &Change::Update {
                    relation: "employee".into(),
                    key: 1001,
                    changes: vec![("bogus".into(), Value::Int(1))],
                    at: d("1995-02-01")
                }
            )
            .is_err());
    }

    #[test]
    fn usefulness_tracks_live_fraction() {
        let (db, a) = setup(0.0);
        a.apply(&db, &bob_insert()).unwrap();
        assert_eq!(a.usefulness("salary"), 1.0);
        for (i, date) in ["1996-01-01", "1997-01-01", "1998-01-01"]
            .iter()
            .enumerate()
        {
            a.apply(
                &db,
                &Change::Update {
                    relation: "employee".into(),
                    key: 1001,
                    changes: vec![("salary".into(), Value::Int(61000 + i as i64 * 1000))],
                    at: d(date),
                },
            )
            .unwrap();
        }
        // 4 salary rows, 1 live.
        assert!((a.usefulness("salary") - 0.25).abs() < 1e-9);
        assert_eq!(a.usefulness("name"), 1.0);
    }

    #[test]
    fn archive_respects_umin_and_invariants() {
        let (db, a) = setup(0.4);
        a.apply(&db, &bob_insert()).unwrap();
        for (i, date) in ["1996-01-01", "1997-01-01", "1998-01-01"]
            .iter()
            .enumerate()
        {
            a.apply(
                &db,
                &Change::Update {
                    relation: "employee".into(),
                    key: 1001,
                    changes: vec![("salary".into(), Value::Int(61000 + i as i64 * 1000))],
                    at: d(date),
                },
            )
            .unwrap();
        }
        let archived = a.maybe_archive(&db, d("1998-06-30")).unwrap();
        assert_eq!(archived, 1, "only salary fell below Umin");
        // Segment catalog has one archived + live.
        let segs = a.segments(&db, "salary").unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].segno, 1);
        assert_eq!(segs[0].end, d("1998-06-30"));
        assert_eq!(segs[1].segno, LIVE_SEGNO);
        assert_eq!(segs[1].start, d("1998-07-01"));
        // Paper invariants (1) tstart <= segend, (2) tend >= segstart for
        // every tuple in the archived segment.
        let rows = db.table("employee_salary").unwrap().scan().unwrap();
        let seg1: Vec<_> = rows.iter().filter(|r| r[0] == Value::Int(1)).collect();
        assert_eq!(seg1.len(), 4, "all tuples copied into the archived segment");
        for r in &seg1 {
            assert!(r[3].as_date().unwrap() <= segs[0].end, "invariant (1)");
            assert!(r[4].as_date().unwrap() >= segs[0].start, "invariant (2)");
        }
        // Live segment holds exactly the one still-open tuple.
        let live: Vec<_> = rows
            .iter()
            .filter(|r| r[0] == Value::Int(LIVE_SEGNO))
            .collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0][4], Value::Date(END_OF_TIME));
        assert_eq!(
            a.usefulness("salary"),
            1.0,
            "fresh live segment is 100% useful"
        );
    }

    #[test]
    fn snapshot_lives_in_exactly_one_archived_segment() {
        // The property behind the §6.3 single-segment snapshot rewrite.
        let (db, a) = setup(0.0);
        a.apply(&db, &bob_insert()).unwrap();
        a.apply(
            &db,
            &Change::Update {
                relation: "employee".into(),
                key: 1001,
                changes: vec![("salary".into(), Value::Int(70000))],
                at: d("1995-06-01"),
            },
        )
        .unwrap();
        a.force_archive(&db, d("1995-12-31")).unwrap();
        a.apply(
            &db,
            &Change::Update {
                relation: "employee".into(),
                key: 1001,
                changes: vec![("salary".into(), Value::Int(80000))],
                at: d("1996-06-01"),
            },
        )
        .unwrap();
        // Snapshot at 1995-07-01 (inside segment 1): the live tuple at that
        // time (70000) must be in segment 1 even though it was still open.
        let rows = db.table("employee_salary").unwrap().scan().unwrap();
        let day = d("1995-07-01");
        let hit: Vec<_> = rows
            .iter()
            .filter(|r| {
                r[0] == Value::Int(1)
                    && r[3].as_date().unwrap() <= day
                    && r[4].as_date().unwrap() >= day
            })
            .collect();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0][2], Value::Int(70000));
    }

    #[test]
    fn archival_records_segment_statistics() {
        let (db, a) = setup(0.0);
        a.apply(&db, &bob_insert()).unwrap();
        a.apply(
            &db,
            &Change::Update {
                relation: "employee".into(),
                key: 1001,
                changes: vec![("salary".into(), Value::Int(70000))],
                at: d("1995-06-01"),
            },
        )
        .unwrap();
        a.force_archive(&db, d("1995-12-31")).unwrap();
        let stats = planner::load_stats(&db, "employee_salary");
        assert_eq!(stats.len(), 1, "one archived segment, one stats row");
        let s = &stats[0];
        assert_eq!(s.segno, 1);
        assert_eq!(s.rows, 2, "both history rows were copied into segment 1");
        assert_eq!(s.live, 1, "one open period carried into the copy");
        assert_eq!(s.tsmin, d("1995-01-01"));
        assert_eq!(s.tsmax, d("1995-06-01"));
        assert_eq!(s.temax, END_OF_TIME);
    }

    #[test]
    fn row_moves_into_archived_segment_update_its_statistics() {
        // A close dated before the live segment's start moves the row into
        // the covering archived segment; the stats row must track it so
        // fsck's exact audit stays clean.
        let (db, a) = setup(0.0);
        a.apply(&db, &bob_insert()).unwrap();
        a.force_archive(&db, d("1995-06-01")).unwrap();
        // Same-day delete: at.pred() < live_start, so the closed rows land
        // in segment 1.
        a.apply(
            &db,
            &Change::Delete {
                relation: "employee".into(),
                key: 1001,
                at: d("1995-06-02"),
            },
        )
        .unwrap();
        let stats = planner::load_stats(&db, "employee_salary");
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        let rows = db.table("employee_salary").unwrap().scan().unwrap();
        let in_seg1 = rows.iter().filter(|r| r[0] == Value::Int(1)).count() as i64;
        let live_seg1 = rows
            .iter()
            .filter(|r| r[0] == Value::Int(1) && r[4] == Value::Date(END_OF_TIME))
            .count() as i64;
        assert_eq!(s.rows, in_seg1, "stats row count tracks the moved row");
        assert_eq!(s.live, live_seg1);
    }

    #[test]
    fn update_log_replays() {
        let mut log = UpdateLog::new();
        log.push(bob_insert());
        log.push(Change::Update {
            relation: "employee".into(),
            key: 1001,
            changes: vec![("title".into(), Value::Str("Sr Engineer".into()))],
            at: d("1995-10-01"),
        });
        assert_eq!(log.len(), 2);
        let (db, a) = setup(0.0);
        for c in log.changes() {
            a.apply(&db, c).unwrap();
        }
        assert_eq!(db.table("employee_title").unwrap().scan().unwrap().len(), 2);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn equation4_segment_length() {
        // Higher update/deletion rates shorten segments; higher insertion
        // rates lengthen them (paper §6.2).
        let base = expected_segment_days(1000.0, 0.4, 0.0, 0.0, 2.0).unwrap();
        let more_updates = expected_segment_days(1000.0, 0.4, 0.0, 0.0, 4.0).unwrap();
        assert!(more_updates < base);
        let with_inserts = expected_segment_days(1000.0, 0.4, 0.5, 0.0, 2.0).unwrap();
        assert!(with_inserts > base);
        let with_deletes = expected_segment_days(1000.0, 0.4, 0.0, 1.0, 2.0).unwrap();
        assert!(with_deletes < base);
        // Higher usefulness threshold ⇒ shorter segment.
        let higher_umin = expected_segment_days(1000.0, 0.6, 0.0, 0.0, 2.0).unwrap();
        assert!(higher_umin < base);
        // Insert-dominated workloads never trip the threshold.
        assert_eq!(expected_segment_days(1000.0, 0.4, 10.0, 0.0, 1.0), None);
    }

    #[test]
    fn attribute_nulling_closes_without_reopening() {
        let db = Database::in_memory();
        let spec = RelationSpec::new("gadget", "gadgets", "id", vec![("note", DataType::Str)]);
        let a = Archiver::create(&db, &spec, StorageKind::Heap, 0.0).unwrap();
        a.apply(
            &db,
            &Change::Insert {
                relation: "gadget".into(),
                key: 1,
                values: vec![("note".into(), Value::Str("x".into()))],
                at: d("2000-01-01"),
            },
        )
        .unwrap();
        a.apply(
            &db,
            &Change::Update {
                relation: "gadget".into(),
                key: 1,
                changes: vec![("note".into(), Value::Null)],
                at: d("2000-02-01"),
            },
        )
        .unwrap();
        let rows = db.table("gadget_note").unwrap().scan().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::Date(d("2000-01-31")));
    }
}
