//! Minimal reader/writer for `lint-baseline.toml`.
//!
//! The baseline is a deliberately tiny TOML subset — `[section]` headers
//! and `"key" = integer` entries — written deterministically (sorted keys)
//! so diffs stay reviewable and the ratchet check can demand an exact
//! match. No external TOML crate is available offline, and nothing more is
//! needed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

pub type Section = BTreeMap<String, usize>;

#[derive(Default, Debug, PartialEq, Eq)]
pub struct Baseline {
    pub sections: BTreeMap<String, Section>,
}

impl Baseline {
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut sections: BTreeMap<String, Section> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim().to_string();
                sections.entry(name.clone()).or_default();
                current = Some(name);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("baseline line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value.trim().parse().map_err(|_| {
                format!("baseline line {}: bad count {:?}", lineno + 1, value.trim())
            })?;
            let section = current.as_ref().ok_or_else(|| {
                format!("baseline line {}: entry before any [section]", lineno + 1)
            })?;
            sections
                .entry(section.clone())
                .or_default()
                .insert(key, value);
        }
        Ok(Baseline { sections })
    }

    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-path ratchet baseline, maintained by `archis-lint`.\n\
             # Counts cover non-test code and may only decrease; after a burndown,\n\
             # regenerate with `cargo run -p archis-lint --release -- --update-baseline`.\n",
        );
        for (name, section) in &self.sections {
            let _ = writeln!(out, "\n[{name}]");
            for (key, value) in section {
                let _ = writeln!(out, "\"{key}\" = {value}");
            }
        }
        out
    }

    pub fn section(&self, name: &str) -> Section {
        self.sections.get(name).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = Baseline::default();
        b.sections
            .entry("panic-path".into())
            .or_default()
            .insert("crates/relstore/src/btree.rs".into(), 8);
        b.sections
            .entry("slice-index".into())
            .or_default()
            .insert("crates/core/src/value.rs".into(), 3);
        let text = b.render();
        assert_eq!(Baseline::parse(&text).unwrap(), b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(
            Baseline::parse("\"k\" = 3").is_err(),
            "entry before section"
        );
        assert!(Baseline::parse("[s]\nk = x").is_err(), "non-numeric count");
        assert!(Baseline::parse("[s]\njunk").is_err(), "missing equals");
    }
}
