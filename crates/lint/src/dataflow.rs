//! Generic forward-fixpoint dataflow solver over [`crate::cfg::Cfg`].
//!
//! An [`Analysis`] supplies the lattice: a `Fact` type with a `join` that
//! reports whether anything changed, an entry fact, and a transfer
//! function applied per node. The solver runs the usual worklist loop and
//! returns the fact *on entry* to every node (`None` = unreachable from
//! the function entry), which checkers then combine with per-node events
//! to emit diagnostics.
//!
//! Termination is bounded by an iteration cap proportional to the graph
//! size. The cap is a **hard error**, not a silent skip: hitting it means
//! either a lattice whose join does not converge (a bug in a rule) or a
//! pathological CFG, and both must fail the lint run loudly (exit 2)
//! rather than quietly under-report.

use crate::cfg::Cfg;

/// A forward dataflow analysis. Facts must form a join-semilattice:
/// `join` merges the fact flowing in along one more edge and returns
/// `true` when the merge grew the fact (so the solver knows to requeue).
pub trait Analysis {
    type Fact: Clone;

    /// Fact at the function entry node.
    fn entry_fact(&self) -> Self::Fact;

    /// Merge `other` into `fact`; return `true` if `fact` changed.
    fn join(&self, fact: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Apply node `idx`'s effect to `fact` (entry fact → exit fact).
    fn transfer(&self, idx: usize, fact: &mut Self::Fact);
}

/// Entry facts per node after the fixpoint; `None` for nodes unreachable
/// from the CFG entry (e.g. code after a diverging match).
pub type EntryFacts<F> = Vec<Option<F>>;

/// Solve `analysis` over `cfg` with the default iteration cap.
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Result<EntryFacts<A::Fact>, String> {
    // Each node can be revisited once per lattice ascent; chain heights in
    // our rules are O(pins + vars) which is O(nodes), so nodes² plus slack
    // is generous — real functions converge in a handful of passes.
    let cap = 4096 + 64 * cfg.nodes.len() * cfg.nodes.len();
    solve_with_cap(cfg, analysis, cap)
}

/// Solve with an explicit iteration cap (exposed so tests can prove the
/// cap is a hard error rather than a silent skip).
pub fn solve_with_cap<A: Analysis>(
    cfg: &Cfg,
    analysis: &A,
    cap: usize,
) -> Result<EntryFacts<A::Fact>, String> {
    let mut facts: EntryFacts<A::Fact> = vec![None; cfg.nodes.len()];
    facts[cfg.entry] = Some(analysis.entry_fact());
    let mut worklist = std::collections::VecDeque::new();
    worklist.push_back(cfg.entry);
    let mut queued = vec![false; cfg.nodes.len()];
    queued[cfg.entry] = true;
    let mut iterations = 0usize;
    while let Some(n) = worklist.pop_front() {
        queued[n] = false;
        iterations += 1;
        if iterations > cap {
            return Err(format!(
                "dataflow fixpoint exceeded {cap} iterations on a {}-node CFG \
                 (non-converging lattice join?)",
                cfg.nodes.len()
            ));
        }
        let mut out = match &facts[n] {
            Some(f) => f.clone(),
            None => continue,
        };
        analysis.transfer(n, &mut out);
        for e in cfg.nodes[n].succs.clone() {
            let changed = match &mut facts[e.to] {
                Some(existing) => analysis.join(existing, &out),
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed && !queued[e.to] {
                queued[e.to] = true;
                worklist.push_back(e.to);
            }
        }
    }
    Ok(facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::model::SourceFile;
    use std::path::PathBuf;

    /// Reachability: Fact = (), join never changes → one visit per node.
    struct Reach;
    impl Analysis for Reach {
        type Fact = ();
        fn entry_fact(&self) {}
        fn join(&self, _: &mut (), _: &()) -> bool {
            false
        }
        fn transfer(&self, _: usize, _: &mut ()) {}
    }

    /// A deliberately broken lattice whose join always reports change.
    struct NeverConverges;
    impl Analysis for NeverConverges {
        type Fact = u32;
        fn entry_fact(&self) -> u32 {
            0
        }
        fn join(&self, fact: &mut u32, _: &u32) -> bool {
            *fact = fact.wrapping_add(1);
            true
        }
        fn transfer(&self, _: usize, _: &mut u32) {}
    }

    fn cfg_of(src: &str) -> (SourceFile, Cfg) {
        let f = SourceFile::parse(PathBuf::from("x.rs"), src);
        let cfg = Cfg::build(&f, &f.functions[0]);
        (f, cfg)
    }

    #[test]
    fn straight_line_reaches_every_node() {
        let (_, cfg) = cfg_of("fn f() { a(); b(); c(); }");
        let facts = solve(&cfg, &Reach).unwrap();
        assert!(facts.iter().all(Option::is_some), "all nodes reachable");
    }

    #[test]
    fn code_after_unconditional_return_is_unreachable() {
        let (_, cfg) = cfg_of("fn f() { return; unreachable_stmt(); }");
        let facts = solve(&cfg, &Reach).unwrap();
        assert!(
            facts.iter().any(Option::is_none),
            "node after return has no entry fact"
        );
    }

    #[test]
    fn loops_converge_under_default_cap() {
        let (_, cfg) = cfg_of(
            "fn f() {\n  'outer: loop {\n    while cond() {\n      if x() { continue 'outer; }\n      if y() { break; }\n    }\n    if z() { break; }\n  }\n}",
        );
        solve(&cfg, &Reach).expect("nested labeled loops reach fixpoint");
    }

    #[test]
    fn cap_is_a_hard_error() {
        let (_, cfg) = cfg_of("fn f() { loop { step(); } }");
        let err = solve_with_cap(&cfg, &NeverConverges, 8).unwrap_err();
        assert!(err.contains("exceeded 8 iterations"), "{err}");
    }
}
