//! `archis-lint` — repo-specific static analysis for the ArchIS engine.
//!
//! Nine analyses run over the storage-engine sources (`crates/relstore/src`,
//! `crates/core/src`, `crates/replica/src`, `crates/bench/src` and
//! `crates/sqlxml/src` by
//! default), built on a hand-rolled token scanner (no external parser
//! crates; the build is offline). Six are token-pattern rules; three are
//! flow-sensitive, built on a per-function CFG ([`cfg`]) and a forward
//! fixpoint solver ([`dataflow`]):
//!
//! 1. **WAL discipline** (`wal-discipline`) — direct page writes, file
//!    truncation or raw file creation outside the sanctioned modules.
//! 2. **Session layer** (`session-layer`) — `BTree::open` outside the
//!    session/snapshot layer, which would bypass MVCC root management.
//! 3. **Lock order** (`lock-order`, `lock-across-io`) — cycles in the
//!    inter-procedural lock-acquisition graph, and engine-level locks held
//!    across pager/file I/O.
//! 4. **Panic-path ratchet** (`panic-path`, `slice-index`) — per-file
//!    counts of `unwrap`/`expect`/`panic!` and slice indexing in non-test
//!    code, compared against the committed `lint-baseline.toml`.
//! 5. **Error-drop audit** (`error-drop`) — `let _ =` and statement-final
//!    `.ok()` on the commit/recovery/vacuum paths.
//! 6. **Planner discipline** (`planner-bypass`) — direct raw access-path
//!    calls (`stream`, `index_range`, `cluster_range`, ...) in the query
//!    paths, which would hand-wire a plan past the cost-based planner and
//!    its segment pruning.
//! 7. **Pin leaks** (`pin-leak`) — flow-sensitive: snapshot pins must be
//!    released on every path and must not be live across
//!    checkpoint/vacuum/compress calls.
//! 8. **WAL bracket** (`wal-bracket`) — flow-sensitive: mutations between
//!    transaction begin and commit must not escape via `?`/`return`
//!    without an abort edge.
//! 9. **Corrupt taint** (`corrupt-taint`) — flow-sensitive:
//!    `StoreError::Corrupt` results must propagate; defaulting them away
//!    outside the sanctioned degradation helpers is a finding.
//!
//! Individual sites are suppressed with a `// lint:allow(reason)` comment
//! on the same line or the line(s) immediately above; the reason is
//! mandatory by convention and should say why the invariant holds.
//! Suppression is applied centrally in [`run`] (the rules report every
//! finding), so the JSON report can carry the allow-site of each silenced
//! diagnostic.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub mod baseline;
pub mod cfg;
pub mod dataflow;
pub mod lexer;
pub mod model;
pub mod rules {
    pub mod corrupt_taint;
    pub mod error_drop;
    pub mod lock_order;
    pub mod panic_ratchet;
    pub mod pin_leak;
    pub mod planner_bypass;
    pub mod session_layer;
    pub mod wal_bracket;
    pub mod wal_discipline;
}

use baseline::Baseline;
use model::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// One finding, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: PathBuf,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    pub fn new(file: &Path, line: u32, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_path_buf(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// What to scan and where the policy knobs sit. `Config::for_root` is the
/// real tree's configuration; fixture tests build their own.
pub struct Config {
    /// Repo root; scanned paths and diagnostics are relative to it.
    pub root: PathBuf,
    /// Directories (relative to `root`) whose `.rs` files are scanned.
    pub scan_dirs: Vec<PathBuf>,
    /// File-name suffixes allowed to write pages / truncate / open files.
    pub wal_allow: Vec<String>,
    /// File-name suffixes allowed to call `BTree::open` (the session /
    /// snapshot layer that owns root-page lifetimes).
    pub btree_open_allow: Vec<String>,
    /// File-name suffixes audited by the error-drop rule (the
    /// commit/recovery/vacuum paths).
    pub error_drop_files: Vec<String>,
    /// File-name suffixes audited by the planner-bypass rule (the query
    /// paths, where access-path choice belongs to the cost-based planner).
    pub planner_query_files: Vec<String>,
    /// Receiver-field → candidate impl types, used to resolve calls like
    /// `self.pool.get(...)` through the stoplist of common method names.
    pub receiver_hints: Vec<(String, Vec<String>)>,
    /// Path (relative to `root`) of the panic-ratchet baseline.
    pub baseline_path: PathBuf,
    /// Constructors that take ownership of a snapshot pin (pin-leak):
    /// naming a pinned value in their argument list releases it.
    pub pin_transfer: Vec<String>,
    /// Calls no snapshot pin may be live across (pin-leak).
    pub pin_maintenance: Vec<String>,
    /// Files audited by the wal-bracket analysis; entries containing `/`
    /// match as path suffixes, bare names match the file name.
    pub wal_bracket_files: Vec<String>,
    /// Method/associated-fn names that mutate pages inside a WAL bracket.
    pub wal_mutation_calls: Vec<String>,
    /// Calls that close a WAL bracket successfully.
    pub wal_commit_calls: Vec<String>,
    /// Calls that close a WAL bracket by rolling back.
    pub wal_abort_calls: Vec<String>,
    /// Read entry points whose `Result` can carry `StoreError::Corrupt`.
    pub corrupt_sources: Vec<String>,
    /// Adapters that silently default an error away (corrupt-taint).
    pub corrupt_sinks: Vec<String>,
    /// Sanctioned degradation helpers allowed to consume Corrupt results.
    pub corrupt_sanctioned: Vec<String>,
}

impl Config {
    /// The production configuration for the ArchIS repo rooted at `root`.
    pub fn for_root(root: PathBuf) -> Config {
        Config {
            root,
            scan_dirs: vec![
                PathBuf::from("crates/relstore/src"),
                PathBuf::from("crates/core/src"),
                PathBuf::from("crates/fsck/src"),
                PathBuf::from("crates/replica/src"),
                PathBuf::from("crates/sqlxml/src"),
                PathBuf::from("crates/bench/src"),
            ],
            wal_allow: vec!["wal.rs".into(), "pager.rs".into(), "failpoint.rs".into()],
            btree_open_allow: vec!["table.rs".into(), "btree.rs".into()],
            error_drop_files: vec![
                "wal.rs".into(),
                "pager.rs".into(),
                "catalog.rs".into(),
                "archive.rs".into(),
            ],
            planner_query_files: vec![
                "engine.rs".into(),
                "queries.rs".into(),
                "translate.rs".into(),
            ],
            receiver_hints: vec![
                ("pool".into(), vec!["BufferPool".into()]),
                (
                    "pager".into(),
                    vec!["FilePager".into(), "MemPager".into(), "WalPager".into()],
                ),
                ("base".into(), vec!["FilePager".into(), "MemPager".into()]),
                ("log".into(), vec!["FileLog".into(), "MemLog".into()]),
                ("clustered".into(), vec!["BTree".into()]),
                ("heap".into(), vec!["HeapFile".into()]),
            ],
            baseline_path: PathBuf::from("lint-baseline.toml"),
            pin_transfer: vec!["SnapshotPager".into()],
            pin_maintenance: vec!["checkpoint".into(), "vacuum".into(), "compress".into()],
            wal_bracket_files: vec![
                "core/src/lib.rs".into(),
                "archive.rs".into(),
                "catalog.rs".into(),
            ],
            wal_mutation_calls: vec![
                "apply".into(),
                "apply_batch".into(),
                "create".into(),
                "persist_meta".into(),
            ],
            wal_commit_calls: vec!["txn_commit".into(), "commit".into(), "checkpoint".into()],
            wal_abort_calls: vec!["txn_abort".into(), "abort".into()],
            corrupt_sources: vec![
                "read_page".into(),
                "read_page_at".into(),
                "read_block".into(),
                "decode_block".into(),
                "lookup".into(),
                "index_lookup".into(),
                "index_range".into(),
                "index_range_stream".into(),
                "cluster_range".into(),
                "cluster_range_stream".into(),
            ],
            corrupt_sinks: vec![
                "ok".into(),
                "unwrap_or".into(),
                "unwrap_or_default".into(),
                "unwrap_or_else".into(),
                "or_default".into(),
            ],
            corrupt_sanctioned: vec![
                "index_range_fallback".into(),
                "quarantine".into(),
                "quarantine_block".into(),
            ],
        }
    }

    pub fn is_wal_allowed_file(&self, rel: &Path) -> bool {
        Self::name_matches(rel, &self.wal_allow)
    }

    pub fn is_btree_open_allowed_file(&self, rel: &Path) -> bool {
        Self::name_matches(rel, &self.btree_open_allow)
    }

    pub fn is_error_drop_audited(&self, rel: &Path) -> bool {
        Self::name_matches(rel, &self.error_drop_files)
    }

    pub fn is_planner_query_file(&self, rel: &Path) -> bool {
        Self::name_matches(rel, &self.planner_query_files)
    }

    pub fn is_wal_bracket_file(&self, rel: &Path) -> bool {
        Self::name_matches(rel, &self.wal_bracket_files)
    }

    pub fn receiver_types(&self, field: &str) -> &[String] {
        self.receiver_hints
            .iter()
            .find(|(f, _)| f == field)
            .map(|(_, t)| t.as_slice())
            .unwrap_or(&[])
    }

    /// Bare entries match the file name; entries containing `/` match as
    /// path suffixes (`core/src/lib.rs` selects one lib.rs, not all).
    fn name_matches(rel: &Path, names: &[String]) -> bool {
        let full = rel.to_string_lossy().replace('\\', "/");
        names.iter().any(|m| {
            if m.contains('/') {
                full.ends_with(m.as_str())
            } else {
                rel.file_name().and_then(|n| n.to_str()) == Some(m.as_str())
            }
        })
    }
}

/// Everything one run produces: site diagnostics, `lint:allow`-silenced
/// findings (with their marker line, for the JSON report), the freshly
/// counted ratchet sections (so `--update-baseline` can write them out),
/// and scan statistics for the self-run timing line.
pub struct Outcome {
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a `lint:allow` marker, paired with the
    /// marker's line.
    pub suppressed: Vec<(Diagnostic, u32)>,
    pub counted: Baseline,
    pub files_scanned: usize,
    pub functions_scanned: usize,
    pub elapsed: std::time::Duration,
}

impl Outcome {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Load the scanned files, run all nine analyses and compare the panic
/// counts against the committed baseline (unless `update_baseline`).
///
/// The per-file rules fan out across worker threads (each analysis is
/// file-local); the cross-file lock-order pass and the ratchet run
/// serially afterwards. A dataflow fixpoint failure anywhere is a hard
/// `Err` — the binary exits 2 rather than under-reporting.
pub fn run(cfg: &Config, update_baseline: bool) -> Result<Outcome, String> {
    let start = std::time::Instant::now();
    let files = load_files(cfg)?;
    let mut diagnostics = Vec::new();

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, files.len().max(1));
    let chunk = files.len().div_ceil(workers);
    let results: Vec<Result<Vec<Diagnostic>, String>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = files
            .chunks(chunk)
            .map(|slice| s.spawn(move |_| per_file_rules(cfg, slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("lint worker panicked".into()))
            })
            .collect()
    })
    .unwrap_or_else(|_| vec![Err("lint thread scope failed".into())]);
    for r in results {
        diagnostics.extend(r?);
    }

    rules::lock_order::check(cfg, &files, &mut diagnostics);

    let (panics, indexing) = rules::panic_ratchet::count(&files);
    let mut counted = Baseline::default();
    counted
        .sections
        .insert(rules::panic_ratchet::RULE_PANIC.into(), panics);
    counted
        .sections
        .insert(rules::panic_ratchet::RULE_INDEX.into(), indexing);

    if !update_baseline {
        let path = cfg.root.join(&cfg.baseline_path);
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => Baseline::parse(&text)?,
            Err(e) => {
                return Err(format!(
                    "cannot read baseline {}: {e}; run with --update-baseline to create it",
                    path.display()
                ))
            }
        };
        ratchet_diagnostics(&counted, &committed, &mut diagnostics);
    }

    // Central `lint:allow` handling: the rules report every finding and
    // the marker partitions them here, so silenced diagnostics are still
    // visible to the JSON report together with their allow-site.
    let by_path: std::collections::BTreeMap<&Path, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_path(), f)).collect();
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for d in diagnostics {
        match by_path
            .get(d.file.as_path())
            .and_then(|f| f.allow_marker(d.line))
        {
            Some(marker) => suppressed.push((d, marker)),
            None => active.push(d),
        }
    }
    active.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    suppressed.sort_by(|(a, _), (b, _)| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Outcome {
        diagnostics: active,
        suppressed,
        counted,
        files_scanned: files.len(),
        functions_scanned: files.iter().map(|f| f.functions.len()).sum(),
        elapsed: start.elapsed(),
    })
}

/// The file-local analyses, run on one worker's slice of the files.
fn per_file_rules(cfg: &Config, slice: &[SourceFile]) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    rules::wal_discipline::check(cfg, slice, &mut out);
    rules::session_layer::check(cfg, slice, &mut out);
    rules::error_drop::check(cfg, slice, &mut out);
    rules::planner_bypass::check(cfg, slice, &mut out);
    rules::pin_leak::check(cfg, slice, &mut out)?;
    rules::wal_bracket::check(cfg, slice, &mut out)?;
    rules::corrupt_taint::check(cfg, slice, &mut out)?;
    Ok(out)
}

/// Compare fresh counts to the committed baseline. Counts above baseline
/// are regressions; counts below (or files that vanished) make the
/// baseline stale — also an error, so the committed file always matches
/// reality and every burndown tightens the ratchet in the same commit.
fn ratchet_diagnostics(counted: &Baseline, committed: &Baseline, out: &mut Vec<Diagnostic>) {
    for (section, rule) in [
        (
            rules::panic_ratchet::RULE_PANIC,
            rules::panic_ratchet::RULE_PANIC,
        ),
        (
            rules::panic_ratchet::RULE_INDEX,
            rules::panic_ratchet::RULE_INDEX,
        ),
    ] {
        let fresh = counted.section(section);
        let base = committed.section(section);
        for (file, &n) in &fresh {
            let b = base.get(file).copied().unwrap_or(0);
            if n > b {
                out.push(Diagnostic::new(
                    Path::new(file),
                    0,
                    rule,
                    format!(
                        "{section} count rose to {n} (baseline {b}); convert the new \
                         sites to Result or annotate with lint:allow(reason)"
                    ),
                ));
            } else if n < b {
                out.push(Diagnostic::new(
                    Path::new(file),
                    0,
                    rule,
                    format!(
                        "{section} count improved to {n} (baseline {b}); baseline is \
                         stale, run --update-baseline to ratchet down"
                    ),
                ));
            }
        }
        for (file, &b) in &base {
            if !fresh.contains_key(file) && b > 0 {
                out.push(Diagnostic::new(
                    Path::new(file),
                    0,
                    rule,
                    format!(
                        "{section} count improved to 0 (baseline {b}); baseline is \
                         stale, run --update-baseline to ratchet down"
                    ),
                ));
            }
        }
    }
}

fn load_files(cfg: &Config) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    for dir in &cfg.scan_dirs {
        collect_rs(&cfg.root.join(dir), &mut paths)
            .map_err(|e| format!("scanning {}: {e}", dir.display()))?;
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path.strip_prefix(&cfg.root).unwrap_or(&path).to_path_buf();
        files.push(SourceFile::parse(rel, &src));
    }
    if files.is_empty() {
        return Err("no .rs files found under the scan directories".into());
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            // A file named `tests.rs` is a `#[cfg(test)] mod tests;`
            // module by workspace convention — the gate lives on the
            // `mod` declaration in the parent file, where the in-file
            // test-region marker cannot see it. Skip it like any other
            // test region (the ratchet counts non-test code only).
            if path.file_stem().is_some_and(|s| s == "tests") {
                continue;
            }
            out.push(path);
        }
    }
    Ok(())
}
