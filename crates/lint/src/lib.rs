//! `archis-lint` — repo-specific static analysis for the ArchIS engine.
//!
//! Six analyses run over the storage-engine sources (`crates/relstore/src`,
//! `crates/core/src` and `crates/sqlxml/src` by default), built on a
//! hand-rolled token scanner (no external parser crates; the build is
//! offline):
//!
//! 1. **WAL discipline** (`wal-discipline`) — direct page writes, file
//!    truncation or raw file creation outside the sanctioned modules.
//! 2. **Session layer** (`session-layer`) — `BTree::open` outside the
//!    session/snapshot layer, which would bypass MVCC root management.
//! 3. **Lock order** (`lock-order`, `lock-across-io`) — cycles in the
//!    inter-procedural lock-acquisition graph, and engine-level locks held
//!    across pager/file I/O.
//! 4. **Panic-path ratchet** (`panic-path`, `slice-index`) — per-file
//!    counts of `unwrap`/`expect`/`panic!` and slice indexing in non-test
//!    code, compared against the committed `lint-baseline.toml`.
//! 5. **Error-drop audit** (`error-drop`) — `let _ =` and statement-final
//!    `.ok()` on the commit/recovery/vacuum paths.
//! 6. **Planner discipline** (`planner-bypass`) — direct raw access-path
//!    calls (`stream`, `index_range`, `cluster_range`, ...) in the query
//!    paths, which would hand-wire a plan past the cost-based planner and
//!    its segment pruning.
//!
//! Individual sites are suppressed with a `// lint:allow(reason)` comment
//! on the same line or the line(s) immediately above; the reason is
//! mandatory by convention and should say why the invariant holds.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod rules {
    pub mod error_drop;
    pub mod lock_order;
    pub mod panic_ratchet;
    pub mod planner_bypass;
    pub mod session_layer;
    pub mod wal_discipline;
}

use baseline::Baseline;
use model::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// One finding, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: PathBuf,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    pub fn new(file: &Path, line: u32, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_path_buf(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// What to scan and where the policy knobs sit. `Config::for_root` is the
/// real tree's configuration; fixture tests build their own.
pub struct Config {
    /// Repo root; scanned paths and diagnostics are relative to it.
    pub root: PathBuf,
    /// Directories (relative to `root`) whose `.rs` files are scanned.
    pub scan_dirs: Vec<PathBuf>,
    /// File-name suffixes allowed to write pages / truncate / open files.
    pub wal_allow: Vec<String>,
    /// File-name suffixes allowed to call `BTree::open` (the session /
    /// snapshot layer that owns root-page lifetimes).
    pub btree_open_allow: Vec<String>,
    /// File-name suffixes audited by the error-drop rule (the
    /// commit/recovery/vacuum paths).
    pub error_drop_files: Vec<String>,
    /// File-name suffixes audited by the planner-bypass rule (the query
    /// paths, where access-path choice belongs to the cost-based planner).
    pub planner_query_files: Vec<String>,
    /// Receiver-field → candidate impl types, used to resolve calls like
    /// `self.pool.get(...)` through the stoplist of common method names.
    pub receiver_hints: Vec<(String, Vec<String>)>,
    /// Path (relative to `root`) of the panic-ratchet baseline.
    pub baseline_path: PathBuf,
}

impl Config {
    /// The production configuration for the ArchIS repo rooted at `root`.
    pub fn for_root(root: PathBuf) -> Config {
        Config {
            root,
            scan_dirs: vec![
                PathBuf::from("crates/relstore/src"),
                PathBuf::from("crates/core/src"),
                PathBuf::from("crates/fsck/src"),
                PathBuf::from("crates/sqlxml/src"),
            ],
            wal_allow: vec!["wal.rs".into(), "pager.rs".into(), "failpoint.rs".into()],
            btree_open_allow: vec!["table.rs".into(), "btree.rs".into()],
            error_drop_files: vec![
                "wal.rs".into(),
                "pager.rs".into(),
                "catalog.rs".into(),
                "archive.rs".into(),
            ],
            planner_query_files: vec![
                "engine.rs".into(),
                "queries.rs".into(),
                "translate.rs".into(),
            ],
            receiver_hints: vec![
                ("pool".into(), vec!["BufferPool".into()]),
                (
                    "pager".into(),
                    vec!["FilePager".into(), "MemPager".into(), "WalPager".into()],
                ),
                ("base".into(), vec!["FilePager".into(), "MemPager".into()]),
                ("log".into(), vec!["FileLog".into(), "MemLog".into()]),
                ("clustered".into(), vec!["BTree".into()]),
                ("heap".into(), vec!["HeapFile".into()]),
            ],
            baseline_path: PathBuf::from("lint-baseline.toml"),
        }
    }

    pub fn is_wal_allowed_file(&self, rel: &Path) -> bool {
        Self::name_matches(rel, &self.wal_allow)
    }

    pub fn is_btree_open_allowed_file(&self, rel: &Path) -> bool {
        Self::name_matches(rel, &self.btree_open_allow)
    }

    pub fn is_error_drop_audited(&self, rel: &Path) -> bool {
        Self::name_matches(rel, &self.error_drop_files)
    }

    pub fn is_planner_query_file(&self, rel: &Path) -> bool {
        Self::name_matches(rel, &self.planner_query_files)
    }

    pub fn receiver_types(&self, field: &str) -> &[String] {
        self.receiver_hints
            .iter()
            .find(|(f, _)| f == field)
            .map(|(_, t)| t.as_slice())
            .unwrap_or(&[])
    }

    fn name_matches(rel: &Path, names: &[String]) -> bool {
        rel.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| names.iter().any(|m| m == n))
    }
}

/// Everything one run produces: site diagnostics plus the freshly counted
/// ratchet sections (so `--update-baseline` can write them out).
pub struct Outcome {
    pub diagnostics: Vec<Diagnostic>,
    pub counted: Baseline,
}

impl Outcome {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Load the scanned files, run all four analyses and compare the panic
/// counts against the committed baseline (unless `update_baseline`).
pub fn run(cfg: &Config, update_baseline: bool) -> Result<Outcome, String> {
    let files = load_files(cfg)?;
    let mut diagnostics = Vec::new();

    rules::wal_discipline::check(cfg, &files, &mut diagnostics);
    rules::session_layer::check(cfg, &files, &mut diagnostics);
    rules::lock_order::check(cfg, &files, &mut diagnostics);
    rules::error_drop::check(cfg, &files, &mut diagnostics);
    rules::planner_bypass::check(cfg, &files, &mut diagnostics);

    let (panics, indexing) = rules::panic_ratchet::count(&files);
    let mut counted = Baseline::default();
    counted
        .sections
        .insert(rules::panic_ratchet::RULE_PANIC.into(), panics);
    counted
        .sections
        .insert(rules::panic_ratchet::RULE_INDEX.into(), indexing);

    if !update_baseline {
        let path = cfg.root.join(&cfg.baseline_path);
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => Baseline::parse(&text)?,
            Err(e) => {
                return Err(format!(
                    "cannot read baseline {}: {e}; run with --update-baseline to create it",
                    path.display()
                ))
            }
        };
        ratchet_diagnostics(&counted, &committed, &mut diagnostics);
    }

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Outcome {
        diagnostics,
        counted,
    })
}

/// Compare fresh counts to the committed baseline. Counts above baseline
/// are regressions; counts below (or files that vanished) make the
/// baseline stale — also an error, so the committed file always matches
/// reality and every burndown tightens the ratchet in the same commit.
fn ratchet_diagnostics(counted: &Baseline, committed: &Baseline, out: &mut Vec<Diagnostic>) {
    for (section, rule) in [
        (
            rules::panic_ratchet::RULE_PANIC,
            rules::panic_ratchet::RULE_PANIC,
        ),
        (
            rules::panic_ratchet::RULE_INDEX,
            rules::panic_ratchet::RULE_INDEX,
        ),
    ] {
        let fresh = counted.section(section);
        let base = committed.section(section);
        for (file, &n) in &fresh {
            let b = base.get(file).copied().unwrap_or(0);
            if n > b {
                out.push(Diagnostic::new(
                    Path::new(file),
                    0,
                    rule,
                    format!(
                        "{section} count rose to {n} (baseline {b}); convert the new \
                         sites to Result or annotate with lint:allow(reason)"
                    ),
                ));
            } else if n < b {
                out.push(Diagnostic::new(
                    Path::new(file),
                    0,
                    rule,
                    format!(
                        "{section} count improved to {n} (baseline {b}); baseline is \
                         stale, run --update-baseline to ratchet down"
                    ),
                ));
            }
        }
        for (file, &b) in &base {
            if !fresh.contains_key(file) && b > 0 {
                out.push(Diagnostic::new(
                    Path::new(file),
                    0,
                    rule,
                    format!(
                        "{section} count improved to 0 (baseline {b}); baseline is \
                         stale, run --update-baseline to ratchet down"
                    ),
                ));
            }
        }
    }
}

fn load_files(cfg: &Config) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    for dir in &cfg.scan_dirs {
        collect_rs(&cfg.root.join(dir), &mut paths)
            .map_err(|e| format!("scanning {}: {e}", dir.display()))?;
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path.strip_prefix(&cfg.root).unwrap_or(&path).to_path_buf();
        files.push(SourceFile::parse(rel, &src));
    }
    if files.is_empty() {
        return Err("no .rs files found under the scan directories".into());
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
