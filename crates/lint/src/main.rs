//! CLI for the ArchIS repo lint. Exit codes: 0 clean, 1 violations,
//! 2 usage or I/O error.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use archis_lint::{run, Config, Diagnostic, Outcome};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
archis-lint [options]

  --root DIR              repo root (default: nearest ancestor with Cargo.toml)
  --scan DIR              scan directory relative to root (repeatable;
                          replaces the default engine source dirs)
  --baseline FILE         baseline path relative to root
  --error-drop-file NAME  audit NAME for dropped errors (repeatable;
                          replaces the default durability-path file set)
  --format FMT            text (default) or json — one JSON object per line,
                          including lint:allow-silenced findings with their
                          allow-site
  --update-baseline       rewrite the baseline from current counts
  -h, --help              this text";

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("archis-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut scan: Vec<PathBuf> = Vec::new();
    let mut baseline: Option<PathBuf> = None;
    let mut error_drop: Vec<String> = Vec::new();
    let mut update = false;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--scan" => scan.push(PathBuf::from(value("--scan")?)),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--error-drop-file" => error_drop.push(value("--error-drop-file")?),
            "--format" => match value("--format")?.as_str() {
                "text" => json = false,
                "json" => json = true,
                other => return Err(format!("unknown format {other:?} (text|json)\n{USAGE}")),
            },
            "--update-baseline" => update = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => find_repo_root()?,
    };
    let mut cfg = Config::for_root(root);
    if !scan.is_empty() {
        cfg.scan_dirs = scan;
    }
    if let Some(b) = baseline {
        cfg.baseline_path = b;
    }
    if !error_drop.is_empty() {
        cfg.error_drop_files = error_drop;
    }

    let outcome = run(&cfg, update)?;
    if json {
        print_json(&outcome);
    } else {
        for d in &outcome.diagnostics {
            println!("{d}");
        }
    }
    if update {
        let path = cfg.root.join(&cfg.baseline_path);
        std::fs::write(&path, outcome.counted.render())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("archis-lint: baseline updated at {}", path.display());
    }
    eprintln!(
        "archis-lint: scanned {} files / {} functions in {:.3}s",
        outcome.files_scanned,
        outcome.functions_scanned,
        outcome.elapsed.as_secs_f64()
    );
    if outcome.is_clean() {
        eprintln!("archis-lint: clean ({} allowed)", outcome.suppressed.len());
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("archis-lint: {} violation(s)", outcome.diagnostics.len());
        Ok(ExitCode::FAILURE)
    }
}

/// One JSON object per line: active findings with `"allow_line": null`,
/// then `lint:allow`-silenced findings with their marker line.
fn print_json(outcome: &Outcome) {
    let one = |d: &Diagnostic, allow: Option<u32>| {
        let allow = match allow {
            Some(l) => l.to_string(),
            None => "null".into(),
        };
        println!(
            r#"{{"file":"{}","line":{},"rule":"{}","message":"{}","allow_line":{}}}"#,
            json_escape(&d.file.display().to_string()),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message),
            allow
        );
    };
    for d in &outcome.diagnostics {
        one(d, None);
    }
    for (d, marker) in &outcome.suppressed {
        one(d, Some(*marker));
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Walk up from the current directory to the workspace root (the first
/// ancestor holding a `Cargo.toml` with a `[workspace]` table).
fn find_repo_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("could not locate the workspace root; pass --root".into());
        }
    }
}
