//! CLI for the ArchIS repo lint. Exit codes: 0 clean, 1 violations,
//! 2 usage or I/O error.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use archis_lint::{run, Config};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
archis-lint [options]

  --root DIR              repo root (default: nearest ancestor with Cargo.toml)
  --scan DIR              scan directory relative to root (repeatable;
                          replaces the default engine source dirs)
  --baseline FILE         baseline path relative to root
  --error-drop-file NAME  audit NAME for dropped errors (repeatable;
                          replaces the default durability-path file set)
  --update-baseline       rewrite the baseline from current counts
  -h, --help              this text";

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("archis-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut scan: Vec<PathBuf> = Vec::new();
    let mut baseline: Option<PathBuf> = None;
    let mut error_drop: Vec<String> = Vec::new();
    let mut update = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--scan" => scan.push(PathBuf::from(value("--scan")?)),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--error-drop-file" => error_drop.push(value("--error-drop-file")?),
            "--update-baseline" => update = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => find_repo_root()?,
    };
    let mut cfg = Config::for_root(root);
    if !scan.is_empty() {
        cfg.scan_dirs = scan;
    }
    if let Some(b) = baseline {
        cfg.baseline_path = b;
    }
    if !error_drop.is_empty() {
        cfg.error_drop_files = error_drop;
    }

    let outcome = run(&cfg, update)?;
    for d in &outcome.diagnostics {
        println!("{d}");
    }
    if update {
        let path = cfg.root.join(&cfg.baseline_path);
        std::fs::write(&path, outcome.counted.render())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("archis-lint: baseline updated at {}", path.display());
    }
    if outcome.is_clean() {
        eprintln!("archis-lint: clean");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("archis-lint: {} violation(s)", outcome.diagnostics.len());
        Ok(ExitCode::FAILURE)
    }
}

/// Walk up from the current directory to the workspace root (the first
/// ancestor holding a `Cargo.toml` with a `[workspace]` table).
fn find_repo_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("could not locate the workspace root; pass --root".into());
        }
    }
}
