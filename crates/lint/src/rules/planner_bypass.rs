//! Planner discipline: query paths pick access paths through the
//! cost-based planner, never by hand.
//!
//! PR 8 moved every access-path decision — seq scan vs secondary index vs
//! clustered range, and which archived segments to touch at all — into
//! `relstore::planner::choose_path` and `archis::planner`. A direct call
//! to a raw path executor (`stream`, `index_range`, `index_range_stream`,
//! `index_lookup`, `cluster_range`, `cluster_range_stream`) from a query
//! path reintroduces a hand-wired plan: it silently skips segment
//! pruning, ignores the statistics catalog, and drifts from the costs the
//! EXPLAIN log reports. This rule flags every such call in the audited
//! query-path files (`engine.rs`, `queries.rs`, `translate.rs`); the
//! planner modules and the storage layer itself are exempt, and
//! planner-routed helpers carry a `// lint:allow(reason)` marker.
//!
//! Maintenance paths (the archiver, vacuum, fsck) are deliberately not
//! audited: they address rows by identity, not by predicate, so there is
//! no plan to choose.

use crate::model::SourceFile;
use crate::{Config, Diagnostic};

pub const RULE: &str = "planner-bypass";

/// Raw access-path executors a query path must not call directly.
const RAW_PATHS: &[&str] = &[
    "stream",
    "index_range",
    "index_range_stream",
    "index_lookup",
    "cluster_range",
    "cluster_range_stream",
];

pub fn check(cfg: &Config, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if !cfg.is_planner_query_file(&file.rel_path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.token_in_test(i) {
                continue;
            }
            let t = &toks[i];
            if t.is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|m| RAW_PATHS.iter().any(|p| m.is_ident(p)))
                && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
            {
                let line = toks[i + 1].line;
                let method = RAW_PATHS
                    .iter()
                    .find(|p| toks[i + 1].is_ident(p))
                    .unwrap_or(&"?");
                out.push(Diagnostic::new(
                    &file.rel_path,
                    line,
                    RULE,
                    format!(
                        "direct .{method}() call hand-wires the access path: route \
                         the scan through planner::choose_path (SQL) or \
                         archis::planner (compressed segments)"
                    ),
                ));
            }
        }
    }
}
