//! Session-layer discipline: B-tree roots are opened only by the layers
//! that own their lifetime.
//!
//! `BTree::open` wires a root page to the *shared* buffer pool with no
//! versioning of its own. Since MVCC snapshots landed, correctness
//! depends on every tree being reached through one of two doors:
//!
//! * [`Table`] — the live writer session, whose roots move only under
//!   the catalog lock, or
//! * a [`Snapshot`]'s frozen pool — where reads resolve through
//!   `read_page_at` at the pinned commit LSN.
//!
//! A `BTree::open` anywhere else grabs a root out from under both doors:
//! it can observe a root mid-split, read a page the writer has already
//! overwritten, or hold a tree across a checkpoint fold. This rule flags
//! every `BTree::open(` call site outside the allowlisted session-layer
//! files (`table.rs`, plus `btree.rs` itself for its constructors);
//! sanctioned exceptions carry a `// lint:allow(reason)` marker.

use crate::model::SourceFile;
use crate::{Config, Diagnostic};

pub const RULE: &str = "session-layer";

pub fn check(cfg: &Config, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if cfg.is_btree_open_allowed_file(&file.rel_path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.token_in_test(i) {
                continue;
            }
            let t = &toks[i];
            if t.is_ident("BTree")
                && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 3).is_some_and(|a| a.is_ident("open"))
                && toks.get(i + 4).is_some_and(|a| a.is_punct('('))
            {
                let line = toks[i + 3].line;
                out.push(Diagnostic::new(
                    &file.rel_path,
                    line,
                    RULE,
                    "BTree::open outside the session layer bypasses MVCC: reach \
                     trees through Table (live writer) or a Snapshot's frozen pool"
                        .into(),
                ));
            }
        }
    }
}
