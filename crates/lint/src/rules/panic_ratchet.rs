//! Panic-path ratchet: the number of potential panic sites in non-test
//! engine code may only go down.
//!
//! Counted constructs, per file:
//!
//! * `[panic-path]` — `.unwrap()`, `.expect(...)` and `panic!(...)`
//! * `[slice-index]` — bracket indexing (`buf[i]`, `&b[a..b]`), which
//!   panics on out-of-range rather than returning an error
//!
//! Counts are compared against the committed `lint-baseline.toml`. A count
//! above baseline is a violation; a count below baseline is reported as a
//! stale baseline (run `--update-baseline`), so the committed file always
//! matches reality and every burndown tightens the ratchet. Sites inside
//! `#[cfg(test)]` code never count; deliberate panics on invariants carry a
//! `// lint:allow(reason)` marker and are excluded from the counts.

use crate::lexer::Tok;
use crate::model::SourceFile;
use std::collections::BTreeMap;

pub const RULE_PANIC: &str = "panic-path";
pub const RULE_INDEX: &str = "slice-index";

/// Per-file counts for one section of the baseline.
pub type Counts = BTreeMap<String, usize>;

pub fn count(files: &[SourceFile]) -> (Counts, Counts) {
    let mut panics: Counts = BTreeMap::new();
    let mut indexing: Counts = BTreeMap::new();
    for file in files {
        let key = file.rel_path.display().to_string();
        let toks = &file.tokens;
        let mut n_panic = 0usize;
        let mut n_index = 0usize;
        for i in 0..toks.len() {
            if file.token_in_test(i) || file.is_suppressed(toks[i].line) {
                continue;
            }
            let t = &toks[i];
            // `.unwrap()` / `.expect(` — method position only, so local
            // functions named `unwrap` or fields are not miscounted.
            if t.is_punct('.') {
                if let (Some(name), Some(open)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if open.is_punct('(')
                        && (name.is_ident("unwrap") || name.is_ident("expect"))
                        && !file.is_suppressed(name.line)
                    {
                        n_panic += 1;
                    }
                }
            }
            // `panic!(`
            if t.is_ident("panic")
                && toks.get(i + 1).is_some_and(|a| a.is_punct('!'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct('('))
            {
                n_panic += 1;
            }
            // Indexing: `[` whose previous token ends an indexable
            // expression. Macro brackets (`vec![`), attributes (`#[`),
            // array/slice types and literals all have a different
            // preceding token and are skipped.
            if t.is_punct('[') && i > 0 {
                let prev = &toks[i - 1];
                let indexable = matches!(prev.tok, Tok::Ident(_))
                    && !is_keyword(prev.ident().unwrap_or(""))
                    || prev.is_punct(']')
                    || prev.is_punct(')');
                if indexable {
                    n_index += 1;
                }
            }
        }
        if n_panic > 0 {
            panics.insert(key.clone(), n_panic);
        }
        if n_index > 0 {
            indexing.insert(key, n_index);
        }
    }
    (panics, indexing)
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = ...`, `in [1, 2]`, `return [x]`, ...).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "in"
            | "return"
            | "break"
            | "match"
            | "if"
            | "else"
            | "mut"
            | "ref"
            | "move"
            | "const"
            | "static"
            | "as"
            | "dyn"
            | "impl"
            | "where"
            | "for"
            | "while"
            | "loop"
            | "unsafe"
            | "crate"
            | "pub"
            | "use"
            | "mod"
            | "fn"
            | "type"
            | "struct"
            | "enum"
            | "trait"
            | "box"
            | "yield"
            | "await"
    )
}
