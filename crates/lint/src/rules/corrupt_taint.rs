//! corrupt-taint — `StoreError::Corrupt` must propagate, not be defaulted.
//!
//! Results of the storage read entry points (`Config::corrupt_sources`:
//! `read_page`, `lookup`, `index_range`, ...) can carry
//! `StoreError::Corrupt`. Mapping such a result to a default — `.ok()`,
//! `.unwrap_or(..)`, `.unwrap_or_default()`, or a `match` arm that turns
//! `Err` into a plain value — silently serves wrong answers from a
//! corrupt store. The only sanctioned ways to *degrade* are the helpers
//! in `Config::corrupt_sanctioned` (index→heap fallback, block
//! quarantine), which re-verify against an independent copy of the data.
//!
//! The analysis taints let-bindings of source-call results that are not
//! immediately `?`-propagated and tracks them through the CFG (union
//! join). Findings:
//!
//! * a sink called on a source result in the same statement
//!   (`pager.read_page(n).ok()`);
//! * a sink reached by a tainted variable (`let r = t.lookup(k); ...;
//!   r.unwrap_or(default)`);
//! * a `match` on a corrupt-bearing scrutinee whose `Err`/`_` arm body
//!   neither propagates (`Err`, `?`), panics, nor calls a sanctioned
//!   degradation helper.
//!
//! Any other mention of a tainted variable kills the taint: passing it
//! on, `?`, or explicit matching is the owner deciding — only *silent*
//! defaulting is flagged.

use crate::cfg::{ArmInfo, Cfg};
use crate::dataflow::{solve, Analysis};
use crate::lexer::{Tok, Token};
use crate::model::{Function, SourceFile};
use crate::{Config, Diagnostic};
use std::collections::{BTreeMap, BTreeSet};

pub const RULE: &str = "corrupt-taint";

/// Tainted variable → line of the source call that produced it.
type Fact = BTreeMap<String, u32>;

struct NodeInfo {
    /// Source calls: (name, line, index of the call ident).
    sources: Vec<(String, u32, usize)>,
    /// Sink calls `.name(`: (name, line, index of the sink ident).
    sinks: Vec<(String, u32, usize)>,
    /// `let y = x ;` — a pure move that forwards taint.
    copy: Option<(String, String)>,
    /// Names bound by a leading `let`.
    let_binds: Vec<String>,
    /// Node's final token is the `?` operator.
    ends_q: bool,
}

struct TaintAnalysis<'a> {
    file: &'a SourceFile,
    cfg: &'a Cfg,
    info: Vec<NodeInfo>,
}

impl TaintAnalysis<'_> {
    fn mentions(&self, idx: usize, name: &str) -> Option<usize> {
        let r = self.cfg.nodes[idx].toks.clone();
        (r.start..r.end).find(|&i| self.file.tokens[i].is_ident(name))
    }
}

impl Analysis for TaintAnalysis<'_> {
    type Fact = Fact;

    fn entry_fact(&self) -> Fact {
        BTreeMap::new()
    }

    fn join(&self, fact: &mut Fact, other: &Fact) -> bool {
        let mut changed = false;
        for (k, &v) in other {
            if !fact.contains_key(k) {
                fact.insert(k.clone(), v);
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, idx: usize, fact: &mut Fact) {
        let info = &self.info[idx];
        // A pure `let y = x;` moves the taint to the new name.
        if let Some((to, from)) = &info.copy {
            if let Some(line) = fact.remove(from) {
                fact.insert(to.clone(), line);
            }
            return;
        }
        // Any mention consumes the taint: the owner handled the Result.
        let touched: Vec<String> = fact
            .keys()
            .filter(|k| self.mentions(idx, k).is_some())
            .cloned()
            .collect();
        for k in touched {
            fact.remove(&k);
        }
        // A fresh binding of a source result that is not `?`-propagated.
        if !info.ends_q && !info.let_binds.is_empty() {
            if let Some((_, line, _)) = info.sources.first() {
                for n in &info.let_binds {
                    fact.insert(n.clone(), *line);
                }
            }
        }
    }
}

pub fn check(lint: &Config, files: &[SourceFile], out: &mut Vec<Diagnostic>) -> Result<(), String> {
    for file in files {
        for f in &file.functions {
            if file.token_in_test(f.body.start) {
                continue;
            }
            // The sanctioned degradation helpers are allowed to look at
            // Corrupt results — they are the escape hatch.
            if lint.corrupt_sanctioned.contains(&f.name) {
                continue;
            }
            let body = &file.tokens[f.body.clone()];
            if !body.iter().any(|t| {
                t.ident()
                    .is_some_and(|id| lint.corrupt_sources.iter().any(|s| s == id))
            }) {
                continue;
            }
            check_fn(lint, file, f, out)?;
        }
    }
    Ok(())
}

fn check_fn(
    lint: &Config,
    file: &SourceFile,
    f: &Function,
    out: &mut Vec<Diagnostic>,
) -> Result<(), String> {
    let g = Cfg::build(file, f);
    let info: Vec<NodeInfo> = g
        .nodes
        .iter()
        .map(|n| node_info(lint, &file.tokens, n.toks.clone()))
        .collect();
    let an = TaintAnalysis {
        file,
        cfg: &g,
        info,
    };
    let facts = solve(&g, &an).map_err(|e| {
        format!(
            "{}: fn {} (line {}): {e}",
            file.rel_path.display(),
            f.qualified(),
            f.line
        )
    })?;

    // Predecessor map, for connecting match arms to their scrutinee.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    for (i, n) in g.nodes.iter().enumerate() {
        for e in &n.succs {
            preds[e.to].push(i);
        }
    }

    let mut reported = BTreeSet::new();
    for (idx, entry) in facts.iter().enumerate() {
        let Some(entry) = entry else { continue };
        let ni = &an.info[idx];

        // Sink directly chained onto a source call in the same statement.
        // An intervening `?` (at any depth — block expressions keep whole
        // statements atomic) means the error already propagated.
        for (src, src_line, src_i) in &ni.sources {
            for (sink, sink_line, sink_i) in &ni.sinks {
                if sink_i <= src_i {
                    continue;
                }
                let propagated = file.tokens[*src_i..*sink_i].iter().any(|t| t.is_punct('?'));
                if !propagated && reported.insert((*src_line, *sink_line, sink.clone())) {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        *sink_line,
                        RULE,
                        format!(
                            "Corrupt-capable result of `{src}` is swallowed by `.{sink}(..)` — \
                             propagate the error or go through a sanctioned degradation helper"
                        ),
                    ));
                }
            }
        }

        // Sink reached by a tainted variable.
        for (var, &src_line) in entry {
            let Some(m) = an.mentions(idx, var) else {
                continue;
            };
            for (sink, sink_line, sink_i) in &ni.sinks {
                if *sink_i > m && reported.insert((src_line, *sink_line, sink.clone())) {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        *sink_line,
                        RULE,
                        format!(
                            "tainted `{var}` (Corrupt-capable result from line {src_line}) \
                             is swallowed by `.{sink}(..)` — propagate the error or go \
                             through a sanctioned degradation helper"
                        ),
                    ));
                }
            }
        }

        // Match arms that default away an Err on a corrupt-bearing
        // scrutinee.
        let Some(arm) = &g.nodes[idx].arm else {
            continue;
        };
        let bearing = preds[idx].iter().any(|&p| {
            let pi = &an.info[p];
            let from_source = !pi.sources.is_empty() && !pi.ends_q;
            let from_taint = facts[p]
                .as_ref()
                .is_some_and(|f| f.keys().any(|v| an.mentions(p, v).is_some()));
            from_source || from_taint
        });
        if !bearing {
            continue;
        }
        if !arm_swallows_err(lint, &file.tokens, arm) {
            continue;
        }
        let line = g.nodes[idx]
            .line
            .max(file.tokens.get(arm.pat.start).map(|t| t.line).unwrap_or(0));
        if reported.insert((line, line, "arm".into())) {
            out.push(Diagnostic::new(
                &file.rel_path,
                line,
                RULE,
                format!(
                    "match arm maps a Corrupt-capable `Err` to a default value — \
                     propagate it, panic, or call one of: {}",
                    lint.corrupt_sanctioned.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

/// Does this arm catch `Err` (or everything) and produce a value without
/// propagating, panicking, or degrading through a sanctioned helper?
fn arm_swallows_err(lint: &Config, ts: &[Token], arm: &ArmInfo) -> bool {
    let pat = &ts[arm.pat.clone()];
    let catches_err =
        pat.iter().any(|t| t.is_ident("Err")) || (pat.len() == 1 && pat[0].is_ident("_"));
    if !catches_err {
        return false;
    }
    // A pattern (or guard) that *names* corruption — `Err(e) if
    // e.is_corrupt()`, `Err(Fault::Corrupt(_))` — is deliberate handling
    // (fsck findings, block quarantine), not silent defaulting.
    if pat
        .iter()
        .any(|t| t.is_ident("Corrupt") || t.is_ident("is_corrupt"))
    {
        return false;
    }
    let body = &ts[arm.body.clone()];
    let handles = body.iter().any(|t| match &t.tok {
        Tok::Punct('?') => true,
        Tok::Ident(s) => {
            matches!(
                s.as_str(),
                "Err"
                    | "panic"
                    | "unreachable"
                    | "todo"
                    | "assert"
                    | "debug_assert"
                    | "Corrupt"
                    | "break"
                    | "continue"
            ) || lint.corrupt_sanctioned.iter().any(|h| h == s)
        }
        _ => false,
    });
    !handles
}

fn node_info(lint: &Config, ts: &[Token], r: std::ops::Range<usize>) -> NodeInfo {
    let mut sources = Vec::new();
    let mut sinks = Vec::new();
    for i in r.clone() {
        let Some(id) = ts[i].ident() else { continue };
        if !ts.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if lint.corrupt_sources.iter().any(|s| s == id) {
            sources.push((id.to_string(), ts[i].line, i));
        } else if lint.corrupt_sinks.iter().any(|s| s == id) && i >= 1 && ts[i - 1].is_punct('.') {
            sinks.push((id.to_string(), ts[i].line, i));
        }
    }
    let ends_q = r.end > r.start && ts[r.end - 1].is_punct('?');
    let is_let = !r.is_empty() && ts.get(r.start).is_some_and(|t| t.is_ident("let"));
    let let_binds = if is_let {
        let mut names = Vec::new();
        let mut depth = 0i32;
        for t in &ts[r.start + 1..r.end] {
            match &t.tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('=') if depth == 0 => break,
                Tok::Ident(s) => {
                    let keyword = matches!(s.as_str(), "mut" | "ref" | "_");
                    let upper = s.starts_with(|c: char| c.is_ascii_uppercase());
                    if !keyword && !upper {
                        names.push(s.clone());
                    }
                }
                _ => {}
            }
        }
        names
    } else {
        Vec::new()
    };
    // `let y = x ;` exactly: [let, y, =, x] with an optional trailing `;`.
    let toks: Vec<&Token> = ts[r.clone()].iter().filter(|t| !t.is_punct(';')).collect();
    let copy = match toks.as_slice() {
        [l, y, eq, x] if l.is_ident("let") && eq.is_punct('=') => match (y.ident(), x.ident()) {
            (Some(y), Some(x)) => Some((y.to_string(), x.to_string())),
            _ => None,
        },
        _ => None,
    };
    NodeInfo {
        sources,
        sinks,
        copy,
        let_binds,
        ends_q,
    }
}
