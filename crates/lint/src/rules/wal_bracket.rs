//! wal-bracket — mutations must not escape the transaction bracket.
//!
//! The archive/catalog mutation paths follow a strict protocol: mutate
//! pages, then either commit (`txn_commit`/`commit`) or abort
//! (`txn_abort`/`abort`). A `?` or early `return` between the first
//! mutation and the bracket close leaves buffered dirty pages and WAL
//! state torn — the next commit on the same handle would persist a
//! half-applied batch. This is the flow-sensitive upgrade of the
//! token-based wal-discipline rule: instead of flagging call *sites*, it
//! tracks a dirty marker through the CFG and flags *paths* that exit
//! while dirty.
//!
//! Only functions that close a bracket themselves (their body mentions a
//! commit- or abort-family call) are analyzed: a pure mutation helper is
//! presumed to run inside its caller's bracket, which this
//! intra-procedural pass cannot see. Mutation events are calls to
//! `Config::wal_mutation_calls` methods on a receiver other than `self`
//! (`archiver.apply(...)`, `Archiver::create(...)`); same-layer
//! delegation through `self.apply(...)` is the *caller's* bracket and is
//! skipped.

use crate::cfg::{Cfg, EdgeKind};
use crate::dataflow::{solve, Analysis};
use crate::lexer::Token;
use crate::model::{Function, SourceFile};
use crate::{Config, Diagnostic};
use std::collections::BTreeSet;

pub const RULE: &str = "wal-bracket";

#[derive(Clone, Debug)]
enum Event {
    Mutate {
        name: String,
        line: u32,
    },
    /// A commit- or abort-family call closes the bracket.
    Clear,
}

/// Earliest live (uncommitted) mutation on some path into the node.
type Fact = Option<(u32, String)>;

struct WalBracket {
    events: Vec<Vec<Event>>,
}

impl Analysis for WalBracket {
    type Fact = Fact;

    fn entry_fact(&self) -> Fact {
        None
    }

    fn join(&self, fact: &mut Fact, other: &Fact) -> bool {
        match (fact.as_ref(), other.as_ref()) {
            (_, None) => false,
            (None, Some(o)) => {
                *fact = Some(o.clone());
                true
            }
            (Some(f), Some(o)) if o.0 < f.0 => {
                *fact = Some(o.clone());
                true
            }
            _ => false,
        }
    }

    fn transfer(&self, idx: usize, fact: &mut Fact) {
        for ev in &self.events[idx] {
            match ev {
                Event::Mutate { name, line } => {
                    if fact.is_none() {
                        *fact = Some((*line, name.clone()));
                    }
                }
                Event::Clear => *fact = None,
            }
        }
    }
}

pub fn check(lint: &Config, files: &[SourceFile], out: &mut Vec<Diagnostic>) -> Result<(), String> {
    for file in files {
        if !lint.is_wal_bracket_file(&file.rel_path) {
            continue;
        }
        for f in &file.functions {
            if file.token_in_test(f.body.start) {
                continue;
            }
            // The bracket-closing family itself (txn_commit, commit,
            // abort, ...) is the mechanism, not a client of it.
            if lint.wal_commit_calls.contains(&f.name) || lint.wal_abort_calls.contains(&f.name) {
                continue;
            }
            let body = &file.tokens[f.body.clone()];
            let armed = body.iter().any(|t| {
                t.ident().is_some_and(|id| {
                    lint.wal_commit_calls.iter().any(|c| c == id)
                        || lint.wal_abort_calls.iter().any(|c| c == id)
                })
            });
            if !armed {
                continue;
            }
            check_fn(lint, file, f, out)?;
        }
    }
    Ok(())
}

fn check_fn(
    lint: &Config,
    file: &SourceFile,
    f: &Function,
    out: &mut Vec<Diagnostic>,
) -> Result<(), String> {
    let g = Cfg::build(file, f);
    let events: Vec<Vec<Event>> = g
        .nodes
        .iter()
        .map(|n| node_events(lint, &file.tokens, n.toks.clone()))
        .collect();
    let an = WalBracket { events };
    let facts = solve(&g, &an).map_err(|e| {
        format!(
            "{}: fn {} (line {}): {e}",
            file.rel_path.display(),
            f.qualified(),
            f.line
        )
    })?;

    let mut reported = BTreeSet::new();
    for (idx, entry) in facts.iter().enumerate() {
        let Some(entry) = entry else { continue };
        let mut post = entry.clone();
        an.transfer(idx, &mut post);
        let Some((mut_line, mut_name)) = post else {
            continue;
        };
        let node = &g.nodes[idx];
        for kind in g.exit_edges(idx).collect::<BTreeSet<_>>() {
            let how = match kind {
                EdgeKind::Error => "the `?` error path",
                EdgeKind::Return => "an early return",
                EdgeKind::Break => "a break",
                _ => "fall-through",
            };
            let line = if node.line != 0 { node.line } else { mut_line };
            if reported.insert((mut_line, line)) {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    line,
                    RULE,
                    format!(
                        "mutation `{mut_name}` (line {mut_line}) escapes the WAL bracket \
                         via {how} without commit or abort — add an abort edge (txn_abort) \
                         or restructure so the error path closes the bracket"
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn node_events(lint: &Config, ts: &[Token], r: std::ops::Range<usize>) -> Vec<Event> {
    let mut evs = Vec::new();
    for i in r.clone() {
        let Some(id) = ts[i].ident() else { continue };
        if !ts.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if lint.wal_commit_calls.iter().any(|c| c == id)
            || lint.wal_abort_calls.iter().any(|c| c == id)
        {
            evs.push(Event::Clear);
            continue;
        }
        if !lint.wal_mutation_calls.iter().any(|m| m == id) {
            continue;
        }
        // `recv.name(...)` with recv != self, or `Type::name(...)`.
        let dotted = i >= 1 && ts[i - 1].is_punct('.') && !(i >= 2 && ts[i - 2].is_ident("self"));
        let pathed = i >= 2 && ts[i - 1].is_punct(':') && ts[i - 2].is_punct(':');
        if dotted || pathed {
            evs.push(Event::Mutate {
                name: id.to_string(),
                line: ts[i].line,
            });
        }
    }
    evs
}
