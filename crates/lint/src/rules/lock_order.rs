//! Lock-order analysis: guard scopes, an inter-procedural lock-acquisition
//! graph, cycle detection, and locks held across pager/file I/O.
//!
//! The engine uses `parking_lot`-style locks (`Mutex::lock`,
//! `RwLock::read`/`write` — all zero-argument calls), which makes
//! acquisitions recognisable in the token stream without type information.
//!
//! **Lock identity.** `self.state.lock()` inside `impl WalPager` is the
//! lock `WalPager.state`; `self.shard_of(id).lock()` is `WalPager.shard_of()`
//! (all shards conflated — ordering between shards of one array is the
//! caller's problem, ordering against *other* locks is ours). A guard on a
//! plain local (`frame.write()` where `frame` came from a pool lookup) gets
//! a function-scoped identity: page latches are fine-grained and
//! deliberately held across pool calls (B+tree lock coupling), so they
//! participate in the graph but are exempt from the held-across-I/O rule.
//!
//! **Guard scope.** A `let`-bound guard lives to the end of its enclosing
//! block, or to `drop(guard)`; a temporary guard
//! (`self.file.lock().sync_data()`) lives to the end of its statement.
//!
//! **Inter-procedural.** Each function's may-acquire set is propagated
//! through a resolved call graph to a fixpoint and feeds the ordering
//! edges. Calls resolve only when the callee is identifiable: `self.x(...)`
//! within the owning type, `Type::x(...)` by path, `self.pool.get(...)`
//! via the receiver-type hints in the [`Config`], and free `helper(...)`
//! calls to free functions. Method calls on arbitrary receivers are left
//! unresolved — bare-name matching of common verbs (`delete`, `scan`)
//! across impls fabricates edges and with them phantom cycles.
//!
//! The held-across-I/O check, by contrast, stays *intra*-procedural: only
//! a direct call to a syscall-adjacent function (`sync_data`,
//! `write_page`, ...) under a field lock is flagged. Propagating I/O
//! transitively condemns the entire engine — by design every mutation
//! path ends at the pager while some coarse lock serialises it.

use crate::lexer::Tok;
use crate::model::{Function, SourceFile};
use crate::{Config, Diagnostic};
use std::collections::{BTreeMap, BTreeSet};

pub const RULE_CYCLE: &str = "lock-order";
pub const RULE_IO: &str = "lock-across-io";

/// Function names that perform pager or file I/O directly.
const IO_FNS: &[&str] = &[
    "sync_all",
    "sync_data",
    "fsync",
    "flush",
    "write_page",
    "read_page",
    "write_all",
    "write_vectored",
    "read_exact",
    "read_to_end",
    "set_len",
];

/// Common std method names: never resolved to engine functions by bare
/// name (only via a receiver-type hint), to keep the call graph sane.
const STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "or_else",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "entry",
    "or_insert",
    "or_insert_with",
    "keys",
    "values",
    "drain",
    "clear",
    "extend",
    "extend_from_slice",
    "copy_from_slice",
    "to_vec",
    "to_string",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "split",
    "split_at",
    "join",
    "find",
    "position",
    "filter",
    "filter_map",
    "fold",
    "any",
    "all",
    "count",
    "sum",
    "min",
    "max",
    "rev",
    "chain",
    "zip",
    "enumerate",
    "collect",
    "sort",
    "sort_by",
    "sort_by_key",
    "binary_search",
    "binary_search_by",
    "retain",
    "take",
    "replace",
    "swap",
    "resize",
    "truncate",
    "reserve",
    "with_capacity",
    "from",
    "into",
    "try_into",
    "try_from",
    "parse",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    "starts_with",
    "ends_with",
    "trim",
    "last",
    "first",
    "cloned",
    "copied",
    "flat_map",
    "flatten",
    "windows",
    "chunks",
    "to_le_bytes",
    "drop",
    "lock",
    "read",
    "write",
    "try_lock",
    "display",
    "min_by_key",
    "max_by_key",
    "saturating_sub",
    "saturating_add",
    "metadata",
];

/// One lock acquisition inside a function body.
struct Acq {
    id: String,
    tok: usize,
    scope_end: usize,
    /// True for `Type.field` identities (coarse, engine-level locks);
    /// false for function-local guard identities (page latches).
    is_field: bool,
}

/// One call site inside a function body.
struct Call {
    name: String,
    kind: CallKind,
    tok: usize,
    line: u32,
}

enum CallKind {
    /// `self.name(...)` — resolve within the owning type.
    SelfMethod,
    /// `Type::name(...)` — resolve within `Type`.
    Path(String),
    /// Method call whose receiver resolves to a known engine field.
    Hinted(String),
    /// Free-standing call `name(...)` — resolve among free functions.
    Free,
    /// Method call on an unknown receiver: never resolved. Bare-name
    /// resolution of common verbs (`delete`, `scan`, ...) across impls
    /// fabricates call edges — and with them phantom lock cycles.
    Unresolved,
}

struct FnInfo {
    file: usize,
    qualified: String,
    name: String,
    owner: Option<String>,
    acquires: Vec<Acq>,
    calls: Vec<Call>,
}

pub fn check(cfg: &Config, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let mut fns: Vec<FnInfo> = Vec::new();
    for (fidx, file) in files.iter().enumerate() {
        for f in &file.functions {
            if file.token_in_test(f.body.start) {
                continue;
            }
            fns.push(analyze_fn(fidx, file, f));
        }
    }

    // --- Fixpoint: may-acquire sets through the resolved call graph. ---
    let by_name = index_fns(&fns);
    let mut may_acquire: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|f| f.acquires.iter().map(|a| a.id.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            for c in &fns[i].calls {
                for j in resolve(cfg, &fns, &by_name, i, c) {
                    if !may_acquire[j].is_subset(&may_acquire[i]) {
                        let extra: Vec<String> = may_acquire[j]
                            .difference(&may_acquire[i])
                            .cloned()
                            .collect();
                        may_acquire[i].extend(extra);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- Per-guard-scope events: order edges and I/O-under-lock. ---
    // Edge: (from, to) -> (file idx, line, description).
    let mut edges: BTreeMap<(String, String), (usize, u32, String)> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        let file = &files[f.file];
        for a in &f.acquires {
            for b in &f.acquires {
                if b.tok > a.tok && b.tok < a.scope_end {
                    let line = file.tokens[b.tok].line;
                    edges
                        .entry((a.id.clone(), b.id.clone()))
                        .or_insert_with(|| (f.file, line, format!("in `{}`", f.qualified)));
                }
            }
            for c in &f.calls {
                if c.tok <= a.tok || c.tok >= a.scope_end {
                    continue;
                }
                let cands = resolve(cfg, &fns, &by_name, i, c);
                // Direct I/O calls only: transitive propagation flags the
                // whole engine (every path bottoms out in pager I/O under
                // the single-writer design); a *new* lexically visible
                // syscall under a coarse lock is the reviewable event.
                let io = IO_FNS.contains(&c.name.as_str());
                if io && a.is_field && !file.token_in_test(c.tok) && !file.is_suppressed(c.line) {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        c.line,
                        RULE_IO,
                        format!(
                            "lock `{}` held across I/O call `{}` in `{}`; \
                             a slow disk stalls every thread waiting on this lock",
                            a.id, c.name, f.qualified
                        ),
                    ));
                }
                for &j in &cands {
                    for x in &may_acquire[j] {
                        edges.entry((a.id.clone(), x.clone())).or_insert_with(|| {
                            (
                                f.file,
                                c.line,
                                format!("via call to `{}` in `{}`", c.name, f.qualified),
                            )
                        });
                    }
                }
            }
        }
    }

    report_cycles(files, &edges, out);
}

/// Find elementary cycles among the lock-order edges and report each SCC
/// once. A cycle is suppressed when any of its edge sites carries a
/// `lint:allow` marker (the marker documents the sanctioned ordering).
fn report_cycles(
    files: &[SourceFile],
    edges: &BTreeMap<(String, String), (usize, u32, String)>,
    out: &mut Vec<Diagnostic>,
) {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for (from, to) in edges.keys() {
        nodes.insert(from);
        nodes.insert(to);
    }
    let idx: BTreeMap<&String, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let names: Vec<&String> = nodes.into_iter().collect();
    let mut adj = vec![Vec::new(); names.len()];
    for (from, to) in edges.keys() {
        adj[idx[from]].push(idx[to]);
    }
    for scc in tarjan(&adj) {
        let cyclic = scc.len() > 1 || (scc.len() == 1 && adj[scc[0]].contains(&scc[0]));
        if !cyclic {
            continue;
        }
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        // Collect the edges inside the SCC, in deterministic order.
        let mut sites = Vec::new();
        let mut suppressed = false;
        for ((from, to), (file, line, how)) in edges {
            if members.contains(&idx[from]) && members.contains(&idx[to]) {
                if files[*file].is_suppressed(*line) {
                    suppressed = true;
                }
                sites.push(format!(
                    "`{from}` then `{to}` ({how} at {}:{line})",
                    files[*file].rel_path.display()
                ));
            }
        }
        if suppressed || sites.is_empty() {
            continue;
        }
        let ((_, _), (file, line, _)) = edges
            .iter()
            .find(|((f, t), _)| members.contains(&idx[f]) && members.contains(&idx[t]))
            .expect("scc has at least one edge");
        out.push(Diagnostic::new(
            &files[*file].rel_path,
            *line,
            RULE_CYCLE,
            format!("lock-order cycle: {}", sites.join("; ")),
        ));
    }
}

/// Iterative Tarjan SCC.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone)]
    struct NodeState {
        index: Option<usize>,
        low: usize,
        on_stack: bool,
    }
    let n = adj.len();
    let mut st = vec![
        NodeState {
            index: None,
            low: 0,
            on_stack: false
        };
        n
    ];
    let mut stack = Vec::new();
    let mut sccs = Vec::new();
    let mut counter = 0usize;
    for start in 0..n {
        if st[start].index.is_some() {
            continue;
        }
        // Explicit DFS stack: (node, next-neighbour index).
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, ni)) = dfs.last() {
            if st[v].index.is_none() {
                st[v].index = Some(counter);
                st[v].low = counter;
                counter += 1;
                stack.push(v);
                st[v].on_stack = true;
            }
            if ni < adj[v].len() {
                if let Some(frame) = dfs.last_mut() {
                    frame.1 += 1;
                }
                let w = adj[v][ni];
                if st[w].index.is_none() {
                    dfs.push((w, 0));
                } else if st[w].on_stack {
                    st[v].low = st[v].low.min(st[w].index.unwrap_or(usize::MAX));
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let vlow = st[v].low;
                    st[parent].low = st[parent].low.min(vlow);
                }
                if Some(st[v].low) == st[v].index {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        st[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

fn index_fns(fns: &[FnInfo]) -> BTreeMap<String, Vec<usize>> {
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }
    by_name
}

/// Candidate callees for a call site, as indices into `fns`. Call sites
/// are few enough that recomputing the small Vec each time is cheap.
fn resolve(
    cfg: &Config,
    fns: &[FnInfo],
    by_name: &BTreeMap<String, Vec<usize>>,
    caller: usize,
    c: &Call,
) -> Vec<usize> {
    let all = match by_name.get(&c.name) {
        Some(v) => v.as_slice(),
        None => return Vec::new(),
    };
    let caller_owner = fns[caller].owner.clone();
    match &c.kind {
        CallKind::SelfMethod => all
            .iter()
            .copied()
            .filter(|&j| fns[j].owner == caller_owner)
            .collect(),
        CallKind::Path(t) => all
            .iter()
            .copied()
            .filter(|&j| fns[j].owner.as_deref() == Some(t.as_str()))
            .collect(),
        CallKind::Hinted(field) => {
            let types = cfg.receiver_types(field);
            all.iter()
                .copied()
                .filter(|&j| {
                    j != caller
                        && fns[j]
                            .owner
                            .as_deref()
                            .is_some_and(|o| types.iter().any(|t| t == o))
                })
                .collect()
        }
        CallKind::Free => {
            if STOPLIST.contains(&c.name.as_str()) {
                Vec::new()
            } else {
                all.iter()
                    .copied()
                    .filter(|&j| j != caller && fns[j].owner.is_none())
                    .collect()
            }
        }
        CallKind::Unresolved => Vec::new(),
    }
}

/// Extract acquisitions, calls and direct-I/O facts from one function body.
fn analyze_fn(fidx: usize, file: &SourceFile, f: &Function) -> FnInfo {
    let toks = &file.tokens;
    let body = f.body.clone();
    let locals = local_field_map(toks, &body);
    let mut acquires = Vec::new();
    let mut calls = Vec::new();

    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        // Acquisition: `.lock()` / `.read()` / `.write()` with no args.
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("lock") || n.is_ident("read") || n.is_ident("write"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            let (id, is_field) = lock_identity(toks, i, f, &locals);
            // The binding holds the guard only when the statement ends
            // right after the call (`let g = x.lock();`, including the
            // `&mut *` form, via temporary lifetime extension). In
            // `let n = x.lock().field;` the guard is a temporary that
            // dies at the `;` — n binds a copy, not the guard.
            let named = if toks.get(i + 4).is_some_and(|t| t.is_punct(';')) {
                guard_name(toks, &body, i)
            } else {
                None
            };
            let scope_end = match &named {
                Some(name) => {
                    let end = enclosing_close(toks, &body, i);
                    drop_site(toks, i + 4, end, name).unwrap_or(end)
                }
                None => statement_end(toks, &body, i + 4),
            };
            acquires.push(Acq {
                id,
                tok: i + 1,
                scope_end,
                is_field,
            });
            i += 4;
            continue;
        }
        // Call sites: `name(`, `.name(`, `Type::name(` — but not macros
        // (`name!(`) and not definitions (`fn name(`).
        if let Tok::Ident(name) = &t.tok {
            let next_is_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if next_is_paren && i > 0 && !toks[i - 1].is_ident("fn") && !toks[i - 1].is_punct('!') {
                let kind = call_kind(toks, i, &locals);
                calls.push(Call {
                    name: name.clone(),
                    kind,
                    tok: i,
                    line: t.line,
                });
            }
        }
        i += 1;
    }

    FnInfo {
        file: fidx,
        qualified: f.qualified(),
        name: f.name.clone(),
        owner: f.owner.clone(),
        acquires,
        calls,
    }
}

/// Map `let v = [&][mut][*] self.field ...;` locals to their field name.
fn local_field_map(
    toks: &[crate::lexer::Token],
    body: &std::ops::Range<usize>,
) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let mut i = body.start;
    while i + 4 < body.end {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks[j].is_ident("mut") {
                j += 1;
            }
            if let Tok::Ident(var) = &toks[j].tok {
                if toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                    let mut k = j + 2;
                    while k < body.end
                        && (toks[k].is_punct('&')
                            || toks[k].is_punct('*')
                            || toks[k].is_ident("mut"))
                    {
                        k += 1;
                    }
                    if toks.get(k).is_some_and(|t| t.is_ident("self"))
                        && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
                    {
                        if let Some(Tok::Ident(field)) = toks.get(k + 2).map(|t| &t.tok) {
                            map.insert(var.clone(), field.clone());
                        }
                    }
                }
            }
        }
        i += 1;
    }
    map
}

/// Walk the receiver chain backwards from the `.` at `dot` and build the
/// lock identity.
fn lock_identity(
    toks: &[crate::lexer::Token],
    dot: usize,
    f: &Function,
    locals: &BTreeMap<String, String>,
) -> (String, bool) {
    let chain = receiver_chain(toks, dot);
    let owner = f.owner.clone().unwrap_or_else(|| "fn".into());
    match chain.first().map(String::as_str) {
        Some("self") if chain.len() >= 2 => (format!("{owner}.{}", chain[1]), true),
        Some(var) => {
            if let Some(field) = locals.get(var) {
                (format!("{owner}.{field}"), true)
            } else {
                (format!("{}:{}", f.qualified(), chain.join(".")), false)
            }
        }
        None => (format!("{}:anon@{}", f.qualified(), toks[dot].line), false),
    }
}

/// Classify a call site by its receiver.
fn call_kind(
    toks: &[crate::lexer::Token],
    name_idx: usize,
    locals: &BTreeMap<String, String>,
) -> CallKind {
    if name_idx >= 1 && toks[name_idx - 1].is_punct('.') {
        let chain = receiver_chain(toks, name_idx - 1);
        return match chain.as_slice() {
            [only] if only == "self" => CallKind::SelfMethod,
            [.., last] => {
                // `self.base.read_page(...)` → hint "base";
                // `pool.get(...)` with `let pool = self.pool` → hint "pool".
                let field = if chain.first().map(String::as_str) == Some("self") {
                    Some(last.clone())
                } else {
                    locals.get(chain[0].as_str()).cloned()
                };
                match field {
                    Some(fld) => CallKind::Hinted(fld),
                    None => CallKind::Unresolved,
                }
            }
            [] => CallKind::Unresolved,
        };
    }
    if name_idx >= 2 && toks[name_idx - 1].is_punct(':') && toks[name_idx - 2].is_punct(':') {
        if let Some(Tok::Ident(t)) = toks.get(name_idx.wrapping_sub(3)).map(|t| &t.tok) {
            return CallKind::Path(t.clone());
        }
    }
    CallKind::Free
}

/// The dotted receiver chain ending at the `.` token `dot`, in source
/// order. Method calls in the chain keep `()` (`self.shard_of(id).lock()`
/// → `["self", "shard_of()"]`); index expressions are skipped
/// (`self.shards[i]` → `["self", "shards"]`).
fn receiver_chain(toks: &[crate::lexer::Token], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = dot as isize - 1;
    while j >= 0 {
        match &toks[j as usize].tok {
            Tok::Punct(')') => {
                // Balance back to the matching `(`; the ident before it is
                // a method or function name.
                let mut depth = 1;
                let mut k = j - 1;
                while k >= 0 && depth > 0 {
                    match toks[k as usize].tok {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => depth -= 1,
                        _ => {}
                    }
                    if depth > 0 {
                        k -= 1;
                    }
                }
                let name_at = k - 1;
                if name_at >= 0 {
                    if let Tok::Ident(m) = &toks[name_at as usize].tok {
                        chain.push(format!("{m}()"));
                        j = name_at - 1;
                        if j >= 0 && toks[j as usize].is_punct('.') {
                            j -= 1;
                            continue;
                        }
                    }
                }
                break;
            }
            Tok::Punct(']') => {
                let mut depth = 1;
                let mut k = j - 1;
                while k >= 0 && depth > 0 {
                    match toks[k as usize].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => depth -= 1,
                        _ => {}
                    }
                    if depth > 0 {
                        k -= 1;
                    }
                }
                j = k - 1;
            }
            Tok::Ident(s) => {
                chain.push(s.clone());
                j -= 1;
                if j >= 0 && toks[j as usize].is_punct('.') {
                    j -= 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    chain.reverse();
    chain
}

/// If the statement containing the acquisition at `dot` is
/// `let [mut] NAME = ...`, return the guard's name.
fn guard_name(
    toks: &[crate::lexer::Token],
    body: &std::ops::Range<usize>,
    dot: usize,
) -> Option<String> {
    // Scan back to the statement start at balanced depth.
    let mut depth = 0i32;
    let mut j = dot as isize - 1;
    let start = loop {
        if j < body.start as isize {
            break body.start;
        }
        match toks[j as usize].tok {
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') if depth > 0 => depth -= 1,
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => break j as usize + 1,
            Tok::Punct(';') if depth == 0 => break j as usize + 1,
            _ => {}
        }
        j -= 1;
    };
    let mut k = start;
    if !toks.get(k)?.is_ident("let") {
        return None;
    }
    k += 1;
    if toks.get(k)?.is_ident("mut") {
        k += 1;
    }
    let name = toks.get(k)?.ident()?.to_string();
    if !toks.get(k + 1)?.is_punct('=') {
        return None;
    }
    // `let v = *x.lock();` copies the value out — the guard is a temporary
    // dying at the `;`. A leading `&` (`let g = &mut *x.lock();`) borrows
    // through it with temporary lifetime extension, so the guard lives on.
    if toks.get(k + 2)?.is_punct('*') {
        return None;
    }
    Some(name)
}

/// Matching close of the nearest block enclosing token `i` (capped at the
/// function body).
fn enclosing_close(toks: &[crate::lexer::Token], body: &std::ops::Range<usize>, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < body.end {
        match toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    body.end
}

/// End of the current statement: the next `;` at brace depth 0 relative to
/// `i`, else the enclosing block close.
fn statement_end(toks: &[crate::lexer::Token], body: &std::ops::Range<usize>, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < body.end {
        match toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            Tok::Punct(';') if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    body.end
}

/// First `drop(NAME)` call between `from` and `to`.
fn drop_site(toks: &[crate::lexer::Token], from: usize, to: usize, name: &str) -> Option<usize> {
    (from..to.saturating_sub(3)).find(|&j| {
        toks[j].is_ident("drop")
            && toks[j + 1].is_punct('(')
            && toks[j + 2].is_ident(name)
            && toks[j + 3].is_punct(')')
    })
}
