//! Error-drop audit for the commit / recovery / vacuum paths.
//!
//! `#![deny(unused_must_use)]` already forbids silently ignoring a
//! `Result`, but two idioms launder one past the compiler: `let _ = ...`
//! and a statement-final `.ok()`. In most code that is a style choice; on
//! the durability paths it hides exactly the failures (short write, failed
//! fsync, lost lock file) that recovery depends on surfacing. This rule
//! flags both idioms in the audited files (`wal.rs`, `pager.rs`,
//! `catalog.rs`, `archive.rs` by default) outside test code. Intentional
//! drops — e.g. best-effort flush in a `Drop` impl — carry a
//! `// lint:allow(reason)` marker.

use crate::model::SourceFile;
use crate::{Config, Diagnostic};

pub const RULE: &str = "error-drop";

pub fn check(cfg: &Config, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if !cfg.is_error_drop_audited(&file.rel_path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.token_in_test(i) {
                continue;
            }
            let t = &toks[i];
            // `let _ =` (exactly the wildcard pattern, not `_name`).
            if t.is_ident("let")
                && toks.get(i + 1).is_some_and(|a| a.is_ident("_"))
                && toks.get(i + 2).is_some_and(|a| a.is_punct('='))
            {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    t.line,
                    RULE,
                    "`let _ =` discards a Result on a durability path; handle or \
                     log the error"
                        .into(),
                ));
            }
            // Statement-final `.ok();` — using `.ok()` as a combinator
            // (e.g. `.ok().map(...)`) is fine.
            if t.is_punct('.')
                && toks.get(i + 1).is_some_and(|a| a.is_ident("ok"))
                && toks.get(i + 2).is_some_and(|a| a.is_punct('('))
                && toks.get(i + 3).is_some_and(|a| a.is_punct(')'))
                && toks.get(i + 4).is_some_and(|a| a.is_punct(';'))
            {
                let line = toks[i + 1].line;
                out.push(Diagnostic::new(
                    &file.rel_path,
                    line,
                    RULE,
                    "statement-final `.ok()` swallows an error on a durability \
                     path"
                        .into(),
                ));
            }
        }
    }
}
