//! pin-leak — snapshot pins must be released on every path.
//!
//! Values returned by `pin_snapshot` (manual pins, released with
//! `unpin_snapshot`) and `begin_snapshot` (RAII guards) hold back version
//! pruning: a pin that escapes a function on an error path without being
//! released pins the MVCC horizon until process exit, and a pin held
//! *across* a `checkpoint`/`vacuum`/`compress` call forces those passes
//! to retain every version chain the pin can still see. The analysis
//! tracks the set of live pins per CFG node (a may-lattice: union join)
//! and reports
//!
//! * a manual pin still live on a `?`/`return`/fall-through edge whose
//!   escaping statement does not mention the pin (returning the pin hands
//!   ownership to the caller, which is fine), and
//! * any pin — manual or RAII — live across a maintenance call.
//!
//! RAII guards are exempt from the escape check (their `Drop` runs on
//! every path) but not from the maintenance check. A `?` failing on the
//! acquire statement itself is not a leak: the pin was never taken.
//! Ownership transfers into the constructors named by
//! `Config::pin_transfer` (e.g. `SnapshotPager::new`) release the pins
//! named in the argument list.

use crate::cfg::{Cfg, EdgeKind};
use crate::dataflow::{solve, Analysis};
use crate::lexer::Token;
use crate::model::{Function, SourceFile};
use crate::{Config, Diagnostic};
use std::collections::{BTreeMap, BTreeSet};

pub const RULE: &str = "pin-leak";

const ACQUIRE_MANUAL: &str = "pin_snapshot";
const ACQUIRE_RAII: &str = "begin_snapshot";
const RELEASE: &str = "unpin_snapshot";

#[derive(Clone, Debug, PartialEq)]
struct Pin {
    /// Acquire line; tuple bindings (`let (lsn, n) = ...pin_snapshot()`)
    /// produce one Pin per name sharing this line, and killing any alias
    /// kills the whole group.
    line: u32,
    manual: bool,
}

type Fact = BTreeMap<String, Pin>;

#[derive(Clone, Debug)]
enum Event {
    Acquire {
        names: Vec<String>,
        manual: bool,
        line: u32,
    },
    /// Release/transfer: kills the named pins (and their line-aliases), or
    /// every manual pin when the call named none we track — e.g.
    /// `unpin_snapshot(self.lsn)`, which is conservative against leaks
    /// being the *absence* of a kill.
    Kill {
        names: Vec<String>,
        all_if_unnamed: bool,
    },
    Maintenance {
        name: String,
        line: u32,
    },
    /// Bare-name mention that moves a RAII guard (passed or wrapped by
    /// value); manual pins are unaffected.
    Move {
        name: String,
    },
}

struct PinAnalysis {
    events: Vec<Vec<Event>>,
}

impl PinAnalysis {
    fn apply(&self, idx: usize, fact: &mut Fact, mut on_maint: impl FnMut(&Fact, &str, u32)) {
        for ev in &self.events[idx] {
            match ev {
                Event::Acquire {
                    names,
                    manual,
                    line,
                } => {
                    for n in names {
                        fact.insert(
                            n.clone(),
                            Pin {
                                line: *line,
                                manual: *manual,
                            },
                        );
                    }
                }
                Event::Kill {
                    names,
                    all_if_unnamed,
                } => {
                    let mut hit_lines = BTreeSet::new();
                    for n in names {
                        if let Some(p) = fact.remove(n) {
                            hit_lines.insert(p.line);
                        }
                    }
                    if hit_lines.is_empty() {
                        if *all_if_unnamed {
                            fact.retain(|_, p| !p.manual);
                        }
                    } else {
                        // Kill tuple-aliases acquired on the same line.
                        fact.retain(|_, p| !hit_lines.contains(&p.line));
                    }
                }
                Event::Maintenance { name, line } => on_maint(fact, name, *line),
                Event::Move { name } => {
                    if fact.get(name).is_some_and(|p| !p.manual) {
                        fact.remove(name);
                    }
                }
            }
        }
    }
}

impl Analysis for PinAnalysis {
    type Fact = Fact;

    fn entry_fact(&self) -> Fact {
        BTreeMap::new()
    }

    fn join(&self, fact: &mut Fact, other: &Fact) -> bool {
        let mut changed = false;
        for (k, v) in other {
            if !fact.contains_key(k) {
                fact.insert(k.clone(), v.clone());
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, idx: usize, fact: &mut Fact) {
        self.apply(idx, fact, |_, _, _| {});
    }
}

pub fn check(lint: &Config, files: &[SourceFile], out: &mut Vec<Diagnostic>) -> Result<(), String> {
    for file in files {
        for f in &file.functions {
            if matches!(f.name.as_str(), ACQUIRE_MANUAL | ACQUIRE_RAII | RELEASE) {
                continue;
            }
            if file.token_in_test(f.body.start) {
                continue;
            }
            let body = &file.tokens[f.body.clone()];
            if !body
                .iter()
                .any(|t| t.is_ident(ACQUIRE_MANUAL) || t.is_ident(ACQUIRE_RAII))
            {
                continue;
            }
            check_fn(lint, file, f, out)?;
        }
    }
    Ok(())
}

fn check_fn(
    lint: &Config,
    file: &SourceFile,
    f: &Function,
    out: &mut Vec<Diagnostic>,
) -> Result<(), String> {
    let g = Cfg::build(file, f);
    let mut events = Vec::with_capacity(g.nodes.len());
    let mut acquired_here: Vec<Vec<String>> = Vec::with_capacity(g.nodes.len());
    for n in &g.nodes {
        let (evs, acq) = node_events(lint, &file.tokens, n.toks.clone());
        events.push(evs);
        acquired_here.push(acq);
    }
    let an = PinAnalysis { events };
    let facts = solve(&g, &an).map_err(|e| {
        format!(
            "{}: fn {} (line {}): {e}",
            file.rel_path.display(),
            f.qualified(),
            f.line
        )
    })?;

    let mut reported = BTreeSet::new();
    for (idx, entry) in facts.iter().enumerate() {
        let Some(entry) = entry else { continue };
        let node = &g.nodes[idx];
        let mut post = entry.clone();
        an.apply(idx, &mut post, |live, maint, line| {
            for (pname, pin) in live {
                if reported.insert((pin.line, line, pname.clone())) {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        line,
                        RULE,
                        format!(
                            "snapshot pin `{pname}` (line {}) is live across `{maint}` — \
                             pinned snapshots block version pruning; release it first or \
                             annotate with lint:allow(reason)",
                            pin.line
                        ),
                    ));
                }
            }
        });
        if post.is_empty() {
            continue;
        }
        let mentioned: BTreeSet<&str> = file.tokens[node.toks.clone()]
            .iter()
            .filter_map(Token::ident)
            .collect();
        let mentioned_lines: BTreeSet<u32> = post
            .iter()
            .filter(|(n, _)| mentioned.contains(n.as_str()))
            .map(|(_, p)| p.line)
            .collect();
        for kind in g.exit_edges(idx).collect::<BTreeSet<_>>() {
            for (pname, pin) in &post {
                if !pin.manual {
                    continue;
                }
                let escaped = match kind {
                    // The acquire statement's own `?` failing means the
                    // pin was never taken.
                    EdgeKind::Error => !acquired_here[idx].contains(pname),
                    // Returning (or falling through with) the pin's name
                    // hands it to the caller.
                    _ => !mentioned_lines.contains(&pin.line),
                };
                if !escaped {
                    continue;
                }
                let line = if node.line != 0 { node.line } else { pin.line };
                if reported.insert((pin.line, line, pname.clone())) {
                    let how = match kind {
                        EdgeKind::Error => "the `?` error path",
                        EdgeKind::Return => "an early return",
                        _ => "fall-through",
                    };
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        line,
                        RULE,
                        format!(
                            "snapshot pin `{pname}` (line {}) leaks via {how}: no \
                             unpin_snapshot/drop/transfer reaches this exit",
                            pin.line
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Scan one node's tokens into an ordered event list, plus the names
/// acquired inside this node (for the acquire-site `?` exemption).
fn node_events(
    lint: &Config,
    ts: &[Token],
    r: std::ops::Range<usize>,
) -> (Vec<Event>, Vec<String>) {
    let let_names = let_binding_names(ts, r.clone());
    let mut evs = Vec::new();
    let mut acquired = Vec::new();
    let mut i = r.start;
    while i < r.end {
        let Some(id) = ts[i].ident() else {
            i += 1;
            continue;
        };
        let called = ts.get(i + 1).is_some_and(|n| n.is_punct('('));
        if called && (id == ACQUIRE_MANUAL || id == ACQUIRE_RAII) {
            let names = if let_names.is_empty() {
                vec![format!("<pin@{}>", ts[i].line)]
            } else {
                let_names.clone()
            };
            acquired.extend(names.iter().cloned());
            evs.push(Event::Acquire {
                names,
                manual: id == ACQUIRE_MANUAL,
                line: ts[i].line,
            });
        } else if called && id == RELEASE {
            evs.push(Event::Kill {
                names: call_arg_idents(ts, i + 1, r.end),
                all_if_unnamed: true,
            });
        } else if called && id == "drop" {
            evs.push(Event::Kill {
                names: call_arg_idents(ts, i + 1, r.end),
                all_if_unnamed: false,
            });
        } else if lint.pin_transfer.iter().any(|t| t == id) {
            // `SnapshotPager::new(pager, lsn, n)`: find the argument list
            // (a few tokens ahead, past `::new`) and release what it names.
            let open = (i + 1..(i + 5).min(r.end)).find(|&j| ts[j].is_punct('('));
            if let Some(open) = open {
                evs.push(Event::Kill {
                    names: call_arg_idents(ts, open, r.end),
                    all_if_unnamed: true,
                });
            }
        } else if called && lint.pin_maintenance.iter().any(|m| m == id) {
            evs.push(Event::Maintenance {
                name: id.to_string(),
                line: ts[i].line,
            });
        } else {
            let borrowed = i
                .checked_sub(1)
                .is_some_and(|j| ts[j].is_punct('&') || ts[j].is_punct('.'));
            let used_in_place = ts
                .get(i + 1)
                .is_some_and(|n| n.is_punct('.') || n.is_punct('('));
            if !borrowed && !used_in_place {
                evs.push(Event::Move {
                    name: id.to_string(),
                });
            }
        }
        i += 1;
    }
    (evs, acquired)
}

/// Lower-case idents bound by a `let` pattern at the start of the node
/// (everything before the first balanced-depth `=`).
fn let_binding_names(ts: &[Token], r: std::ops::Range<usize>) -> Vec<String> {
    if r.is_empty() || !ts.get(r.start).is_some_and(|t| t.is_ident("let")) {
        return Vec::new();
    }
    let mut names = Vec::new();
    let mut depth = 0i32;
    for t in &ts[r.start + 1..r.end] {
        match &t.tok {
            crate::lexer::Tok::Punct('(') | crate::lexer::Tok::Punct('[') => depth += 1,
            crate::lexer::Tok::Punct(')') | crate::lexer::Tok::Punct(']') => depth -= 1,
            crate::lexer::Tok::Punct('=') if depth == 0 => break,
            crate::lexer::Tok::Ident(s) => {
                let keyword = matches!(s.as_str(), "mut" | "ref" | "_");
                let upper = s.starts_with(|c: char| c.is_ascii_uppercase());
                if !keyword && !upper {
                    names.push(s.clone());
                }
            }
            _ => {}
        }
    }
    names
}

/// Idents inside the parenthesized argument list opening at `open`.
fn call_arg_idents(ts: &[Token], open: usize, end: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0i32;
    for t in &ts[open..end] {
        match &t.tok {
            crate::lexer::Tok::Punct('(') => depth += 1,
            crate::lexer::Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            crate::lexer::Tok::Ident(s) if depth > 0 && s != "self" && s != "mut" => {
                names.push(s.clone());
            }
            _ => {}
        }
    }
    names
}
