//! WAL discipline: every page write must flow through the WAL layer.
//!
//! Durability in the engine rests on one invariant — a page image reaches
//! the base file only after its full-page WAL record is fsynced. Any code
//! that writes pages or truncates files outside the sanctioned modules can
//! silently break crash recovery, so this rule flags:
//!
//! * `.write_page(...)` calls,
//! * `.set_len(...)` calls (file truncation),
//! * raw file-creation APIs (`File::create`, `OpenOptions`, `fs::write`)
//!
//! in any scanned file not on the allowlist (`wal.rs`, `pager.rs`,
//! `failpoint.rs` by default). Sanctioned call sites elsewhere carry a
//! `// lint:allow(reason)` marker.

use crate::model::SourceFile;
use crate::{Config, Diagnostic};

pub const RULE: &str = "wal-discipline";

pub fn check(cfg: &Config, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for file in files {
        if cfg.is_wal_allowed_file(&file.rel_path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.token_in_test(i) {
                continue;
            }
            let t = &toks[i];
            let mut flag = |line: u32, msg: String| {
                out.push(Diagnostic::new(&file.rel_path, line, RULE, msg));
            };
            // `.write_page(` / `.set_len(` method calls.
            if t.is_punct('.') {
                if let (Some(name), Some(open)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if open.is_punct('(') {
                        match name.ident() {
                            Some("write_page") => flag(
                                name.line,
                                "direct page write bypasses the WAL; route through the \
                                 pager handed out by the catalog"
                                    .into(),
                            ),
                            Some("set_len") => flag(
                                name.line,
                                "file truncation outside the pager/WAL layer can discard \
                                 committed pages"
                                    .into(),
                            ),
                            _ => {}
                        }
                    }
                }
            }
            // Raw file-creation APIs. `File::create` is three tokens; a
            // plain `OpenOptions` mention is enough to flag.
            if t.is_ident("OpenOptions") {
                flag(t.line, "raw file open outside the pager/WAL layer".into());
            }
            if t.is_ident("File")
                && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks
                    .get(i + 3)
                    .is_some_and(|a| a.is_ident("create") || a.is_ident("options"))
            {
                flag(
                    t.line,
                    "raw file creation outside the pager/WAL layer".into(),
                );
            }
            if t.is_ident("fs")
                && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 3).is_some_and(|a| a.is_ident("write"))
            {
                flag(t.line, "raw fs::write outside the pager/WAL layer".into());
            }
        }
    }
}
