//! A hand-rolled Rust token scanner.
//!
//! The lint pass cannot depend on `syn`/`proc-macro2` (offline build), so
//! this module produces just enough structure for the rules: identifiers,
//! single-character punctuation, literals and lifetimes, each tagged with a
//! 1-based line number. Comments and whitespace are skipped, but
//! `// lint:allow(reason)` markers are collected so diagnostics can be
//! suppressed at specific sites.

/// One lexical token. Punctuation is kept as single characters (`::` is two
/// `Punct(':')` tokens) — the rules match short sequences, so there is no
/// need for compound operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `self`, `unwrap`, ...).
    Ident(String),
    /// Single punctuation character.
    Punct(char),
    /// String / raw-string / byte / char / numeric literal (content dropped).
    Lit,
    /// Lifetime such as `'a` (distinguished from char literals). The name
    /// is kept so the CFG builder can resolve labeled `break`/`continue`.
    Lifetime(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Result of lexing one file: the token stream plus the lines on which a
/// `lint:allow(...)` marker comment appears.
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allow_marker_lines: Vec<u32>,
}

pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut allow_marker_lines = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_lines {
        ($slice:expr) => {
            line += $slice.iter().filter(|&&c| c == b'\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                if src[start..i].contains("lint:allow(") {
                    allow_marker_lines.push(line);
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines!(&b[start..i]);
            }
            b'"' => {
                let start = i;
                i = skip_string(b, i);
                bump_lines!(&b[start..i]);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let start = i;
                i = skip_raw_or_byte_literal(b, i);
                let lit_line = line;
                bump_lines!(&b[start..i]);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line: lit_line,
                });
            }
            b'\'' => {
                // Lifetime or char literal.
                let next = b.get(i + 1).copied();
                match next {
                    Some(b'\\') => {
                        // Escaped char literal: '\n', '\'', '\u{..}'.
                        i += 2; // past '\ and the escape introducer
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                        tokens.push(Token {
                            tok: Tok::Lit,
                            line,
                        });
                    }
                    Some(n) if n.is_ascii_alphabetic() || n == b'_' => {
                        // Consume the identifier; a trailing quote makes it a
                        // char literal ('a'), otherwise it is a lifetime.
                        let mut j = i + 1;
                        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                        if b.get(j) == Some(&b'\'') {
                            i = j + 1;
                            tokens.push(Token {
                                tok: Tok::Lit,
                                line,
                            });
                        } else {
                            let name = src[i + 1..j].to_string();
                            i = j;
                            tokens.push(Token {
                                tok: Tok::Lifetime(name),
                                line,
                            });
                        }
                    }
                    Some(_) => {
                        // Char literal like '(' or '0'.
                        i += 2;
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                        tokens.push(Token {
                            tok: Tok::Lit,
                            line,
                        });
                    }
                    None => i += 1,
                }
            }
            c if c.is_ascii_digit() => {
                i = skip_number(b, i);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c => {
                tokens.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }

    Lexed {
        tokens,
        allow_marker_lines,
    }
}

/// Past-the-end index of a `"..."` string starting at `i`.
fn skip_string(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Does `r`/`b` at position `i` introduce a raw string, byte string, raw
/// byte string or byte char literal (`r"`, `r#`, `b"`, `b'`, `br"`, `br#`)?
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    matches!(
        &b[i..],
        [b'r', b'"', ..]
            | [b'r', b'#', ..]
            | [b'b', b'"', ..]
            | [b'b', b'\'', ..]
            | [b'b', b'r', b'"', ..]
            | [b'b', b'r', b'#', ..]
    )
}

fn skip_raw_or_byte_literal(b: &[u8], mut i: usize) -> usize {
    // Skip the prefix letters.
    let raw = b[i] == b'r' || (b[i] == b'b' && b.get(i + 1) == Some(&b'r'));
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    if raw {
        let mut hashes = 0;
        while b.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        // Opening quote.
        i += 1;
        // Find closing quote followed by the same number of hashes.
        while i < b.len() {
            if b[i] == b'"' && b[i + 1..].iter().take(hashes).all(|&c| c == b'#') {
                return i + 1 + hashes;
            }
            i += 1;
        }
        i
    } else if b.get(i) == Some(&b'\'') {
        // Byte char literal b'x' / b'\n'.
        i += 1;
        while i < b.len() && b[i] != b'\'' {
            if b[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        i + 1
    } else {
        skip_string(b, i)
    }
}

/// Past-the-end index of a numeric literal starting at `i`. Stops before a
/// `..` range operator so `0..10` lexes as two literals.
fn skip_number(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        let c = b[i];
        let continues = c.is_ascii_alphanumeric()
            || c == b'_'
            || (c == b'.'
                && b.get(i + 1) != Some(&b'.')
                && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
            || ((c == b'+' || c == b'-')
                && matches!(b.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E')));
        if !continues {
            break;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_strings_and_chars_are_opaque() {
        let src = r##"
            // fn not_here() {}
            /* fn also /* nested */ not_here() {} */
            let s = "fn not_here() {}";
            let r = r#"fn not_here() { "quoted" }"#;
            let c = '{';
            let e = '\'';
            let b = b"fn bytes";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "not_here"));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }").tokens;
        let lifetimes = toks
            .iter()
            .filter(|t| matches!(&t.tok, Tok::Lifetime(n) if n == "a"))
            .count();
        assert_eq!(lifetimes, 2);
        assert!(toks.iter().any(|t| t.tok == Tok::Lit), "char literal lexed");
    }

    #[test]
    fn allow_markers_record_their_line() {
        let src = "fn f() {}\n// lint:allow(reason here)\nfn g() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.allow_marker_lines, vec![2]);
    }

    #[test]
    fn range_does_not_swallow_dots() {
        let toks = lex("&x[1..n]").tokens;
        assert!(toks.iter().filter(|t| t.is_punct('.')).count() == 2);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet b = 1;";
        let toks = lex(src).tokens;
        let b_line = toks
            .iter()
            .find(|t| t.is_ident("b"))
            .map(|t| t.line)
            .unwrap();
        assert_eq!(b_line, 3);
    }
}
