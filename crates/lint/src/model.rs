//! Per-file source model built on the token stream: `#[cfg(test)]` region
//! detection, `lint:allow` suppression, and a lightweight function/impl
//! index used by the lock-order analysis.

use crate::lexer::{lex, Tok, Token};
use std::path::PathBuf;

/// One scanned source file.
pub struct SourceFile {
    /// Path relative to the lint root (what diagnostics print).
    pub rel_path: PathBuf,
    pub tokens: Vec<Token>,
    /// `in_test[i]` is true when token `i` sits inside a `#[cfg(test)]`
    /// item or a `#[test]` function body.
    pub in_test: Vec<bool>,
    /// `(suppressed line, marker line)` pairs: diagnostics on the first
    /// are suppressed by the `lint:allow` comment on the second.
    suppressed_lines: Vec<(u32, u32)>,
    /// Functions defined in this file (token ranges index into `tokens`).
    pub functions: Vec<Function>,
}

/// A `fn` item: its name, the `impl`/`trait` type it belongs to (if any)
/// and the token range of its body (exclusive of the outer braces).
pub struct Function {
    pub name: String,
    pub owner: Option<String>,
    pub body: std::ops::Range<usize>,
    pub line: u32,
}

impl Function {
    /// `Type::name` when the function is a method, else just `name`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl SourceFile {
    pub fn parse(rel_path: PathBuf, src: &str) -> SourceFile {
        let lexed = lex(src);
        let tokens = lexed.tokens;
        let in_test = mark_test_regions(&tokens);
        let suppressed_lines = suppressed_lines(&tokens, &lexed.allow_marker_lines);
        let functions = index_functions(&tokens);
        SourceFile {
            rel_path,
            tokens,
            in_test,
            suppressed_lines,
            functions,
        }
    }

    pub fn is_suppressed(&self, line: u32) -> bool {
        self.suppressed_lines.iter().any(|&(l, _)| l == line)
    }

    /// Line of the `lint:allow` marker covering `line`, if any.
    pub fn allow_marker(&self, line: u32) -> Option<u32> {
        self.suppressed_lines
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, m)| m)
    }

    pub fn token_in_test(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }
}

/// A `lint:allow` marker suppresses diagnostics on its own line when the
/// line also holds code (suffix form), otherwise on the next line that
/// holds a token — which skips continuation comment lines, so a multi-line
/// allow comment still reaches the statement below it.
fn suppressed_lines(tokens: &[Token], markers: &[u32]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for &m in markers {
        if tokens.iter().any(|t| t.line == m) {
            out.push((m, m));
        } else if let Some(next) = tokens.iter().map(|t| t.line).find(|&l| l > m) {
            out.push((next, m));
        }
    }
    out
}

/// Mark every token inside a `#[cfg(test)]` / `#[test]` item. The attribute
/// arms the *next* braced block; an intervening `;` (attribute on a
/// brace-less item) disarms it.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut names = Vec::new();
            while j < tokens.len() && depth > 0 {
                match &tokens[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(s) => names.push(s.as_str().to_string()),
                    _ => {}
                }
                j += 1;
            }
            let is_test_attr = match names.first().map(String::as_str) {
                Some("test") => true,
                Some("cfg") => names.iter().any(|n| n == "test"),
                _ => false,
            };
            if is_test_attr {
                // Find the block the attribute applies to.
                let mut k = j;
                let mut found = None;
                while k < tokens.len() {
                    match &tokens[k].tok {
                        Tok::Punct('{') => {
                            found = Some(k);
                            break;
                        }
                        Tok::Punct(';') => break,
                        _ => k += 1,
                    }
                }
                if let Some(open) = found {
                    let close = matching_brace(tokens, open);
                    for flag in in_test.iter_mut().take(close + 1).skip(i) {
                        *flag = true;
                    }
                    i = j;
                    continue;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Walk the token stream recording `impl`/`trait` owners and `fn` bodies.
fn index_functions(tokens: &[Token]) -> Vec<Function> {
    let mut functions = Vec::new();
    // Stack of (close_brace_index, owner_name) for impl/trait blocks.
    let mut owners: Vec<(usize, String)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("impl") || t.is_ident("trait") {
            if let Some((open, name)) = impl_target(tokens, i) {
                owners.push((matching_brace(tokens, open), name));
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if let Some(name) = name_tok.ident() {
                    // Find the body `{` (or `;` for a trait signature) at
                    // paren/bracket depth 0.
                    let mut j = i + 2;
                    let mut depth = 0i32;
                    let mut body = None;
                    while j < tokens.len() {
                        match tokens[j].tok {
                            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                            Tok::Punct('{') if depth == 0 => {
                                body = Some(j);
                                break;
                            }
                            Tok::Punct(';') if depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(open) = body {
                        let close = matching_brace(tokens, open);
                        let owner = owners
                            .iter()
                            .rev()
                            .find(|(end, _)| *end > i)
                            .map(|(_, n)| n.clone());
                        functions.push(Function {
                            name: name.to_string(),
                            owner,
                            body: open + 1..close,
                            line: t.line,
                        });
                        // Keep scanning inside the body too: nested fns are
                        // rare but harmless to index twice-removed.
                        i = open + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    functions
}

/// For an `impl`/`trait` keyword at `i`, return the opening brace index and
/// the implemented type's name (last path segment; for `impl Trait for T`
/// the segment after `for`).
fn impl_target(tokens: &[Token], i: usize) -> Option<(usize, String)> {
    let mut j = i + 1;
    let mut after_for = false;
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut for_ident: Option<String> = None;
    while j < tokens.len() {
        match &tokens[j].tok {
            // Generic parameter lists (`impl<P: Pager> WalPager<P>`) must
            // not contribute type names; only depth-0 idents count.
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('{') => {
                let name = if after_for { for_ident } else { last_ident };
                return name.map(|n| (j, n));
            }
            Tok::Punct(';') => return None,
            _ if angle > 0 => {}
            Tok::Ident(s) if s == "for" => after_for = true,
            Tok::Ident(s) if s == "where" => {
                // Type name is settled before the where clause.
                let mut k = j;
                while k < tokens.len() && !tokens[k].is_punct('{') {
                    k += 1;
                }
                let name = if after_for { for_ident } else { last_ident };
                return name.map(|n| (k, n));
            }
            Tok::Ident(s) => {
                if after_for {
                    for_ident = Some(s.clone());
                } else {
                    last_ident = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), src)
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src =
            "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\n";
        let f = parse(src);
        let unwraps: Vec<(u32, bool)> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, t)| (t.line, f.token_in_test(i)))
            .collect();
        assert_eq!(unwraps, vec![(1, false), (4, true)]);
    }

    #[test]
    fn functions_and_owners_are_indexed() {
        let src = "impl<P: Pager> WalPager<P> { fn commit(&self) {} }\n\
                   impl Pager for MemPager { fn write_page(&self) {} }\n\
                   fn free() {}\n\
                   trait Log { fn append(&self) { } fn sig(&self); }";
        let f = parse(src);
        let names: Vec<String> = f.functions.iter().map(Function::qualified).collect();
        assert_eq!(
            names,
            vec![
                "WalPager::commit",
                "MemPager::write_page",
                "free",
                "Log::append"
            ]
        );
    }

    #[test]
    fn suffix_and_preceding_allow_markers_suppress() {
        let src = "do_thing(); // lint:allow(suffix)\n\
                   // lint:allow(block form spanning\n\
                   // two comment lines)\n\
                   other_thing();\n\
                   third_thing();\n";
        let f = parse(src);
        assert!(f.is_suppressed(1));
        assert!(f.is_suppressed(4));
        assert!(!f.is_suppressed(5));
    }
}
