//! Per-function control-flow graphs built on the token stream.
//!
//! The flow-sensitive analyses (pin-leak, wal-bracket, corrupt-taint)
//! need to reason about *paths*, not just token neighborhoods: a pin
//! released in one `match` arm but not another, a `?` that escapes a WAL
//! bracket, a tainted value swallowed three statements after it was
//! produced. This module turns one [`Function`] body into a small CFG:
//!
//! * statements become nodes; a statement is **split at every depth-0
//!   `?`**, and each `?`-terminated segment gets an [`EdgeKind::Error`]
//!   edge to the exit node (the early-return path of the `?` operator);
//! * `if`/`else if`/`else`, `match` arms, `let ... else` and bare blocks
//!   branch and re-join through empty join nodes;
//! * `loop`/`while`/`for` get back edges, with `break`/`continue`
//!   resolved through a loop stack that understands `'label:` loops;
//! * `return` statements (and the implicit fall-through of the last
//!   statement) edge to the single exit node.
//!
//! Deliberate approximations, chosen to keep the builder honest about
//! what it can see in a token stream: statements are atomic below the
//! statement level (a `match`/`if` used as a *sub-expression* of a `let`
//! is one node — events in all its arms appear unconditionally), `?`
//! inside nested parens/braces (closure bodies, nested calls) does not
//! split, and item definitions nested in a body (`fn`, `impl`, ...) are
//! skipped here and analyzed as their own functions. All approximations
//! are *may*-biased: they can add feasible-looking paths, never hide a
//! real one, except for the nested-`?` case which is documented in
//! DESIGN.md §7.

use crate::lexer::{Tok, Token};
use crate::model::{matching_brace, Function, SourceFile};
use std::ops::Range;

/// Why control flows along an edge. The solver ignores this; checkers use
/// it to tell an error escape (`?`) from a normal return or a loop edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Sequential flow, branch taken/not-taken, or fall-through to exit.
    Normal,
    /// The error path of a `?` operator (propagates to the exit node).
    Error,
    /// An explicit `return`.
    Return,
    /// `break` to the loop's after-node.
    Break,
    /// `continue` to the loop header.
    Continue,
    /// Loop back edge (body end to header).
    Back,
}

#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub to: usize,
    pub kind: EdgeKind,
}

/// Extra structure for a `match` arm's entry node: the pattern tokens and
/// the full body token range, used by corrupt-taint's arm inspection.
#[derive(Debug, Clone)]
pub struct ArmInfo {
    pub pat: Range<usize>,
    pub body: Range<usize>,
}

/// One CFG node: a token segment (possibly empty for join/header nodes)
/// plus its outgoing edges.
#[derive(Debug)]
pub struct Node {
    /// Token range (indices into the file's token vec) this node covers.
    pub toks: Range<usize>,
    /// Line of the first token (0 for empty synthetic nodes).
    pub line: u32,
    pub succs: Vec<Edge>,
    /// Set when this node is the entry of a `match` arm.
    pub arm: Option<ArmInfo>,
}

pub struct Cfg {
    pub nodes: Vec<Node>,
    pub entry: usize,
    /// The single exit node (empty). Every `return`, `?` error path and
    /// the final fall-through edge here.
    pub exit: usize,
}

impl Cfg {
    /// Build the CFG for `f`'s body.
    pub fn build(file: &SourceFile, f: &Function) -> Cfg {
        let mut b = Builder {
            toks: &file.tokens,
            nodes: Vec::new(),
            exit: 0,
            loops: Vec::new(),
        };
        b.exit = b.node(f.body.end..f.body.end);
        let (entry, open) = b.stmts(f.body.clone());
        for o in open {
            b.edge(o, b.exit, EdgeKind::Normal);
        }
        Cfg {
            entry,
            exit: b.exit,
            nodes: b.nodes,
        }
    }

    /// Does `node` have any edge to the exit node?
    pub fn exit_edges(&self, node: usize) -> impl Iterator<Item = EdgeKind> + '_ {
        let exit = self.exit;
        self.nodes[node]
            .succs
            .iter()
            .filter(move |e| e.to == exit)
            .map(|e| e.kind)
    }
}

struct LoopFrame {
    label: Option<String>,
    header: usize,
    after: usize,
}

struct Builder<'a> {
    toks: &'a [Token],
    nodes: Vec<Node>,
    exit: usize,
    loops: Vec<LoopFrame>,
}

/// Keywords that introduce a nested item to skip rather than a statement.
fn is_item_start(s: &str) -> bool {
    matches!(
        s,
        "fn" | "struct"
            | "enum"
            | "union"
            | "impl"
            | "trait"
            | "mod"
            | "use"
            | "type"
            | "macro_rules"
    )
}

impl<'a> Builder<'a> {
    fn node(&mut self, toks: Range<usize>) -> usize {
        let line = self.toks.get(toks.start).map(|t| t.line).unwrap_or(0);
        self.nodes.push(Node {
            toks,
            line,
            succs: Vec::new(),
            arm: None,
        });
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        self.nodes[from].succs.push(Edge { to, kind });
    }

    fn connect(&mut self, from: &[usize], to: usize) {
        for &f in from {
            self.edge(f, to, EdgeKind::Normal);
        }
    }

    /// Index just past the end of the statement starting at `i`: the first
    /// `;` with parens, brackets and braces all balanced, or `end`.
    fn stmt_end(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            match self.toks[i].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct(';') if depth == 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// First index in `[i, end)` holding `c` at balanced depth, if any.
    fn find_at_depth0(&self, mut i: usize, end: usize, c: char) -> Option<usize> {
        let mut depth = 0i32;
        while i < end {
            match self.toks[i].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                    if self.toks[i].is_punct(c) && depth == 0 {
                        return Some(i);
                    }
                    depth += 1;
                }
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct(p) if p == c && depth == 0 => return Some(i),
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Chain of nodes for one expression segment `[start, end)`, split at
    /// every depth-0 `?`. Returns (entry, final node). `?`-terminated
    /// segments get an Error edge to exit.
    fn expr_chain(&mut self, start: usize, end: usize) -> (usize, usize) {
        let mut cuts = vec![start];
        let mut depth = 0i32;
        for i in start..end {
            match self.toks[i].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                // `?` at depth 0 ends a segment; `?Sized` bounds don't.
                Tok::Punct('?')
                    if depth == 0 && !self.toks.get(i + 1).is_some_and(|t| t.is_ident("Sized")) =>
                {
                    cuts.push(i + 1);
                }
                _ => {}
            }
        }
        cuts.push(end);
        let mut entry = None;
        let mut prev: Option<usize> = None;
        for w in cuts.windows(2) {
            let n = self.node(w[0]..w[1]);
            if entry.is_none() {
                entry = Some(n);
            }
            if let Some(p) = prev {
                // p ended with a `?`: error path to exit, ok path onward.
                self.edge(p, self.exit, EdgeKind::Error);
                self.edge(p, n, EdgeKind::Normal);
            }
            prev = Some(n);
        }
        let last = prev.expect("cuts always yields at least one segment"); // lint:allow(structurally non-empty)
        (entry.unwrap_or(last), last)
    }

    /// Parse the statements in `[range)`. Returns (entry node, open ends
    /// whose Normal successor is the code after the range).
    fn stmts(&mut self, range: Range<usize>) -> (usize, Vec<usize>) {
        let entry = self.node(range.start..range.start);
        let mut open = vec![entry];
        let mut i = range.start;
        while i < range.end {
            let t = &self.toks[i];
            // Stray semicolons.
            if t.is_punct(';') {
                i += 1;
                continue;
            }
            // Attributes on statements: skip `#[...]`.
            if t.is_punct('#') && self.toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < range.end {
                    match self.toks[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = (j + 1).min(range.end);
                continue;
            }
            // Nested items: skipped here, analyzed as their own functions.
            if t.ident().is_some_and(is_item_start)
                || (t.is_ident("pub")
                    && self
                        .toks
                        .get(i + 1)
                        .is_some_and(|n| n.ident().is_some_and(is_item_start)))
                || ((t.is_ident("const") || t.is_ident("static"))
                    && self.toks.get(i + 1).is_some_and(|n| n.ident().is_some()))
            {
                i = self.skip_item(i, range.end);
                continue;
            }
            let (s_entry, s_open, next) = self.stmt(i, range.end);
            self.connect(&open, s_entry);
            open = s_open;
            i = next;
        }
        (entry, open)
    }

    /// Skip a nested item (`fn f() {...}`, `const N: u32 = ...;`, ...).
    fn skip_item(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            match self.toks[i].tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => return matching_brace_from(self.toks, i) + 1,
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                Tok::Punct(';') if depth == 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// One statement starting at `i`. Returns (entry, open ends, index
    /// past the statement).
    fn stmt(&mut self, i: usize, end: usize) -> (usize, Vec<usize>, usize) {
        let t = &self.toks[i];
        // `'label:` before a loop keyword.
        if let Tok::Lifetime(label) = &t.tok {
            if self.toks.get(i + 1).is_some_and(|c| c.is_punct(':'))
                && self
                    .toks
                    .get(i + 2)
                    .is_some_and(|k| k.is_ident("loop") || k.is_ident("while") || k.is_ident("for"))
            {
                let label = label.clone();
                return self.loop_stmt(i + 2, end, Some(label));
            }
        }
        match t.ident() {
            Some("if") => self.if_stmt(i, end),
            Some("match") => self.match_stmt(i, end),
            Some("loop") | Some("while") | Some("for") => self.loop_stmt(i, end, None),
            Some("return") => {
                let stop = self.stmt_end(i, end);
                let (entry, last) = self.expr_chain(i, stop);
                self.edge(last, self.exit, EdgeKind::Return);
                (entry, Vec::new(), stop)
            }
            Some("break") | Some("continue") => self.jump_stmt(i, end),
            Some("let") => self.let_stmt(i, end),
            Some("unsafe") if self.toks.get(i + 1).is_some_and(|b| b.is_punct('{')) => {
                self.block_stmt(i + 1)
            }
            _ if t.is_punct('{') => self.block_stmt(i),
            _ => {
                // Plain expression statement (or the trailing expression).
                let stop = self.stmt_end(i, end);
                let (entry, last) = self.expr_chain(i, stop);
                (entry, vec![last], stop)
            }
        }
    }

    /// Bare `{ ... }` block at `i`.
    fn block_stmt(&mut self, open_brace: usize) -> (usize, Vec<usize>, usize) {
        let close = matching_brace_from(self.toks, open_brace);
        let (entry, open) = self.stmts(open_brace + 1..close);
        (entry, open, close + 1)
    }

    /// `break ['label] [expr]` / `continue ['label]`.
    fn jump_stmt(&mut self, i: usize, end: usize) -> (usize, Vec<usize>, usize) {
        let is_break = self.toks[i].is_ident("break");
        let label = match self.toks.get(i + 1).map(|t| &t.tok) {
            Some(Tok::Lifetime(l)) => Some(l.clone()),
            _ => None,
        };
        let stop = self.stmt_end(i, end);
        let n = self.node(i..stop);
        let frame = self
            .loops
            .iter()
            .rev()
            .find(|f| label.is_none() || f.label == label)
            .or_else(|| self.loops.last());
        let (target, kind) = match frame {
            Some(f) if is_break => (f.after, EdgeKind::Break),
            Some(f) => (f.header, EdgeKind::Continue),
            // break/continue outside any loop we can see: treat as an
            // escape so analyses stay conservative.
            None => (self.exit, EdgeKind::Break),
        };
        self.edge(n, target, kind);
        (n, Vec::new(), stop)
    }

    /// `let pat = expr;` with `let ... else { ... }` support.
    fn let_stmt(&mut self, i: usize, end: usize) -> (usize, Vec<usize>, usize) {
        let stop = self.stmt_end(i, end);
        // `let-else`: a depth-0 `else` inside the statement.
        let mut depth = 0i32;
        let mut else_at = None;
        for j in i..stop {
            match self.toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Ident(ref s) if s == "else" && depth == 0 => {
                    else_at = Some(j);
                    break;
                }
                _ => {}
            }
        }
        match else_at {
            None => {
                let (entry, last) = self.expr_chain(i, stop);
                (entry, vec![last], stop)
            }
            Some(e) => {
                let (entry, last) = self.expr_chain(i, e);
                let open_brace = e + 1; // `else {`
                let close = matching_brace_from(self.toks, open_brace);
                let (else_entry, else_open) = self.stmts(open_brace + 1..close);
                self.edge(last, else_entry, EdgeKind::Normal);
                let join = self.node(stop..stop);
                self.edge(last, join, EdgeKind::Normal);
                // Grammar says the else block diverges; if it has open
                // ends anyway, connecting them keeps us conservative.
                self.connect(&else_open, join);
                (entry, vec![join], stop)
            }
        }
    }

    /// `if [let] cond { } [else if ... | else { }]`.
    fn if_stmt(&mut self, i: usize, end: usize) -> (usize, Vec<usize>, usize) {
        let brace = match self.find_at_depth0(i + 1, end, '{') {
            Some(b) => b,
            None => {
                // Malformed; treat the rest as one atomic statement.
                let stop = self.stmt_end(i, end);
                let (entry, last) = self.expr_chain(i, stop);
                return (entry, vec![last], stop);
            }
        };
        let (cond_entry, cond_last) = self.expr_chain(i, brace);
        let close = matching_brace_from(self.toks, brace);
        let (then_entry, then_open) = self.stmts(brace + 1..close);
        self.edge(cond_last, then_entry, EdgeKind::Normal);
        let mut next = close + 1;
        let mut open = then_open;
        if self.toks.get(next).is_some_and(|t| t.is_ident("else")) {
            let (else_entry, else_open, after) =
                if self.toks.get(next + 1).is_some_and(|t| t.is_ident("if")) {
                    self.if_stmt(next + 1, end)
                } else if self.toks.get(next + 1).is_some_and(|t| t.is_punct('{')) {
                    self.block_stmt(next + 1)
                } else {
                    // Malformed else; stop here.
                    let n = self.node(next..next + 1);
                    (n, vec![n], next + 1)
                };
            self.edge(cond_last, else_entry, EdgeKind::Normal);
            open.extend(else_open);
            next = after;
        } else {
            // No else: condition can fall through.
            let join = self.node(next..next);
            self.edge(cond_last, join, EdgeKind::Normal);
            open.push(join);
        }
        let join = self.node(next..next);
        self.connect(&open, join);
        (cond_entry, vec![join], next)
    }

    /// `match expr { pat => body, ... }`.
    fn match_stmt(&mut self, i: usize, end: usize) -> (usize, Vec<usize>, usize) {
        let brace = match self.find_at_depth0(i + 1, end, '{') {
            Some(b) => b,
            None => {
                let stop = self.stmt_end(i, end);
                let (entry, last) = self.expr_chain(i, stop);
                return (entry, vec![last], stop);
            }
        };
        let (scrut_entry, scrut_last) = self.expr_chain(i, brace);
        let close = matching_brace_from(self.toks, brace);
        let join = self.node(close + 1..close + 1);
        let mut j = brace + 1;
        let mut any_arm = false;
        while j < close {
            if self.toks[j].is_punct(',') || self.toks[j].is_punct(';') {
                j += 1;
                continue;
            }
            // Pattern up to the depth-0 `=>`.
            let arrow = match self.find_arrow(j, close) {
                Some(a) => a,
                None => break,
            };
            let pat = j..arrow;
            let body_start = arrow + 2;
            let (body, after_body) = if self.toks.get(body_start).is_some_and(|t| t.is_punct('{')) {
                let bclose = matching_brace_from(self.toks, body_start);
                (body_start + 1..bclose, bclose + 1)
            } else {
                let comma = self.find_at_depth0(body_start, close, ',').unwrap_or(close);
                (body_start..comma, comma + 1)
            };
            let (arm_entry, arm_open) = self.stmts(body.clone());
            self.nodes[arm_entry].arm = Some(ArmInfo {
                pat,
                body: body.clone(),
            });
            self.edge(scrut_last, arm_entry, EdgeKind::Normal);
            self.connect(&arm_open, join);
            any_arm = true;
            j = after_body;
        }
        if !any_arm {
            // `match x {}` on an uninhabited type: conservative edge on.
            self.edge(scrut_last, join, EdgeKind::Normal);
        }
        (scrut_entry, vec![join], close + 1)
    }

    /// First depth-0 `=>` in `[i, end)`.
    fn find_arrow(&self, mut i: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        while i < end {
            match self.toks[i].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct('=')
                    if depth == 0 && self.toks.get(i + 1).is_some_and(|t| t.is_punct('>')) =>
                {
                    return Some(i)
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// `loop { }` / `while cond { }` / `for pat in iter { }` at `kw`.
    fn loop_stmt(
        &mut self,
        kw: usize,
        end: usize,
        label: Option<String>,
    ) -> (usize, Vec<usize>, usize) {
        let brace = match self.find_at_depth0(kw + 1, end, '{') {
            Some(b) if self.toks[kw].is_ident("loop") || b > kw + 1 => b,
            Some(b) => b,
            None => {
                let stop = self.stmt_end(kw, end);
                let (entry, last) = self.expr_chain(kw, stop);
                return (entry, vec![last], stop);
            }
        };
        let close = matching_brace_from(self.toks, brace);
        let after = self.node(close + 1..close + 1);
        // Header: condition/iterator chain (empty for `loop`).
        let (header_entry, header_last) = self.expr_chain(kw, brace);
        if !self.toks[kw].is_ident("loop") {
            // while/for: the condition can be false / iterator empty.
            self.edge(header_last, after, EdgeKind::Normal);
        }
        self.loops.push(LoopFrame {
            label,
            header: header_entry,
            after,
        });
        let (body_entry, body_open) = self.stmts(brace + 1..close);
        self.loops.pop();
        self.edge(header_last, body_entry, EdgeKind::Normal);
        for o in body_open {
            self.edge(o, header_entry, EdgeKind::Back);
        }
        (header_entry, vec![after], close + 1)
    }
}

/// `matching_brace` wrapper usable with an arbitrary opening index.
fn matching_brace_from(toks: &[Token], open: usize) -> usize {
    matching_brace(toks, open)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;
    use std::path::PathBuf;

    fn cfg_of(src: &str) -> (SourceFile, Cfg) {
        let f = SourceFile::parse(PathBuf::from("x.rs"), src);
        assert!(!f.functions.is_empty(), "fixture declares a function");
        let cfg = Cfg::build(&f, &f.functions[0]);
        (f, cfg)
    }

    /// Lines of nodes that carry an Error edge to exit.
    fn error_lines(cfg: &Cfg) -> Vec<u32> {
        cfg.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| cfg.exit_edges(*i).any(|k| k == EdgeKind::Error))
            .map(|(_, n)| n.line)
            .collect()
    }

    #[test]
    fn question_marks_split_and_edge_to_exit() {
        let (_, cfg) = cfg_of("fn f() -> R {\n  let a = g()?;\n  let b = h(a)?;\n  Ok(b)\n}");
        assert_eq!(error_lines(&cfg), vec![2, 3]);
        // Trailing expression falls through to exit.
        let exits: usize = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| cfg.exit_edges(*i).any(|k| k == EdgeKind::Normal))
            .count();
        assert!(exits >= 1, "trailing expression reaches exit");
    }

    #[test]
    fn nested_question_does_not_split() {
        let (_, cfg) = cfg_of("fn f() -> R {\n  g(h()?);\n  Ok(())\n}");
        // The `?` sits at paren depth 1: treated atomically.
        assert_eq!(error_lines(&cfg), Vec::<u32>::new());
    }

    #[test]
    fn if_else_joins() {
        let (_, cfg) = cfg_of("fn f(c: bool) {\n  if c { a(); } else { b(); }\n  t();\n}");
        // a() and b() both flow to the join, then t().
        let has = |frag: u32| cfg.nodes.iter().any(|n| n.line == frag);
        assert!(has(2) && has(3));
        // Exactly one fall-through path reaches exit.
        assert!(cfg
            .nodes
            .iter()
            .enumerate()
            .any(|(i, _)| cfg.exit_edges(i).next().is_some()));
    }

    #[test]
    fn match_arms_are_nodes_with_patterns() {
        let (f, cfg) = cfg_of(
            "fn f(x: R) {\n  match x {\n    Ok(v) => use_it(v),\n    Err(e) => return,\n  }\n  t();\n}",
        );
        let arms: Vec<String> = cfg
            .nodes
            .iter()
            .filter_map(|n| n.arm.as_ref())
            .map(|a| {
                f.tokens[a.pat.clone()]
                    .iter()
                    .filter_map(|t| t.ident())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        assert_eq!(arms.len(), 2, "two arm entries: {arms:?}");
        assert!(arms.iter().any(|a| a.contains("Ok")));
        assert!(arms.iter().any(|a| a.contains("Err")));
        // The Err arm returns.
        assert!(cfg
            .nodes
            .iter()
            .enumerate()
            .any(|(i, _)| cfg.exit_edges(i).any(|k| k == EdgeKind::Return)));
    }

    #[test]
    fn loops_have_back_edges_and_breaks() {
        let (_, cfg) =
            cfg_of("fn f() {\n  loop {\n    if done() { break; }\n    step();\n  }\n  t();\n}");
        let backs = cfg
            .nodes
            .iter()
            .flat_map(|n| n.succs.iter())
            .filter(|e| e.kind == EdgeKind::Back)
            .count();
        let breaks = cfg
            .nodes
            .iter()
            .flat_map(|n| n.succs.iter())
            .filter(|e| e.kind == EdgeKind::Break)
            .count();
        assert!(backs >= 1, "loop body edges back to header");
        assert_eq!(breaks, 1);
    }

    #[test]
    fn labeled_break_targets_outer_loop() {
        let (_, cfg) = cfg_of(
            "fn f() {\n  'outer: for a in xs {\n    for b in ys {\n      if c(a, b) { break 'outer; }\n    }\n  }\n  t();\n}",
        );
        // The labeled break must reach the *outer* loop's after-node, from
        // which t() is reachable; a plain inner break would re-enter the
        // outer header. We check the break edge's target is not the inner
        // after node by confirming only one Break edge exists and it does
        // not point at a node that edges Back.
        let break_edges: Vec<Edge> = cfg
            .nodes
            .iter()
            .flat_map(|n| n.succs.iter().copied())
            .filter(|e| e.kind == EdgeKind::Break)
            .collect();
        assert_eq!(break_edges.len(), 1);
        let target = break_edges[0].to;
        let target_backs = cfg.nodes[target]
            .succs
            .iter()
            .filter(|e| e.kind == EdgeKind::Back)
            .count();
        assert_eq!(target_backs, 0, "break 'outer lands outside both loops");
    }

    #[test]
    fn while_condition_can_skip_body() {
        let (_, cfg) = cfg_of("fn f() {\n  while cond() {\n    body();\n  }\n  t();\n}");
        // Header has two Normal successors: body and after.
        let header = cfg
            .nodes
            .iter()
            .position(|n| n.line == 2 && n.succs.len() >= 2)
            .expect("while header found");
        assert!(cfg.nodes[header].succs.len() >= 2);
    }

    #[test]
    fn let_else_diverges_through_else_block() {
        let (_, cfg) =
            cfg_of("fn f() {\n  let Some(x) = get() else {\n    return;\n  };\n  use_it(x);\n}");
        assert!(cfg
            .nodes
            .iter()
            .enumerate()
            .any(|(i, _)| cfg.exit_edges(i).any(|k| k == EdgeKind::Return)));
    }

    #[test]
    fn nested_items_are_skipped() {
        let (_, cfg) = cfg_of("fn f() {\n  fn helper() { oops()?; }\n  work();\n}");
        // helper's `?` belongs to helper's own CFG, not f's.
        assert_eq!(error_lines(&cfg), Vec::<u32>::new());
    }

    #[test]
    fn return_with_question_gets_both_edges() {
        let (_, cfg) = cfg_of("fn f() -> R {\n  return g()?.finish();\n}");
        let mut kinds: Vec<EdgeKind> = cfg
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, _)| cfg.exit_edges(i).collect::<Vec<_>>())
            .collect();
        kinds.sort_by_key(|k| format!("{k:?}"));
        assert!(kinds.contains(&EdgeKind::Error));
        assert!(kinds.contains(&EdgeKind::Return));
    }
}
