//! The production configuration must report a clean tree: every sanctioned
//! site is annotated, the committed baseline matches reality, and the
//! durability-critical files are panic-free. This is the test-suite twin
//! of the CI gate (`cargo run -p archis-lint --release`).

use archis_lint::{run, Config};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the repo root")
}

#[test]
fn real_tree_is_clean() {
    let cfg = Config::for_root(repo_root().to_path_buf());
    let outcome = run(&cfg, false).expect("lint runs on the real tree");
    assert!(
        outcome.is_clean(),
        "the tree must lint clean; findings:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn wal_and_archive_commit_paths_are_panic_free() {
    let cfg = Config::for_root(repo_root().to_path_buf());
    let outcome = run(&cfg, false).expect("lint runs on the real tree");
    let panics = outcome.counted.section("panic-path");
    for file in [
        "crates/relstore/src/wal.rs",
        "crates/core/src/archive.rs",
        "crates/relstore/src/buffer.rs",
        "crates/relstore/src/catalog.rs",
    ] {
        assert_eq!(
            panics.get(file),
            None,
            "{file} must stay free of unwrap/expect/panic in non-test code"
        );
    }
}

#[test]
fn binary_exits_zero_on_real_tree() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_archis-lint"))
        .arg("--root")
        .arg(repo_root())
        .output()
        .expect("binary runs");
    assert_eq!(
        status.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
}
