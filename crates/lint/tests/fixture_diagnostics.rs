//! The fixture corpus under `tests/fixtures/` seeds one violation per
//! `//~ rule` marker; these tests assert that the lint reports *exactly*
//! the marked (file, line, rule) set — no misses, no extras — plus the
//! ratchet's regression/stale reports and the binary's exit codes.

use archis_lint::{run, Config};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_config() -> Config {
    let mut cfg = Config::for_root(fixture_root());
    cfg.scan_dirs = vec![PathBuf::from("src")];
    cfg.error_drop_files = vec!["errdrop.rs".into()];
    cfg.planner_query_files = vec!["planner_bad.rs".into()];
    cfg.wal_bracket_files = vec!["walbracket_bad.rs".into()];
    cfg
}

/// `(file, line, rule)` triples declared by `//~` markers in the fixtures.
fn expected_sites() -> BTreeSet<(String, u32, String)> {
    let mut expected = BTreeSet::new();
    let src = fixture_root().join("src");
    let mut entries: Vec<_> = std::fs::read_dir(&src)
        .expect("fixture src dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let rel = format!("src/{}", path.file_name().unwrap().to_str().unwrap());
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        for (i, line) in text.lines().enumerate() {
            if let Some(pos) = line.find("//~") {
                const RULES: &[&str] = &[
                    "wal-discipline",
                    "session-layer",
                    "lock-order",
                    "lock-across-io",
                    "panic-path",
                    "slice-index",
                    "error-drop",
                    "planner-bypass",
                    "pin-leak",
                    "wal-bracket",
                    "corrupt-taint",
                ];
                for rule in line[pos + 3..]
                    .split_whitespace()
                    .filter(|r| RULES.contains(r))
                {
                    expected.insert((rel.clone(), i as u32 + 1, rule.to_string()));
                }
            }
        }
    }
    assert!(!expected.is_empty(), "fixtures declare at least one marker");
    expected
}

#[test]
fn fixtures_report_exactly_the_marked_sites() {
    let outcome = run(&fixture_config(), false).expect("lint runs");
    let got: BTreeSet<(String, u32, String)> = outcome
        .diagnostics
        .iter()
        .filter(|d| d.line > 0) // line 0 = ratchet summaries, checked below
        .map(|d| (d.file.display().to_string(), d.line, d.rule.to_string()))
        .collect();
    let expected = expected_sites();
    let missed: Vec<_> = expected.difference(&got).collect();
    let extra: Vec<_> = got.difference(&expected).collect();
    assert!(
        missed.is_empty() && extra.is_empty(),
        "diagnostic mismatch\n  missed: {missed:#?}\n  extra: {extra:#?}"
    );
}

#[test]
fn ratchet_reports_regressions_and_stale_entries() {
    let outcome = run(&fixture_config(), false).expect("lint runs");
    let ratchet: Vec<(String, &str, String)> = outcome
        .diagnostics
        .iter()
        .filter(|d| d.line == 0)
        .map(|d| (d.file.display().to_string(), d.rule, d.message.clone()))
        .collect();
    assert_eq!(
        ratchet.len(),
        3,
        "exactly three ratchet reports: {ratchet:#?}"
    );
    let has = |file: &str, rule: &str, frag: &str| {
        ratchet
            .iter()
            .any(|(f, r, m)| f == file && *r == rule && m.contains(frag))
    };
    assert!(has("src/panics.rs", "panic-path", "rose to 3 (baseline 2)"));
    assert!(has(
        "src/gone.rs",
        "panic-path",
        "improved to 0 (baseline 4)"
    ));
    assert!(has(
        "src/panics.rs",
        "slice-index",
        "improved to 3 (baseline 5)"
    ));
}

#[test]
fn fixture_counts_are_exact() {
    let outcome = run(&fixture_config(), false).expect("lint runs");
    let panics = outcome.counted.section("panic-path");
    let index = outcome.counted.section("slice-index");
    assert_eq!(panics.get("src/panics.rs"), Some(&3));
    assert_eq!(index.get("src/panics.rs"), Some(&3));
    // The other fixtures are free of countable sites by construction.
    assert_eq!(panics.len(), 1, "panic-path counts: {panics:#?}");
    assert_eq!(index.len(), 1, "slice-index counts: {index:#?}");
}

#[test]
fn binary_exits_nonzero_on_fixtures() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_archis-lint"))
        .arg("--root")
        .arg(fixture_root())
        .args(["--scan", "src", "--error-drop-file", "errdrop.rs"])
        .output()
        .expect("binary runs");
    assert_eq!(status.status.code(), Some(1), "violations exit 1");
    let stdout = String::from_utf8_lossy(&status.stdout);
    assert!(
        stdout.contains("src/wal_bad.rs:7: [wal-discipline]"),
        "machine-readable file:line diagnostics on stdout; got:\n{stdout}"
    );
}

#[test]
fn binary_emits_one_json_object_per_finding() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_archis-lint"))
        .arg("--root")
        .arg(fixture_root())
        .args(["--scan", "src", "--format", "json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "violations still exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for line in stdout.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "one JSON object per line; got: {line}"
        );
        for key in [
            "\"file\":",
            "\"line\":",
            "\"rule\":",
            "\"message\":",
            "\"allow_line\":",
        ] {
            assert!(line.contains(key), "missing {key} in: {line}");
        }
    }
    assert!(
        stdout.contains(r#""file":"src/wal_bad.rs","line":7,"rule":"wal-discipline""#),
        "active finding serialized; got:\n{stdout}"
    );
    // Sanctioned sites (e.g. session_bad.rs's allowed BTree::open) appear
    // with their marker line instead of null.
    let allowed = stdout
        .lines()
        .filter(|l| !l.contains("\"allow_line\":null"))
        .count();
    assert!(
        allowed >= 1,
        "lint:allow-silenced findings carry their marker line:\n{stdout}"
    );
}

#[test]
fn binary_exits_two_on_usage_error() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_archis-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("binary runs");
    assert_eq!(status.status.code(), Some(2));
}
