//! Seeded error-drop sites. The fixture config audits exactly this file,
//! mirroring how the real config audits the commit/recovery/vacuum paths.
//! Lexed, not compiled.

pub fn commit_path(r: Result<(), E>, s: Result<u32, E>) {
    let _ = r; //~ error-drop
    s.ok(); //~ error-drop
    let _kept = s.ok().map(|v| v + 1);
    let _named = r;
    // lint:allow(best-effort flush in a Drop impl; errors are unreportable)
    let _ = r;
}

#[cfg(test)]
mod tests {
    pub fn cleanup(r: Result<(), E>) {
        let _ = r;
        r.ok();
    }
}
