//! Seeded lock-order and lock-across-I/O violations, plus negative cases
//! proving guard scopes end where they should. Lexed by the lint, not
//! compiled.

pub struct Engine {
    m1: Mutex<u32>,
    m2: Mutex<u32>,
    m3: Mutex<u32>,
    m4: Mutex<u32>,
    file: Mutex<F>,
}

impl Engine {
    /// First half of a two-function cycle: m1 -> m2. The cycle diagnostic
    /// anchors at the second acquisition of the lexicographically first
    /// edge, which is this one.
    pub fn forward(&self) {
        let g1 = self.m1.lock();
        let g2 = self.m2.lock(); //~ lock-order
        *g2 += *g1;
    }

    /// Second half: m2 -> m1.
    pub fn backward(&self) {
        let g2 = self.m2.lock();
        let g1 = self.m1.lock();
        *g1 += *g2;
    }

    /// `drop(guard)` ends the scope: no m2 -> m1 edge arises here, so this
    /// function must NOT add an extra cycle report.
    pub fn dropped_before_second(&self) {
        let g2 = self.m2.lock();
        drop(g2);
        let g1 = self.m1.lock();
        *g1 += 1;
    }

    /// Inter-procedural half of a second cycle: m3 -> m4 via a callee.
    pub fn m3_then_helper(&self) {
        let g = self.m3.lock();
        self.acquire_m4(); //~ lock-order
        *g += 1;
    }

    fn acquire_m4(&self) {
        let g = self.m4.lock();
        *g += 1;
    }

    /// Direct half of the second cycle: m4 -> m3.
    pub fn m4_then_m3(&self) {
        let g = self.m4.lock();
        let h = self.m3.lock();
        *h += *g;
    }

    /// A field lock held across a direct I/O call.
    pub fn io_under_lock(&self) {
        let f = self.file.lock();
        f.write_all(b"x"); //~ lock-across-io
    }

    /// Temporary guard: dies at its `;`, so the I/O call below runs
    /// lock-free and must NOT be flagged.
    pub fn temp_guard_then_io(&self) {
        let v = *self.m1.lock();
        sync_all(v);
    }
}
