//! Seeded WAL-discipline violations. A `//~ rule` marker names the rule
//! expected to fire on that line; the fixture test treats the marker set
//! as the exact expected diagnostics. This file is lexed by the lint, not
//! compiled.

pub fn direct_page_write(pager: &P, buf: &[u8]) {
    pager.write_page(3, buf); //~ wal-discipline
}

pub fn truncates_file(f: &F) {
    f.set_len(0); //~ wal-discipline
}

pub fn raw_open(path: &str) {
    let _o = std::fs::OpenOptions::new(); //~ wal-discipline
    let _f = std::fs::File::create(path); //~ wal-discipline
    std::fs::write(path, b"bytes"); //~ wal-discipline
}

pub fn sanctioned(pager: &P, buf: &[u8]) {
    // lint:allow(fixture demo: this write is routed through the WAL-aware
    // pager, mirroring the buffer pool's sanctioned eviction path)
    pager.write_page(4, buf);
}

#[cfg(test)]
mod tests {
    pub fn test_only(pager: &super::P, buf: &[u8]) {
        pager.write_page(5, buf);
    }
}
