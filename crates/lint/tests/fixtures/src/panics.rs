//! Seeded panic-path and slice-index sites for the ratchet counters.
//! Expected non-test counts: panic-path = 3, slice-index = 3. The fixture
//! baseline records panic-path = 2 (to provoke a regression report) and
//! slice-index = 5 (to provoke a stale-baseline report). Lexed, not
//! compiled.

pub fn counts(v: Vec<u32>, o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("fixture");
    if v[0] > 3 {
        panic!("boom");
    }
    let c = v[1] + v[2];
    a + b + c
}

// lint:allow(escape hatch demo: this unwrap is excluded from the counts)
pub fn allowed(o: Option<u32>) -> u32 { o.unwrap() }

pub fn not_indexing() -> Vec<u32> {
    // Macro brackets, array literals, types and patterns are not index
    // expressions and must not count.
    let v: Vec<[u8; 2]> = vec![[1, 2], [3, 4]];
    let [_x, _y] = [1u8, 2u8];
    let _ = v.len();
    Vec::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v = vec![9, 9, 9];
        assert_eq!(v[0], super::counts(v.clone(), Some(1)));
        Some(3u32).unwrap();
        panic!("test-only");
    }
}
