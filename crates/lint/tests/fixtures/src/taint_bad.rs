//! Seeded corrupt-taint violations: Corrupt-capable Results defaulted
//! away via `.unwrap_or(..)`, `.ok()`, and swallowing match arms. Lexed
//! by the lint, not compiled; `//~` markers are the expected set.

pub fn latest_salary(t: &Table, key: i64) -> i64 {
    t.lookup(key).unwrap_or(0) //~ corrupt-taint
}

pub fn cached_page(p: &Pager, id: u64) -> Page {
    let page = p.read_page(id);
    p.touch(id);
    page.unwrap_or_default() //~ corrupt-taint
}

pub fn probe(idx: &Index, lo: i64, hi: i64) -> Option<Rows> {
    idx.index_range(lo, hi).ok() //~ corrupt-taint
}

pub fn swallowing_arm(t: &Table, key: i64) -> i64 {
    match t.lookup(key) {
        Ok(v) => v,
        Err(_) => 0, //~ corrupt-taint
    }
}

// --- clean cases -------------------------------------------------------

pub fn strict_lookup(t: &Table, key: i64) -> Result<i64, String> {
    // `?` propagates Corrupt to the caller — nothing is swallowed.
    let v = t.lookup(key)?;
    Ok(v)
}

pub fn resilient_range(idx: &Index, lo: i64, hi: i64) -> Rows {
    // Degrading through a sanctioned helper re-verifies against an
    // independent copy of the data (Config::corrupt_sanctioned).
    match idx.index_range(lo, hi) {
        Ok(rows) => rows,
        Err(_) => index_range_fallback(idx, lo, hi),
    }
}

pub fn read_checked(p: &Pager, id: u64) -> Result<Page, String> {
    // Naming corruption in the pattern/guard is deliberate handling.
    match p.read_page(id) {
        Ok(page) => Ok(page),
        Err(e) if e.is_corrupt() => {
            quarantine(p, id);
            Err(e)
        }
        Err(e) => Err(e),
    }
}
