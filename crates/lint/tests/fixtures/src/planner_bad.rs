//! Seeded planner-bypass violations: raw access-path executors called
//! from a query path, hand-wiring the plan past the cost-based planner.
//! Lexed by the lint, not compiled; `//~` markers are the expected set.

pub fn rogue_seq(table: &Table) {
    let _rows = table.stream(); //~ planner-bypass
}

pub fn rogue_index(table: &Table, key: i64) {
    let _rows = table.index_range("by_id", key, key); //~ planner-bypass
    let _hits = table.index_lookup("by_id", key); //~ planner-bypass
}

pub fn rogue_cluster(table: &Table, lo: u64, hi: u64) {
    let _rows = table.cluster_range(lo, hi); //~ planner-bypass
    let _s = table.cluster_range_stream(lo, hi); //~ planner-bypass
}

pub fn sanctioned(table: &Table, lo: u64, hi: u64) {
    // lint:allow(fixture demo: reached only from scan_table after
    // choose_path already picked the clustered range for this table)
    let _rows = table.cluster_range(lo, hi);
}

pub fn planner_routed(table: &Table) {
    // Calls that *go through* the planner are the sanctioned shape.
    let _plan = planner::choose_path(&profile, &candidates);
}

#[cfg(test)]
mod tests {
    pub fn test_only(table: &super::Table) {
        let _rows = table.stream();
    }
}
