//! Seeded pin-leak violations: manual snapshot pins escaping on error,
//! return, and loop-break fall-through paths, plus a pin held across a
//! maintenance pass. Lexed by the lint, not compiled; `//~` markers are
//! the expected set.

pub fn leak_on_error(db: &Db) -> Result<u64, String> {
    let pin = pin_snapshot(db)?;
    let rows = fetch_history(db)?; //~ pin-leak
    unpin_snapshot(db, pin);
    Ok(rows)
}

pub fn leak_on_return(db: &Db, empty: bool) -> Result<u64, String> {
    let pin = pin_snapshot(db)?;
    if empty {
        return Ok(0); //~ pin-leak
    }
    let n = count_at(db, pin);
    unpin_snapshot(db, pin);
    Ok(n)
}

pub fn leak_from_loop_break(db: &Db) -> Result<u64, String> {
    let mut total = 0;
    loop {
        let pin = pin_snapshot(db)?;
        let n = count_at(db, pin);
        if n == 0 {
            break;
        }
        total += n;
        unpin_snapshot(db, pin);
    }
    Ok(total) //~ pin-leak
}

pub fn pinned_across_checkpoint(db: &Db) -> Result<(), String> {
    let snap = begin_snapshot(db)?;
    checkpoint(db)?; //~ pin-leak
    drop(snap);
    Ok(())
}

// --- clean cases -------------------------------------------------------

pub fn balanced(db: &Db) -> Result<u64, String> {
    let pin = pin_snapshot(db)?;
    let n = count_at(db, pin);
    unpin_snapshot(db, pin);
    Ok(n)
}

pub fn returns_ownership(db: &Db) -> Result<PinToken, String> {
    // Returning the pin hands it to the caller — a transfer, not a leak.
    let pin = pin_snapshot(db)?;
    Ok(pin)
}

pub fn transfers_into_pager(db: &Db, pager: Pager) -> Result<SnapshotPager, String> {
    // `SnapshotPager::new` takes ownership (Config::pin_transfer).
    let pin = pin_snapshot(db)?;
    Ok(SnapshotPager::new(pager, pin))
}

pub fn releases_on_error_arm(db: &Db) -> Result<u64, String> {
    let pin = pin_snapshot(db)?;
    let rows = match fetch_history(db) {
        Ok(r) => r,
        Err(e) => {
            unpin_snapshot(db, pin);
            return Err(e);
        }
    };
    unpin_snapshot(db, pin);
    Ok(rows)
}
