//! Seeded wal-bracket violations: mutations escaping the txn bracket via
//! `?` and early returns before any commit/abort. Lexed by the lint, not
//! compiled; `//~` markers are the expected set. The fixture config lists
//! this file in `wal_bracket_files`.

pub fn ingest(db: &Db, archiver: &Archiver, change: &Change) -> Result<(), String> {
    archiver.apply(db, change)?; //~ wal-bracket
    txn_commit(db)
}

pub fn ingest_two(db: &Db, archiver: &Archiver, a: &Change, b: &Change) -> Result<(), String> {
    if archiver.apply(db, a).is_err() {
        return Err("first change failed".into()); //~ wal-bracket
    }
    archiver.apply(db, b)?; //~ wal-bracket
    txn_commit(db)
}

pub fn setup(db: &Db, spec: &Spec) -> Result<(), String> {
    let t = Archiver::create(db, spec)?; //~ wal-bracket
    register(t);
    txn_commit(db)
}

// --- clean cases -------------------------------------------------------

pub fn ingest_guarded(db: &Db, archiver: &Archiver, change: &Change) -> Result<(), String> {
    // The error path closes the bracket with an abort edge.
    if let Err(e) = archiver.apply(db, change) {
        txn_abort(db);
        return Err(e);
    }
    txn_commit(db)
}

pub struct Store;

impl Store {
    pub fn reapply(&self, db: &Db, change: &Change) -> Result<(), String> {
        // Same-layer delegation through `self` runs inside this bracket;
        // it is not a raw mutation escaping it.
        self.apply(change)?;
        txn_commit(db)
    }

    fn apply(&self, _change: &Change) -> Result<(), String> {
        Ok(())
    }
}

pub fn stage(archiver: &Archiver, db: &Db, change: &Change) -> Result<(), String> {
    // A pure mutation helper closes no bracket itself — it runs inside
    // its caller's, so the intra-procedural pass leaves it alone.
    archiver.apply(db, change)?;
    Ok(())
}
