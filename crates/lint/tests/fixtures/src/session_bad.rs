//! Seeded session-layer violations: `BTree::open` reached from outside
//! the session/snapshot layer. Like the other fixtures this file is
//! lexed by the lint, not compiled; the `//~` markers are the exact
//! expected diagnostic set.

pub fn rogue_tree(pool: &Pool, root: u64) {
    let _t = BTree::open(pool.clone(), root); //~ session-layer
}

pub fn rogue_tree_via_path(pool: &Pool, root: u64) {
    let _t = crate::btree::BTree::open(pool.clone(), root); //~ session-layer
}

pub fn sanctioned(pool: &Pool, root: u64) {
    // lint:allow(fixture demo: root pinned by a Snapshot held for the
    // lifetime of this tree, so the commit LSN cannot move under it)
    let _t = BTree::open(pool.clone(), root);
}

#[cfg(test)]
mod tests {
    pub fn test_only(pool: &super::Pool, root: u64) {
        let _t = super::BTree::open(pool.clone(), root);
    }
}
