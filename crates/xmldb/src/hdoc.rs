//! In-place H-document maintenance.
//!
//! Applies transaction-time changes directly to an H-document DOM — the
//! document-side equivalent of ArchIS's H-table maintenance, with the same
//! temporal-grouping semantics: an update closes the changed attribute's
//! open period at `at − 1` and appends a new period; value-equivalent
//! updates extend the open period instead of duplicating it.

use std::fmt;
use temporal::{Date, END_OF_TIME};
use xmldom::{Element, Node, TEND, TSTART};

/// Errors from document maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HDocError {
    /// No tuple element with the requested key.
    NoSuchTuple(String),
    /// A tuple with the key is already current.
    DuplicateKey(String),
}

impl fmt::Display for HDocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HDocError::NoSuchTuple(k) => write!(f, "no current tuple with key {k}"),
            HDocError::DuplicateKey(k) => write!(f, "key {k} is already current"),
        }
    }
}

impl std::error::Error for HDocError {}

/// A change to apply to an H-document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocChange {
    /// A new tuple element with open periods.
    Insert {
        /// Tuple element name (`employee`).
        tuple: String,
        /// Key child element name (`id`).
        key_child: String,
        /// Key value (text content).
        key: String,
        /// Attribute name/value pairs.
        attrs: Vec<(String, String)>,
        /// Transaction date.
        at: Date,
    },
    /// Close + reopen one attribute's period.
    Update {
        /// Tuple element name.
        tuple: String,
        /// Key child element name.
        key_child: String,
        /// Key value.
        key: String,
        /// Attribute to change.
        attr: String,
        /// New value.
        value: String,
        /// Transaction date.
        at: Date,
    },
    /// Close all open periods of a tuple.
    Delete {
        /// Tuple element name.
        tuple: String,
        /// Key child element name.
        key_child: String,
        /// Key value.
        key: String,
        /// Transaction date.
        at: Date,
    },
}

fn open_interval(at: Date) -> (String, String) {
    (at.to_string(), END_OF_TIME.to_string())
}

fn is_open(e: &Element) -> bool {
    e.attr(TEND) == Some(&END_OF_TIME.to_string())
}

fn find_tuple<'a>(
    root: &'a mut Element,
    tuple: &str,
    key_child: &str,
    key: &str,
) -> Option<&'a mut Element> {
    root.children
        .iter_mut()
        .filter_map(Node::as_element_mut)
        .find(|e| {
            e.name == tuple
                && is_open(e)
                && e.first_child(key_child).map(|k| k.text_content()) == Some(key.to_string())
        })
}

/// Apply one change to the H-document rooted at `root`.
pub fn apply(root: &mut Element, change: &DocChange) -> Result<(), HDocError> {
    match change {
        DocChange::Insert {
            tuple,
            key_child,
            key,
            attrs,
            at,
        } => {
            if find_tuple(root, tuple, key_child, key).is_some() {
                return Err(HDocError::DuplicateKey(key.clone()));
            }
            let (s, e) = open_interval(*at);
            let mut t = Element::new(tuple.clone())
                .with_attr(TSTART, s.clone())
                .with_attr(TEND, e.clone());
            t.push(
                Element::new(key_child.clone())
                    .with_attr(TSTART, s.clone())
                    .with_attr(TEND, e.clone())
                    .with_text(key.clone()),
            );
            for (a, v) in attrs {
                t.push(
                    Element::new(a.clone())
                        .with_attr(TSTART, s.clone())
                        .with_attr(TEND, e.clone())
                        .with_text(v.clone()),
                );
            }
            root.push(t);
            Ok(())
        }
        DocChange::Update {
            tuple,
            key_child,
            key,
            attr,
            value,
            at,
        } => {
            let t = find_tuple(root, tuple, key_child, key)
                .ok_or_else(|| HDocError::NoSuchTuple(key.clone()))?;
            // Find the open period of the attribute.
            let open_idx = t.children.iter().position(|c| {
                c.as_element()
                    .is_some_and(|e| e.name == *attr && is_open(e))
            });
            if let Some(i) = open_idx {
                let e = t.children[i].as_element_mut().expect("checked");
                if e.text_content() == *value {
                    return Ok(()); // value-equivalent: period continues
                }
                if e.attr(TSTART) == Some(&at.to_string()) {
                    // Same-day correction.
                    e.children = vec![Node::Text(value.clone())];
                    return Ok(());
                }
                e.set_attr(TEND, at.pred().to_string());
            }
            let (s, e) = open_interval(*at);
            // Insert after the last element of this attribute to keep the
            // grouped, chronological layout.
            let insert_at = t
                .children
                .iter()
                .rposition(|c| c.as_element().is_some_and(|e| e.name == *attr))
                .map(|i| i + 1)
                .unwrap_or(t.children.len());
            t.children.insert(
                insert_at,
                Node::Element(
                    Element::new(attr.clone())
                        .with_attr(TSTART, s)
                        .with_attr(TEND, e)
                        .with_text(value.clone()),
                ),
            );
            Ok(())
        }
        DocChange::Delete {
            tuple,
            key_child,
            key,
            at,
        } => {
            let t = find_tuple(root, tuple, key_child, key)
                .ok_or_else(|| HDocError::NoSuchTuple(key.clone()))?;
            let close = |e: &mut Element, at: Date| {
                if is_open(e) {
                    let end = if e.attr(TSTART) == Some(&at.to_string()) {
                        at
                    } else {
                        at.pred()
                    };
                    e.set_attr(TEND, end.to_string());
                }
            };
            for c in t.children.iter_mut().filter_map(Node::as_element_mut) {
                close(c, *at);
            }
            close(t, *at);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn insert_bob(root: &mut Element) {
        apply(
            root,
            &DocChange::Insert {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: "1001".into(),
                attrs: vec![
                    ("name".into(), "Bob".into()),
                    ("salary".into(), "60000".into()),
                ],
                at: d("1995-01-01"),
            },
        )
        .unwrap();
    }

    #[test]
    fn insert_then_update_groups_periods() {
        let mut root = Element::new("employees");
        insert_bob(&mut root);
        apply(
            &mut root,
            &DocChange::Update {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: "1001".into(),
                attr: "salary".into(),
                value: "70000".into(),
                at: d("1995-06-01"),
            },
        )
        .unwrap();
        let emp = root.first_child("employee").unwrap();
        let sals: Vec<&Element> = emp.children_named("salary").collect();
        assert_eq!(sals.len(), 2);
        assert_eq!(sals[0].attr("tend"), Some("1995-05-31"));
        assert_eq!(sals[1].attr("tstart"), Some("1995-06-01"));
        assert_eq!(emp.children_named("name").count(), 1, "name untouched");
    }

    #[test]
    fn value_equivalent_update_is_a_noop() {
        let mut root = Element::new("employees");
        insert_bob(&mut root);
        apply(
            &mut root,
            &DocChange::Update {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: "1001".into(),
                attr: "salary".into(),
                value: "60000".into(),
                at: d("1995-06-01"),
            },
        )
        .unwrap();
        let emp = root.first_child("employee").unwrap();
        assert_eq!(emp.children_named("salary").count(), 1);
    }

    #[test]
    fn delete_closes_everything() {
        let mut root = Element::new("employees");
        insert_bob(&mut root);
        apply(
            &mut root,
            &DocChange::Delete {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: "1001".into(),
                at: d("1996-01-01"),
            },
        )
        .unwrap();
        let emp = root.first_child("employee").unwrap();
        assert_eq!(emp.attr("tend"), Some("1995-12-31"));
        for c in emp.child_elements() {
            assert_ne!(c.attr("tend"), Some("9999-12-31"));
        }
        // The tuple is no longer current: a re-insert succeeds.
        insert_bob(&mut root);
        assert_eq!(root.children_named("employee").count(), 2);
    }

    #[test]
    fn errors_on_missing_or_duplicate_keys() {
        let mut root = Element::new("employees");
        insert_bob(&mut root);
        assert_eq!(
            apply(
                &mut root,
                &DocChange::Update {
                    tuple: "employee".into(),
                    key_child: "id".into(),
                    key: "9999".into(),
                    attr: "salary".into(),
                    value: "1".into(),
                    at: d("1995-06-01"),
                }
            ),
            Err(HDocError::NoSuchTuple("9999".into()))
        );
        assert_eq!(
            apply(
                &mut root,
                &DocChange::Insert {
                    tuple: "employee".into(),
                    key_child: "id".into(),
                    key: "1001".into(),
                    attrs: vec![],
                    at: d("1995-06-01"),
                }
            ),
            Err(HDocError::DuplicateKey("1001".into()))
        );
    }
}
