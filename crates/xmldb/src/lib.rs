//! A native XML database — the "Tamino" baseline of the paper's
//! evaluation.
//!
//! Documents (the H-documents of relation histories) are stored
//! **compressed** (Tamino "automatically compresses documents with an
//! algorithm similar to gzip", §7.2); queries run the [`xquery`] engine
//! directly on the document tree. Two execution temperatures mirror the
//! paper's methodology:
//!
//! * **cold** — the paper unmounts the data drive between queries, so
//!   every query pays decompression + parsing before evaluation; call
//!   [`XmlDb::flush_cache`] between runs to reproduce this;
//! * **warm** — repeated queries reuse the cached DOM.
//!
//! Updates ([`XmlDb::apply_change`]) modify the document in place and
//! re-compress it — the whole-document cost that makes native-XML updates
//! slow in §8.4 ("live data and historical data are mixed together").

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub mod hdoc;

use parking_lot::Mutex;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use temporal::Date;
use xmldom::Element;
use xquery::{DocResolver, Engine, Sequence, XNode, XQueryError};

pub use hdoc::{DocChange, HDocError};

/// Errors from the native XML database.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlDbError {
    /// Unknown document URI.
    UnknownDoc(String),
    /// Query failure.
    Query(String),
    /// Stored document failed to decompress / parse.
    Corrupt(String),
    /// Document update failure.
    Update(String),
}

impl std::fmt::Display for XmlDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlDbError::UnknownDoc(u) => write!(f, "unknown document {u}"),
            XmlDbError::Query(m) => write!(f, "query error: {m}"),
            XmlDbError::Corrupt(m) => write!(f, "corrupt document: {m}"),
            XmlDbError::Update(m) => write!(f, "update error: {m}"),
        }
    }
}

impl std::error::Error for XmlDbError {}

impl From<XQueryError> for XmlDbError {
    fn from(e: XQueryError) -> Self {
        XmlDbError::Query(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, XmlDbError>;

struct StoredDoc {
    /// BlockZIP-compressed serialized document.
    compressed: Vec<u8>,
    /// Uncompressed serialized size (for compression-ratio experiments).
    raw_size: usize,
}

#[derive(Default)]
struct Store {
    docs: Mutex<HashMap<String, StoredDoc>>,
    cache: Mutex<HashMap<String, XNode>>,
    parses: AtomicU64,
    bytes_decompressed: AtomicU64,
}

impl Store {
    fn load(&self, uri: &str) -> Result<XNode> {
        if let Some(n) = self.cache.lock().get(uri) {
            return Ok(n.clone());
        }
        let docs = self.docs.lock();
        let stored = docs
            .get(uri)
            .ok_or_else(|| XmlDbError::UnknownDoc(uri.to_string()))?;
        let raw = blockzip::decompress(&stored.compressed)
            .map_err(|e| XmlDbError::Corrupt(e.to_string()))?;
        self.bytes_decompressed
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        let text = String::from_utf8(raw)
            .map_err(|_| XmlDbError::Corrupt("stored document is not UTF-8".into()))?;
        let element = xmldom::parse(&text).map_err(|e| XmlDbError::Corrupt(e.to_string()))?;
        self.parses.fetch_add(1, Ordering::Relaxed);
        let node = xquery::eval::wrap_document(XNode::from_dom(&element));
        self.cache.lock().insert(uri.to_string(), node.clone());
        Ok(node)
    }
}

// `Rc`, not `Arc`: the DOM cache holds `XNode`s, which are `Rc`/`RefCell`
// trees, so a `Store` can never cross threads anyway — sharing it with the
// resolver through an `Arc` would only imply a thread-safety it cannot have.
struct StoreResolver(Rc<Store>);

impl DocResolver for StoreResolver {
    fn resolve(&self, uri: &str) -> Option<XNode> {
        self.0.load(uri).ok()
    }
}

/// The native XML database: compressed document store + XQuery engine.
pub struct XmlDb {
    store: Rc<Store>,
    engine: Engine,
}

impl XmlDb {
    /// An empty database with `current-date()` pinned to `now`.
    pub fn new(now: Date) -> Self {
        let store = Rc::new(Store::default());
        let mut engine = Engine::new(StoreResolver(store.clone()));
        engine.set_now(now);
        XmlDb { store, engine }
    }

    /// Store (or replace) a document under `uri`.
    pub fn store(&self, uri: &str, doc: &Element) {
        let raw = doc.to_xml();
        let compressed = blockzip::compress(raw.as_bytes());
        self.store.docs.lock().insert(
            uri.to_string(),
            StoredDoc {
                compressed,
                raw_size: raw.len(),
            },
        );
        self.store.cache.lock().remove(uri);
    }

    /// Evaluate an XQuery, returning the result sequence.
    pub fn query(&self, query: &str) -> Result<Sequence> {
        Ok(self.engine.eval(query)?)
    }

    /// Evaluate an XQuery and serialize the result.
    pub fn query_xml(&self, query: &str) -> Result<String> {
        Ok(self.engine.eval_to_xml(query)?)
    }

    /// Drop all cached DOMs (the paper's cold-cache protocol).
    pub fn flush_cache(&self) {
        self.store.cache.lock().clear();
    }

    /// Compressed bytes on "disk".
    pub fn stored_bytes(&self) -> usize {
        self.store
            .docs
            .lock()
            .values()
            .map(|d| d.compressed.len())
            .sum()
    }

    /// Uncompressed (serialized) bytes of all documents.
    pub fn raw_bytes(&self) -> usize {
        self.store.docs.lock().values().map(|d| d.raw_size).sum()
    }

    /// Documents parsed since construction (cold-query counter).
    pub fn parse_count(&self) -> u64 {
        self.store.parses.load(Ordering::Relaxed)
    }

    /// Apply a history change to a stored H-document **in place**:
    /// decompress, parse, mutate the DOM, re-serialize, re-compress.
    /// This whole-document rewrite is what the paper's §8.4 update
    /// benchmark measures on the native XML side.
    pub fn apply_change(&self, uri: &str, change: &DocChange) -> Result<()> {
        let node = self.store.load(uri)?;
        // Take the root element out of the #document wrapper.
        let root_elem = node
            .as_elem()
            .and_then(|d| d.children.borrow().first().cloned())
            .ok_or_else(|| XmlDbError::Corrupt("empty document".into()))?;
        let xmldom::Node::Element(mut root) = root_elem.to_dom() else {
            return Err(XmlDbError::Corrupt("root is not an element".into()));
        };
        hdoc::apply(&mut root, change).map_err(|e| XmlDbError::Update(e.to_string()))?;
        self.store(uri, &root);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal::Interval;
    use xmldom::Element;

    fn sample_doc() -> Element {
        xmldom::parse(
            r#"<employees tstart="1988-01-01" tend="9999-12-31">
              <employee tstart="1995-01-01" tend="9999-12-31">
                <id tstart="1995-01-01" tend="9999-12-31">1001</id>
                <name tstart="1995-01-01" tend="9999-12-31">Bob</name>
                <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
                <salary tstart="1995-06-01" tend="9999-12-31">70000</salary>
              </employee>
            </employees>"#,
        )
        .unwrap()
    }

    fn db() -> XmlDb {
        let db = XmlDb::new(Date::parse("2005-01-01").unwrap());
        db.store("employees.xml", &sample_doc());
        db
    }

    #[test]
    fn stores_compressed_and_queries() {
        let db = db();
        assert!(db.stored_bytes() > 0);
        assert!(
            db.stored_bytes() < db.raw_bytes(),
            "compression must shrink the doc"
        );
        let out = db
            .query_xml(r#"for $s in doc("employees.xml")/employees/employee[id = 1001]/salary return string($s)"#)
            .unwrap();
        assert_eq!(out, "60000\n70000");
    }

    #[test]
    fn cold_queries_reparse_warm_queries_do_not() {
        let db = db();
        db.query_xml(r#"count(doc("employees.xml")//salary)"#)
            .unwrap();
        assert_eq!(db.parse_count(), 1);
        db.query_xml(r#"count(doc("employees.xml")//salary)"#)
            .unwrap();
        assert_eq!(db.parse_count(), 1, "warm query hits the DOM cache");
        db.flush_cache();
        db.query_xml(r#"count(doc("employees.xml")//salary)"#)
            .unwrap();
        assert_eq!(db.parse_count(), 2, "cold query decompresses + reparses");
    }

    #[test]
    fn unknown_doc_is_an_error() {
        let db = db();
        assert!(db.query(r#"doc("missing.xml")"#).is_err());
    }

    #[test]
    fn temporal_query_on_stored_history() {
        let db = db();
        let out = db
            .query_xml(
                r#"for $s in doc("employees.xml")/employees/employee/salary
                       [tstart(.) <= xs:date("1995-03-01") and tend(.) >= xs:date("1995-03-01")]
                   return string($s)"#,
            )
            .unwrap();
        assert_eq!(out, "60000");
    }

    #[test]
    fn in_place_update_rewrites_document() {
        let db = db();
        let before = db.stored_bytes();
        db.apply_change(
            "employees.xml",
            &DocChange::Update {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: "1001".into(),
                attr: "salary".into(),
                value: "77000".into(),
                at: Date::parse("1996-01-01").unwrap(),
            },
        )
        .unwrap();
        let out = db
            .query_xml(r#"for $s in doc("employees.xml")//salary return string($s)"#)
            .unwrap();
        assert_eq!(out, "60000\n70000\n77000");
        // The closed period ends the day before.
        let closed = db
            .query_xml(r#"string(doc("employees.xml")//salary[2]/@tend)"#)
            .unwrap();
        assert_eq!(closed, "1995-12-31");
        assert_ne!(db.stored_bytes(), before, "document was recompressed");
    }

    #[test]
    fn insert_and_delete_changes() {
        let db = db();
        db.apply_change(
            "employees.xml",
            &DocChange::Insert {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: "1002".into(),
                attrs: vec![
                    ("name".into(), "Alice".into()),
                    ("salary".into(), "80000".into()),
                ],
                at: Date::parse("1996-03-01").unwrap(),
            },
        )
        .unwrap();
        assert_eq!(
            db.query_xml(r#"count(doc("employees.xml")/employees/employee)"#)
                .unwrap(),
            "2"
        );
        db.apply_change(
            "employees.xml",
            &DocChange::Delete {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: "1002".into(),
                at: Date::parse("1997-01-01").unwrap(),
            },
        )
        .unwrap();
        let iv = db
            .query_xml(r#"string(doc("employees.xml")/employees/employee[id = 1002]/@tend)"#)
            .unwrap();
        assert_eq!(iv, "1996-12-31");
        let _ = Interval::parse("1996-03-01", "1996-12-31").unwrap();
    }
}
