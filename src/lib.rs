//! # ArchIS-rs
//!
//! A from-scratch Rust reproduction of *"Using XML to Build Efficient
//! Transaction-Time Temporal Database Systems on Relational Databases"*
//! (Wang, Zhou, Zaniolo — ICDE 2006): a transaction-time temporal
//! database that views relational history as temporally grouped XML
//! (H-documents), queries it with XQuery, and executes those queries as
//! SQL/XML on segment-clustered, optionally BlockZIP-compressed H-tables.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | crate | role |
//! |---|---|
//! | [`archis`] | the paper's contribution: H-tables, update tracking, segment clustering, XQuery→SQL/XML translation, compression |
//! | [`relstore`] | the embedded relational engine (pages, buffer pool, B+trees, executor) |
//! | [`xquery`] | XQuery-subset parser + native evaluator with the temporal function library |
//! | [`sqlxml`] | SQL + SQL/XML (XMLElement/XMLAgg) engine |
//! | [`xmldb`] | native XML database baseline ("Tamino") |
//! | [`blockzip`] | block-based LZ77+Huffman compression (Algorithm 2) |
//! | [`temporal`] | dates, intervals, coalescing, temporal aggregates |
//! | [`xmldom`] | XML tree, parser, serializer |
//! | [`dataset`] | employee-history workload generator |
//!
//! # Quickstart
//!
//! ```
//! use archis::{ArchConfig, ArchIS, RelationSpec};
//! use relstore::Value;
//! use temporal::Date;
//!
//! let mut db = ArchIS::new(ArchConfig::default());
//! db.create_relation(RelationSpec::employee()).unwrap();
//! db.insert("employee", 1001, vec![
//!     ("name".into(), Value::Str("Bob".into())),
//!     ("salary".into(), Value::Int(60000)),
//! ], Date::parse("1995-01-01").unwrap()).unwrap();
//! db.update("employee", 1001,
//!     vec![("salary".into(), Value::Int(70000))],
//!     Date::parse("1995-06-01").unwrap()).unwrap();
//!
//! // Query the history through its XML view, executed as SQL/XML:
//! let out = db.query(r#"
//!     for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
//!     return $s"#).unwrap();
//! let xml = out.xml_fragments().join("");
//! assert!(xml.contains("60000") && xml.contains("70000"));
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub use archis;
pub use blockzip;
pub use dataset;
pub use relstore;
pub use sqlxml;
pub use temporal;
pub use xmldb;
pub use xmldom;
pub use xquery;
