#!/usr/bin/env bash
# Full CI pipeline: tier-1 build + tests, then the extended fault-injection
# torture suites, then (optionally) the benchmark smoke jobs.
#
#   scripts/ci.sh            # build + tests + failpoints torture
#   CI_BENCH=1 scripts/ci.sh # additionally run the commit + scan microbenches
#
# Fully offline: all external deps are path shims under shims/ — this
# script never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${ARCHIS_SKIP_LINT:-0}" == "0" ]]; then
    echo "== static gates: rustfmt =="
    cargo fmt --check

    echo "== static gates: clippy (zero-warning wall) =="
    cargo clippy --workspace --all-targets -- -D warnings

    echo "== static gates: archis-lint =="
    # Repo-specific analyses — token scans (WAL write discipline,
    # session-layer, lock-order cycles, locks held across I/O, the
    # panic-path/slice-index ratchet against lint-baseline.toml, the
    # error-drop and planner-bypass audits) plus the flow-sensitive
    # CFG/dataflow passes (pin-leak, wal-bracket, corrupt-taint).
    # Non-zero exit fails CI. ARCHIS_SKIP_LINT=1 skips all three static
    # gates (useful while iterating locally). The machine-readable report
    # (one JSON object per finding, lint:allow'd sites included with
    # their marker line) is archived as a CI artifact.
    cargo build -q -p archis-lint --release
    lint_t0=$(date +%s.%N)
    ./target/release/archis-lint --format json | tee target/lint-report.json
    lint_t1=$(date +%s.%N)
    # The lint runs on every push: hold the full scan under 5 seconds so
    # it stays cheap enough to never be skipped.
    awk -v a="$lint_t0" -v b="$lint_t1" 'BEGIN {
        dt = b - a
        if (dt > 5.0) { printf "archis-lint took %.2fs > 5s budget\n", dt; exit 1 }
        printf "archis-lint wall time %.2fs (budget 5s)\n", dt
    }'
    echo "lint report archived at target/lint-report.json"
else
    echo "== static gates: skipped (ARCHIS_SKIP_LINT=1) =="
fi

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root test suite =="
cargo test -q

echo "== workspace test suite =="
cargo test -q --workspace

echo "== failpoints torture: relstore crash sweeps =="
# Exhaustive crash-at-every-write / crash-at-every-fsync sweeps plus the
# 200-seed random sweep with torn writes.
cargo test -q -p relstore --features failpoints

echo "== failpoints torture: 200-seed ArchIS archival crash runs =="
# Seeded kills mid-archival; each recovery is checked against the §6.1
# segment invariants and tstart/tend timeline coalescing.
cargo test -q --features failpoints --test durability --test wal_props

echo "== failpoints torture: apply_all fsync-boundary sweep =="
# Crash at every fsync boundary of the batched ingest workload; recovery
# must always land on a whole-batch state.
cargo test -q --features failpoints --test batch_apply

echo "== failpoints torture: MVCC snapshot-reader sweep =="
# Writer-vs-snapshot-readers torture: the 1000-batch run, the 200-seed
# sweep, crash-at-every-fsync with readers in flight, and the PR-5
# degradation regressions. Every reader dump must be byte-identical to a
# serial execution at its pinned commit LSN.
cargo test -q --features failpoints --test mvcc_torture

echo "== failpoints torture: WAL-shipping replica kill sweep =="
# Kill the replica at every write and every fsync mid-replay (exhaustive
# position sweeps), then a 200-seed randomized sweep mixing seeded kills
# with channel faults (drop/duplicate/reorder/truncate/bit-flip). After
# recovery + catch-up every replica must be page-for-page byte-identical
# to the primary; injected content divergence must surface as a durable
# quarantine that `archis-fsck check --against` flags.
cargo test -q --features failpoints --test replica_torture

echo "== failpoints torture: 240-seed fsck bit-rot sweep =="
# Seeded at-rest single-bit flips on a checkpointed archive: scrub must
# detect every flip at the right page (zero silent wrong answers), and
# periodic repairs of index/counter damage must round-trip to dumps
# identical to the uncorrupted archive.
cargo test -q -p archis-fsck --features failpoints

if [[ "${CI_BENCH:-0}" != "0" ]]; then
    echo "== bench: commit + scan + ingest microbenches =="
    ./target/release/reproduce -e commit --runs 3
    ./target/release/reproduce -e scan --runs 3
    ./target/release/reproduce -e ingest --runs 3
    # Batched ingest must beat row-at-a-time transactions by ≥5x (the
    # PR's acceptance bar); the JSON is written by the ingest experiment.
    speedup=$(awk -F': ' '/speedup_1024_over_1/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_ingest.json)
    awk -v s="$speedup" 'BEGIN { if (s + 0 < 5.0) { print "ingest speedup " s "x < 5x"; exit 1 } else { print "ingest speedup " s "x >= 5x" } }'
    # The overlapped WAL commit pipeline must beat synchronous group
    # commit by ≥1.3x at batch 64 on the modeled log device.
    pipe=$(awk -F': ' '/pipeline_speedup_64/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_commit.json)
    awk -v s="$pipe" 'BEGIN { if (s + 0 < 1.3) { print "pipeline speedup " s "x < 1.3x"; exit 1 } else { print "pipeline speedup " s "x >= 1.3x" } }'
    # Segment prefetch must beat the serial cold clustered-range scan by
    # ≥1.5x on the modeled cold device.
    pf=$(awk -F': ' '/prefetch_speedup/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_scan.json)
    awk -v s="$pf" 'BEGIN { if (s + 0 < 1.5) { print "prefetch speedup " s "x < 1.5x"; exit 1 } else { print "prefetch speedup " s "x >= 1.5x" } }'

    echo "== bench: cost-based planner microbench =="
    ./target/release/reproduce -e plan --runs 3
    # The cost-based planner must match the hand-wired access-path rule
    # on Q1-Q6 (>= 0.95x on buffer-pool logical reads) and beat it by
    # >= 2x on every adversarial query; the JSON is written by the plan
    # experiment.
    std=$(awk -F': ' '/min_ratio_standard/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_plan.json)
    awk -v s="$std" 'BEGIN { if (s + 0 < 0.95) { print "planner standard ratio " s "x < 0.95x"; exit 1 } else { print "planner standard ratio " s "x >= 0.95x" } }'
    adv=$(awk -F': ' '/min_ratio_adversarial/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_plan.json)
    awk -v s="$adv" 'BEGIN { if (s + 0 < 2.0) { print "planner adversarial ratio " s "x < 2x"; exit 1 } else { print "planner adversarial ratio " s "x >= 2x" } }'

    echo "== bench: concurrent MVCC microbench =="
    ./target/release/reproduce -e concurrent --runs 5
    # Snapshot readers must not block the writer: ≤10% ingest overhead
    # with 2 paced readers (measured against the idle-thread control, so
    # single-core scheduler tax doesn't drown the MVCC signal), and more
    # readers must increase snapshot-query throughput.
    ov=$(awk -F': ' '/writer_overhead_pct_2r/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_concurrent.json)
    awk -v s="$ov" 'BEGIN { if (s + 0 > 10.0) { print "2-reader writer overhead " s "% > 10%"; exit 1 } else { print "2-reader writer overhead " s "% <= 10%" } }'
    sc=$(awk -F': ' '/reader_scaling_4r_over_2r/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_concurrent.json)
    awk -v s="$sc" 'BEGIN { if (s + 0 < 1.2) { print "reader scaling " s "x < 1.2x"; exit 1 } else { print "reader scaling " s "x >= 1.2x" } }'

    echo "== bench: replication microbench =="
    ./target/release/reproduce -e replica --runs 3
    # A cold replica must replay the shipped history at >= 2000 pages/s,
    # one poll per ingest batch must fully drain the stream (post-poll
    # lag <= 1 commit), and concurrent snapshot readers must not collapse
    # throughput (reads serialize on the replica's pager lock, so we gate
    # on no-pathological-contention rather than linear speedup).
    cu=$(awk -F': ' '/catch_up_pages_per_sec/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_replica.json)
    awk -v s="$cu" 'BEGIN { if (s + 0 < 2000.0) { print "replica catch-up " s " pages/s < 2000"; exit 1 } else { print "replica catch-up " s " pages/s >= 2000" } }'
    lag=$(awk -F': ' '/post_poll_max_commits/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_replica.json)
    awk -v s="$lag" 'BEGIN { if (s + 0 > 1.0) { print "replica post-poll lag " s " commits > 1"; exit 1 } else { print "replica post-poll lag " s " commits <= 1" } }'
    rsc=$(awk -F': ' '/scan_scaling_4r_over_1r/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_replica.json)
    awk -v s="$rsc" 'BEGIN { if (s + 0 < 0.8) { print "replica snapshot-read scaling " s "x < 0.8x"; exit 1 } else { print "replica snapshot-read scaling " s "x >= 0.8x" } }'
fi

echo "CI OK"
