//! Quickstart: the paper's running example end to end.
//!
//! Recreates Bob's employment history (paper Table 1), shows the
//! temporally grouped H-document view (Figure 3), and runs QUERY 1 both
//! natively (XQuery over the XML view) and through the ArchIS path
//! (XQuery → SQL/XML → relational engine).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use archis::{ArchConfig, ArchIS, RelationSpec};
use relstore::Value;
use temporal::Date;

fn d(s: &str) -> Date {
    Date::parse(s).expect("valid date")
}

fn main() {
    // 1. A transaction-time database with the paper's employee relation.
    let mut db = ArchIS::new(ArchConfig::default());
    db.create_relation(RelationSpec::employee()).unwrap();

    // 2. Bob's history (paper Table 1): hired 1995-01-01; a raise in June;
    //    a promotion + department move in October; another promotion in
    //    February 1996.
    db.insert(
        "employee",
        1001,
        vec![
            ("name".into(), Value::Str("Bob".into())),
            ("salary".into(), Value::Int(60000)),
            ("title".into(), Value::Str("Engineer".into())),
            ("deptno".into(), Value::Str("d01".into())),
        ],
        d("1995-01-01"),
    )
    .unwrap();
    db.update(
        "employee",
        1001,
        vec![("salary".into(), Value::Int(70000))],
        d("1995-06-01"),
    )
    .unwrap();
    db.update(
        "employee",
        1001,
        vec![
            ("title".into(), Value::Str("Sr Engineer".into())),
            ("deptno".into(), Value::Str("d02".into())),
        ],
        d("1995-10-01"),
    )
    .unwrap();
    db.update(
        "employee",
        1001,
        vec![("title".into(), Value::Str("TechLeader".into()))],
        d("1996-02-01"),
    )
    .unwrap();

    // 3. The temporally grouped H-document (paper Figure 3): each
    //    attribute's history is grouped — and already coalesced — under
    //    the employee element.
    let hdoc = db.publish("employee").unwrap();
    println!("--- employees.xml (H-document view) ---");
    println!("{}", hdoc.to_pretty_xml());

    // 4. QUERY 1 (temporal projection): Bob's title history.
    let query1 = r#"element title_history {
        for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
        return $t }"#;

    // 4a. The ArchIS path: Algorithm 1 translates the XQuery to SQL/XML...
    let sql = db.translate(query1).unwrap();
    println!("--- translated SQL/XML ---\n{sql}\n");

    // ... which executes on the H-tables inside the relational engine.
    let result = db.query(query1).unwrap();
    println!("--- result (via SQL/XML on H-tables) ---");
    for fragment in result.xml_fragments() {
        println!("{fragment}");
    }

    // 4b. The native path (what a native XML DB would do).
    let mut resolver = xquery::MapResolver::new();
    resolver.insert("employees.xml", hdoc);
    let engine = xquery::Engine::new(resolver);
    println!("\n--- result (native XQuery over the H-document) ---");
    println!("{}", engine.eval_to_xml(query1).unwrap());

    // 5. A snapshot: what was Bob's salary on 1995-07-15?
    let snapshot = r#"for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
        [tstart(.) <= xs:date("1995-07-15") and tend(.) >= xs:date("1995-07-15")]
        return string($s)"#;
    let rows = db.query(snapshot).unwrap();
    println!("\nBob's salary on 1995-07-15: {}", rows.rows[0][0].render());
}
