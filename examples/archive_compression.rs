//! Segment clustering and BlockZIP compression — the paper's §6 and §8
//! machinery, observable step by step.
//!
//! Loads a generated history, watches the usefulness-based archiver cut
//! the live segment into time-delimited archived segments, compresses the
//! archive into independent 4000-byte blocks, and shows that snapshot
//! queries decompress only a handful of blocks while full-history scans
//! touch them all.
//!
//! ```sh
//! cargo run --example archive_compression
//! ```

use archis::htable::LIVE_SEGNO;
use archis::{queries, ArchConfig, ArchIS, RelationSpec};
use dataset::DatasetConfig;
use relstore::Value;
use temporal::Date;

fn main() {
    let ops = dataset::generate(&DatasetConfig {
        employees: 80,
        ..Default::default()
    });

    // Umin = 0.4, the configuration of the paper's benchmarks.
    let mut db = ArchIS::new(ArchConfig::default().with_umin(0.4));
    db.create_relation(RelationSpec::employee()).unwrap();
    for op in &ops {
        db.apply(&bench_change(op)).unwrap();
        db.maybe_archive("employee", op.at()).unwrap();
    }
    let last_day = ops.last().unwrap().at();
    db.force_archive("employee", last_day).unwrap();

    // 1. The segment catalog of the salary history.
    println!("--- salary history segments (Umin = 0.4) ---");
    println!("{:>6}  {:>10}  {:>10}", "segno", "segstart", "segend");
    for seg in db.segments_of("employee", "salary").unwrap() {
        let label = if seg.segno == LIVE_SEGNO {
            "live".to_string()
        } else {
            seg.segno.to_string()
        };
        println!(
            "{label:>6}  {:>10}  {:>10}",
            seg.start.to_string(),
            seg.end.to_string()
        );
    }

    // 2. Storage before compression.
    let before = db.storage_bytes().unwrap();
    println!("\nstorage before compression: {} KiB", before / 1024);

    // 3. BlockZIP the archived segments (live stays updatable).
    let blocks = db.compress_archived("employee").unwrap();
    db.vacuum_relation("employee").unwrap();
    let after = db.storage_bytes().unwrap();
    println!(
        "storage after BlockZIP:     {} KiB ({blocks} blocks)",
        after / 1024
    );
    println!(
        "compression factor:          {:.2}x",
        before as f64 / after as f64
    );

    // 4. Query the compressed archive: a snapshot touches few blocks, a
    //    full history scan touches them all.
    let store = db.compressed_store("employee").unwrap();
    let snap = Date::parse("1993-05-16").unwrap();
    // Probe an employee who was on the payroll on the snapshot date.
    let probe = db
        .database()
        .table("employee_id")
        .unwrap()
        .scan()
        .unwrap()
        .iter()
        .find(|r| r[1].as_date().unwrap() <= snap && r[2].as_date().unwrap() >= snap)
        .and_then(|r| r[0].as_int())
        .expect("someone was employed on the snapshot date");

    store.reset_stats();
    let salary = queries::q1_compressed(&db, store, probe, snap).unwrap();
    println!(
        "\nQ1 (salary of {probe} on {snap}) = {salary:?} — decompressed {} block(s)",
        store.blocks_read()
    );

    store.reset_stats();
    let avg = queries::q2_compressed(&db, store, snap).unwrap();
    println!(
        "Q2 (average salary on {snap}) = {avg:.0} — decompressed {} block(s)",
        store.blocks_read()
    );

    store.reset_stats();
    let changes = queries::q4_compressed(&db, store).unwrap();
    println!(
        "Q4 (total salary changes) = {changes} — decompressed {} block(s) (full scan)",
        store.blocks_read()
    );

    // 5. Updates keep working against the live segment after compression.
    let current = db.database().table("employee").unwrap().scan().unwrap();
    let someone = current[0][0].as_int().unwrap();
    db.update(
        "employee",
        someone,
        vec![("salary".into(), Value::Int(123_456))],
        last_day.succ(),
    )
    .unwrap();
    println!("\npost-compression update applied to employee {someone} (live segment).");
}

fn bench_change(op: &dataset::Op) -> archis::Change {
    use dataset::Op;
    match op {
        Op::Hire {
            id,
            name,
            salary,
            title,
            deptno,
            at,
        } => archis::Change::Insert {
            relation: "employee".into(),
            key: *id,
            values: vec![
                ("name".into(), Value::Str(name.clone())),
                ("salary".into(), Value::Int(*salary)),
                ("title".into(), Value::Str(title.clone())),
                ("deptno".into(), Value::Str(deptno.clone())),
            ],
            at: *at,
        },
        Op::Raise { id, salary, at } => archis::Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("salary".into(), Value::Int(*salary))],
            at: *at,
        },
        Op::TitleChange { id, title, at } => archis::Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("title".into(), Value::Str(title.clone()))],
            at: *at,
        },
        Op::DeptChange { id, deptno, at } => archis::Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("deptno".into(), Value::Str(deptno.clone()))],
            at: *at,
        },
        Op::Leave { id, at } => archis::Change::Delete {
            relation: "employee".into(),
            key: *id,
            at: *at,
        },
    }
}
