//! Durable time machine: the archive survives process restarts.
//!
//! Simulates three "sessions" against one page file — load history and
//! checkpoint; reopen, query the past, append more history; reopen again
//! and verify the full timeline — demonstrating the durable catalog
//! (`Database::checkpoint` / `ArchIS::open_file`).
//!
//! ```sh
//! cargo run --example time_machine
//! ```

use archis::{ArchConfig, ArchIS, RelationSpec};
use relstore::Value;
use temporal::Date;

fn d(s: &str) -> Date {
    Date::parse(s).expect("valid date")
}

fn main() {
    let path = std::env::temp_dir().join("archis-time-machine.db");
    std::fs::remove_file(&path).ok();

    // --- session 1: load the early history, checkpoint, "crash" --------
    {
        let mut db = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        db.create_relation(RelationSpec::employee()).unwrap();
        db.insert(
            "employee",
            1001,
            vec![
                ("name".into(), Value::Str("Bob".into())),
                ("salary".into(), Value::Int(60000)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str("d01".into())),
            ],
            d("1995-01-01"),
        )
        .unwrap();
        db.update(
            "employee",
            1001,
            vec![("salary".into(), Value::Int(70000))],
            d("1995-06-01"),
        )
        .unwrap();
        db.force_archive("employee", d("1995-12-31")).unwrap();
        db.checkpoint().unwrap();
        println!("session 1: loaded 1995, archived segment 1, checkpointed.");
    }

    // --- session 2: reopen, ask about the past, append the future ------
    {
        let db = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        let then = db
            .query(
                r#"for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
                       [tstart(.) <= xs:date("1995-03-01") and tend(.) >= xs:date("1995-03-01")]
                   return string($s)"#,
            )
            .unwrap();
        println!(
            "session 2: Bob's salary on 1995-03-01 (answered from the reopened archive): {}",
            then.rows[0][0].render()
        );
        db.update(
            "employee",
            1001,
            vec![("salary".into(), Value::Int(80000))],
            d("1996-06-01"),
        )
        .unwrap();
        db.checkpoint().unwrap();
        println!("session 2: appended the 1996 raise, checkpointed.");
    }

    // --- session 3: the full timeline is intact ------------------------
    {
        let db = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        let history = db
            .query(
                r#"for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
                   return externalnow($s)"#,
            )
            .unwrap();
        println!("session 3: Bob's complete salary history across all sessions:");
        for f in history.xml_fragments() {
            println!("  {f}");
        }
        let segs = db.segments_of("employee", "salary").unwrap();
        println!("  ({} segment(s) + live in the catalog)", segs.len() - 1);
    }
    std::fs::remove_file(&path).ok();
}
