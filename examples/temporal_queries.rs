//! The paper's §4 query catalogue, evaluated natively.
//!
//! Runs QUERY 1–8 — temporal projection, snapshot, slicing, join,
//! aggregate, restructuring, since, and period containment — with the
//! XQuery engine over the employee and department H-documents of the
//! paper's Tables 1–2 / Figures 3–4. No new language constructs: all the
//! temporal machinery is the function library (`tstart`, `tend`,
//! `toverlaps`, `tcontains`, `tequals`, `telement`, `overlapinterval`,
//! `restructure`, `tavg`, ...).
//!
//! ```sh
//! cargo run --example temporal_queries
//! ```

use xquery::{Engine, MapResolver};

/// The employees.xml of paper Figure 3 (Bob per Table 1, plus Alice whose
/// employment matches Carol's exactly for QUERY 8).
const EMPLOYEES: &str = r#"<employees tstart="1994-01-01" tend="9999-12-31">
  <employee tstart="1995-01-01" tend="9999-12-31">
    <id tstart="1995-01-01" tend="9999-12-31">1001</id>
    <name tstart="1995-01-01" tend="9999-12-31">Bob</name>
    <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
    <salary tstart="1995-06-01" tend="9999-12-31">70000</salary>
    <title tstart="1995-01-01" tend="1995-09-30">Engineer</title>
    <title tstart="1995-10-01" tend="1996-01-31">Sr Engineer</title>
    <title tstart="1996-02-01" tend="9999-12-31">TechLeader</title>
    <deptno tstart="1995-01-01" tend="1995-09-30">d01</deptno>
    <deptno tstart="1995-10-01" tend="9999-12-31">d02</deptno>
  </employee>
  <employee tstart="1994-02-01" tend="1996-12-31">
    <id tstart="1994-02-01" tend="1996-12-31">1002</id>
    <name tstart="1994-02-01" tend="1996-12-31">Alice</name>
    <salary tstart="1994-02-01" tend="1996-12-31">80000</salary>
    <title tstart="1994-02-01" tend="1996-12-31">Manager</title>
    <deptno tstart="1994-02-01" tend="1996-12-31">d01</deptno>
  </employee>
  <employee tstart="1996-02-01" tend="9999-12-31">
    <id tstart="1996-02-01" tend="9999-12-31">1004</id>
    <name tstart="1996-02-01" tend="9999-12-31">Dave</name>
    <salary tstart="1996-02-01" tend="9999-12-31">65000</salary>
    <title tstart="1996-02-01" tend="9999-12-31">Sr Engineer</title>
    <deptno tstart="1996-02-01" tend="9999-12-31">d02</deptno>
  </employee>
  <employee tstart="1994-02-01" tend="1996-12-31">
    <id tstart="1994-02-01" tend="1996-12-31">1003</id>
    <name tstart="1994-02-01" tend="1996-12-31">Carol</name>
    <salary tstart="1994-02-01" tend="1996-12-31">75000</salary>
    <title tstart="1994-02-01" tend="1996-12-31">Architect</title>
    <deptno tstart="1994-02-01" tend="1996-12-31">d01</deptno>
  </employee>
</employees>"#;

/// The depts.xml of paper Figure 4.
const DEPTS: &str = r#"<depts tstart="1992-01-01" tend="9999-12-31">
  <dept tstart="1994-01-01" tend="1998-12-31">
    <deptno tstart="1994-01-01" tend="1998-12-31">d01</deptno>
    <deptname tstart="1994-01-01" tend="1998-12-31">QA</deptname>
    <mgrno tstart="1994-01-01" tend="1998-12-31">2501</mgrno>
  </dept>
  <dept tstart="1992-01-01" tend="1998-12-31">
    <deptno tstart="1992-01-01" tend="1998-12-31">d02</deptno>
    <deptname tstart="1992-01-01" tend="1998-12-31">RD</deptname>
    <mgrno tstart="1992-01-01" tend="1996-12-31">3402</mgrno>
    <mgrno tstart="1997-01-01" tend="1998-12-31">1009</mgrno>
  </dept>
</depts>"#;

fn main() {
    let mut resolver = MapResolver::new();
    resolver.insert("employees.xml", xmldom::parse(EMPLOYEES).unwrap());
    resolver.insert("depts.xml", xmldom::parse(DEPTS).unwrap());
    resolver.insert("emp.xml", xmldom::parse(EMPLOYEES).unwrap());
    let engine = Engine::new(resolver);

    let queries: Vec<(&str, String)> = vec![
        (
            "QUERY 1 — temporal projection: Bob's title history",
            r#"element title_history {
                for $t in doc("employees.xml")/employees/employee[name="Bob"]/title
                return $t }"#
                .into(),
        ),
        (
            "QUERY 2 — temporal snapshot: managers on 1994-05-06",
            r#"for $m in doc("depts.xml")/depts/dept/mgrno
                   [tstart(.) <= xs:date("1994-05-06") and tend(.) >= xs:date("1994-05-06")]
               return $m"#
                .into(),
        ),
        (
            "QUERY 3 — temporal slicing: employees working in 1994-05-06..1995-05-06",
            r#"for $e in doc("employees.xml")/employees/employee[
                   toverlaps(., telement(xs:date("1994-05-06"), xs:date("1995-05-06")))]
               return $e/name"#
                .into(),
        ),
        (
            "QUERY 4 — temporal join: the employees each manager manages (d01)",
            r#"element manages {
                 for $d in doc("depts.xml")/depts/dept[deptno = "d01"]
                 for $m in $d/mgrno
                 return element manage {
                   for $e in doc("employees.xml")/employees/employee
                   where $e/deptno = "d01" and not(empty(overlapinterval($e, $m)))
                   return element worked { string($e/name), overlapinterval($e, $m) } } }"#
                .into(),
        ),
        (
            "QUERY 5 — temporal aggregate: the history of the average salary",
            r#"let $s := document("emp.xml")/employees/employee/salary
               return tavg($s)"#
                .into(),
        ),
        (
            "QUERY 6 — restructuring: Bob's longest streak with same title AND dept (days)",
            r#"for $e in doc("emp.xml")/employees/employee[name="Bob"]
               let $d := $e/deptno
               let $t := $e/title
               return max(for $i in restructure($d, $t) return timespan($i))"#
                .into(),
        ),
        (
            "QUERY 7 — A since B: a Sr Engineer in d02 since joining the dept",
            r#"for $e in doc("employees.xml")/employees/employee
               let $m := $e/title[. = "Sr Engineer" and tend(.) = current-date()]
               let $d := $e/deptno[. = "d02" and tcontains($m, .)]
               where not(empty($d)) and not(empty($m))
               return <employee>{$e/id, $e/name}</employee>"#
                .into(),
        ),
        (
            "QUERY 8 — period containment: same employment history as Alice",
            r#"for $e1 in doc("employees.xml")/employees/employee[name = "Alice"]
               for $e2 in doc("employees.xml")/employees/employee[name != "Alice"]
               where every $d1 in $e1/deptno satisfies
                         some $d2 in $e2/deptno satisfies
                         (string($d1) = string($d2) and tequals($d2, $d1))
                 and every $d2 in $e2/deptno satisfies
                         some $d1 in $e1/deptno satisfies
                         (string($d2) = string($d1) and tequals($d1, $d2))
               return <employee>{$e2/name}</employee>"#
                .into(),
        ),
        (
            "Bonus — 'now' handling: Bob's current title, shown with externalnow",
            r#"for $t in doc("employees.xml")/employees/employee[name="Bob"]
                   /title[tend(.) = current-date()]
               return externalnow($t)"#
                .into(),
        ),
    ];

    for (title, q) in queries {
        println!("=== {title} ===");
        match engine.eval_to_xml(&q) {
            Ok(out) if out.is_empty() => println!("(empty)\n"),
            Ok(out) => println!("{out}\n"),
            Err(e) => println!("error: {e}\n"),
        }
    }
}
