//! Minimal API-compatible stand-in for the `criterion` crate (offline
//! build). It runs each benchmark for a fixed number of timed iterations
//! and prints min/median/mean wall times plus optional throughput — no
//! statistical analysis, no HTML reports, but the same macro/API surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter`/`iter_with_setup`, `Throughput`), so `cargo bench`
//! keeps working on every bench target with `harness = false`.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_bench("", name, sample_size, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(
            &self.name,
            &name.to_string(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes caches the way criterion's warm-up does).
        std::hint::black_box(f());
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut f: F,
    ) {
        std::hint::black_box(f(setup()));
        for _ in 0..self.samples.capacity() {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(f(input));
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        setup: SF,
        f: F,
        _size: BatchSize,
    ) {
        self.iter_with_setup(setup, f)
    }
}

/// Batch-size hint (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let thrpt = match throughput {
        Some(Throughput::Bytes(bytes)) if median.as_nanos() > 0 => {
            let mibs = bytes as f64 / (1 << 20) as f64 / median.as_secs_f64();
            format!("  thrpt {mibs:.1} MiB/s")
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let eps = n as f64 / median.as_secs_f64();
            format!("  thrpt {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "{label:<40} min {:>10}  median {:>10}  mean {:>10}{thrpt}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

/// Same shape as criterion's macro: defines a function running each bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Same shape as criterion's macro: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.throughput(Throughput::Bytes(4096));
        let mut ran = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        group.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 64], |v| v.len());
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 2);
    }
}
