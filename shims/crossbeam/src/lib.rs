//! Minimal API-compatible stand-in for `crossbeam`'s scoped threads,
//! backed by `std::thread::scope` (available since Rust 1.63). Offline
//! builds cannot fetch the real crate; this covers the subset used here:
//! `crossbeam::thread::scope(|s| { s.spawn(|_| ...); }).unwrap()`.

pub mod thread {
    use std::thread as stdthread;

    /// Scope handle passed to the `scope` closure and to each spawned
    /// closure (crossbeam passes the scope so children can spawn
    /// grandchildren).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; all threads spawned in it are joined before
    /// this returns. Like crossbeam, returns `Result` (`Err` if a child
    /// panicked — std re-raises child panics on scope exit, so in practice
    /// a child panic propagates as a panic here, which is what the tests'
    /// `.unwrap()` expects on success paths).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_see_borrows() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn spawn_returns_joinable_handle() {
        let out = crate::thread::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
