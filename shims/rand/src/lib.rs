//! Minimal API-compatible stand-in for the `rand` crate (offline build).
//! Implements the subset the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over half-open/inclusive integer ranges, and
//! `Rng::gen_bool`. The generator is xoshiro256** seeded via splitmix64 —
//! deterministic for a given seed, which is all the dataset generator
//! requires (it never claims cross-version stability with upstream rand).

use std::ops::{Range, RangeInclusive};

/// Core source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point (`StdRng::seed_from_u64(...)`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`]. Implemented as blanket
/// impls over `Range<T>`/`RangeInclusive<T>` (like upstream rand) so type
/// inference flows from the call context into untyped integer literals.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Integer types uniformly samplable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

fn below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Debiased multiply-shift (Lemire); retry on the short region.
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * n as u128) >> 64) as u64;
        let lo = x.wrapping_mul(n);
        if lo >= n || lo >= n.wrapping_neg() % n {
            return hi;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }

            fn sample_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full-width u64/i64 range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, like rand's standard f64 sampling.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<i64> = (0..32).map(|_| a.gen_range(0i64..1000)).collect();
        let ys: Vec<i64> = (0..32).map(|_| b.gen_range(0i64..1000)).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        let zs: Vec<i64> = (0..32).map(|_| c.gen_range(0i64..1000)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 gave {heads}/10000");
    }
}
