//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The workspace builds offline, so the real crate cannot be
//! fetched; this shim covers the subset the repo uses: `Mutex::lock`,
//! `RwLock::read`/`write`, and `Condvar::wait` on a guard taken by `&mut`
//! (no poisoning in the return type — a poisoned lock's inner value is
//! recovered, matching parking_lot's behaviour of not propagating panics
//! through lock acquisition).

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutex with a panic-free `lock()` signature like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with `parking_lot`-style `read()`/`write()` returning guards
/// directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a timed condvar wait, mirroring `parking_lot`'s type.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with `parking_lot`'s in-place `wait(&mut guard)`
/// signature (std's `wait` consumes and returns the guard instead).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait moves the guard through by value; bridge that to the
        // in-place signature by moving it out of and back into `*guard`.
        // The abort bomb turns a (should-be-impossible) panic inside
        // `wait` into an abort instead of a double-unlock on unwind.
        struct Bomb;
        impl Drop for Bomb {
            fn drop(&mut self) {
                std::process::abort();
            }
        }
        unsafe {
            let moved = std::ptr::read(guard);
            let bomb = Bomb;
            let back = self.0.wait(moved).unwrap_or_else(|e| e.into_inner());
            std::mem::forget(bomb);
            std::ptr::write(guard, back);
        }
    }

    /// `parking_lot`-style timed wait. Returns a result whose
    /// `timed_out()` mirrors the real crate's `WaitTimeoutResult`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        struct Bomb;
        impl Drop for Bomb {
            fn drop(&mut self) {
                std::process::abort();
            }
        }
        unsafe {
            let moved = std::ptr::read(guard);
            let bomb = Bomb;
            let (back, res) = match self.0.wait_timeout(moved, timeout) {
                Ok((g, r)) => (g, r),
                Err(e) => e.into_inner(),
            };
            std::mem::forget(bomb);
            std::ptr::write(guard, back);
            WaitTimeoutResult(res.timed_out())
        }
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        t.join().unwrap();
    }
}
