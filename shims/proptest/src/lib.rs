//! Minimal API-compatible stand-in for the `proptest` crate (offline
//! build — the real crate cannot be fetched). It keeps the same surface
//! the workspace's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Strategy` with `prop_map` /
//! `prop_filter` / `prop_recursive`, `collection::vec`, `any::<T>()`,
//! regex-pattern string strategies, `Just`, `ProptestConfig` — but runs
//! pure generation with deterministic per-test seeds and reports failures
//! by panicking with the failing inputs' `Debug` rendering instead of
//! shrinking. Case counts honour `ProptestConfig::with_cases` and the
//! `PROPTEST_CASES` environment variable.

pub mod test_runner {
    /// Deterministic xoshiro256** generator seeded from the test name and
    /// case index, so failures reproduce run-to-run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Seed for one test case: FNV-1a of the test path mixed with the
        /// case index.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self::from_seed(h ^ ((case as u64) << 32 | case as u64))
        }

        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform value in `[0, n)`, `n > 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            loop {
                let x = self.next_u64();
                let hi = ((x as u128 * n as u128) >> 64) as u64;
                let lo = x.wrapping_mul(n);
                if lo >= n || lo >= n.wrapping_neg() % n {
                    return hi;
                }
            }
        }
    }

    /// Runner configuration. Only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::string::generate_from_pattern;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason,
                pred,
            }
        }

        /// Build a recursive strategy. `depth` bounds nesting; `_size` and
        /// `_branch` are accepted for API compatibility. Implemented by
        /// eagerly stacking `recurse` `depth` times over the leaf strategy,
        /// which bounds generated trees to `depth` levels as long as the
        /// closure mixes `inner` with leaf alternatives (the standard
        /// `prop_oneof!` usage).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat: BoxedStrategy<Self::Value> = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat).boxed();
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// `prop_filter` adapter: rejection-samples the source.
    pub struct Filter<S, F> {
        source: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.source.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 candidates in a row: {}",
                self.reason
            )
        }
    }

    /// Weighted union of strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total > 0,
                "prop_oneof! needs at least one arm with nonzero weight"
            );
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    fn uniform_i128(rng: &mut TestRng, lo: i128, span: u64) -> i128 {
        lo + rng.below(span) as i128
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    uniform_i128(rng, self.start as i128, span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    uniform_i128(rng, lo as i128, span as u64) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// String-literal strategies: the pattern is a small regex subset
    /// (char classes, `{m,n}`/`*`/`+`/`?` quantifiers, `\PC`).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize, // exclusive
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy {
            elem,
            min: size.start,
            max: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod string {
    //! Tiny regex-subset string generator backing `&str` strategies.
    //! Supports: literals, `[...]` classes (ranges, escapes, literal `-`
    //! at the edges), `\PC` (any non-control char, generated as printable
    //! ASCII), and the quantifiers `{n}`, `{m,n}`, `*`, `+`, `?`.

    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        /// Inclusive char ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        NonControl,
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32, // inclusive
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars
                .next()
                .expect("unterminated character class in pattern");
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    return ranges;
                }
                '\\' => {
                    let esc = chars.next().expect("dangling escape in class");
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    pending = Some(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                }
                '-' => {
                    let prev = pending.take();
                    let at_edge = chars.peek() == Some(&']') || chars.peek().is_none();
                    match prev {
                        Some(lo) if !at_edge => {
                            let hi = chars.next().unwrap();
                            let hi = if hi == '\\' {
                                chars.next().expect("dangling escape")
                            } else {
                                hi
                            };
                            assert!(lo <= hi, "inverted class range {lo}-{hi}");
                            ranges.push((lo, hi));
                        }
                        _ => {
                            // `-` at the start or end of the class: a literal
                            // dash. Flush any pending single char first.
                            if let Some(p) = prev {
                                ranges.push((p, p));
                            }
                            pending = Some('-');
                        }
                    }
                }
                other => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    pending = Some(other);
                }
            }
        }
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (u32, u32) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                if let Some((m, n)) = body.split_once(',') {
                    (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    )
                } else {
                    let n: u32 = body.trim().parse().expect("bad {n}");
                    (n, n)
                }
            }
            Some('*') => {
                chars.next();
                (0, 16)
            }
            Some('+') => {
                chars.next();
                (1, 16)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => match chars.next().expect("dangling escape in pattern") {
                    'P' => {
                        let prop = chars.next().expect("\\P needs a property letter");
                        assert_eq!(prop, 'C', "only \\PC (non-control) is supported");
                        Atom::NonControl
                    }
                    'n' => Atom::Literal('\n'),
                    't' => Atom::Literal('\t'),
                    'r' => Atom::Literal('\r'),
                    other => Atom::Literal(other),
                },
                '.' => Atom::NonControl,
                other => Atom::Literal(other),
            };
            let (min, max) = parse_quantifier(&mut chars);
            assert!(min <= max, "inverted quantifier in {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges
            .iter()
            .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
            .sum();
        let mut pick = rng.below(total);
        for (lo, hi) in ranges {
            let span = *hi as u64 - *lo as u64 + 1;
            if pick < span {
                return char::from_u32(*lo as u32 + pick as u32)
                    .expect("class range spans a surrogate gap");
            }
            pick -= span;
        }
        unreachable!()
    }

    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
                    Atom::NonControl => out.push(sample_class(&[(' ', '~')], rng)),
                }
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The test-definition macro. Each generated `#[test]` runs `cases`
/// deterministic generations of its inputs and executes the body; assert
/// failures panic with the failing inputs appended for reproduction.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    // Like upstream proptest, the body runs as a function
                    // returning Result so `return Ok(())` early-exits work.
                    let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), ::std::string::String> { $body Ok(()) },
                    ));
                    match __outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(reject)) => panic!(
                            "proptest case {}/{} rejected ({reject}) with inputs: {}",
                            __case + 1,
                            __config.cases,
                            __inputs
                        ),
                        Err(panic) => {
                            eprintln!(
                                "proptest case {}/{} failed with inputs: {}",
                                __case + 1,
                                __config.cases,
                                __inputs
                            );
                            std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case("self::ranges", 0);
        let strat = (0i64..10, 5u8..=9);
        for _ in 0..500 {
            let (a, b) = strat.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!((5..=9).contains(&b));
        }
    }

    #[test]
    fn regex_patterns_generate_matching_strings() {
        let mut rng = TestRng::for_case("self::regex", 0);
        for _ in 0..200 {
            let name = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!name.is_empty() && name.len() <= 9);
            assert!(name.chars().next().unwrap().is_ascii_lowercase());
            assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let printable = "[ -~]{1,20}".generate(&mut rng);
            assert!((1..=20).contains(&printable.len()));
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));

            let free = "\\PC*".generate(&mut rng);
            assert!(free.chars().all(|c| !c.is_control()));

            let tricky = "[<>a-z\"'=/ &;{}\\[\\]0-9-]{0,120}".generate(&mut rng);
            assert!(tricky.len() <= 120);
            for c in tricky.chars() {
                assert!(
                    "<>\"'=/ &;{}[]-".contains(c) || c.is_ascii_lowercase() || c.is_ascii_digit(),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn oneof_and_filter_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_case("self::tree", 1);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4, "depth-bounded: {t:?}");
        }

        let even = (0u32..100).prop_filter("even only", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }

        let weighted = prop_oneof![
            9 => (0i32..1).prop_map(|_| "common"),
            1 => Just("rare"),
        ];
        let rare = (0..1_000)
            .filter(|_| weighted.generate(&mut rng) == "rare")
            .count();
        assert!(
            (20..350).contains(&rare),
            "weights respected: {rare}/1000 rare"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(xs in crate::collection::vec(any::<u8>(), 0..10), k in 1i64..5) {
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(k.signum(), 1, "k positive {}", k);
        }
    }
}
